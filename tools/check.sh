#!/bin/sh
# Tier-1 gate for every PR: build, run the full test suite, smoke-check
# the parallel determinism contract (-j 1 output must be bit-identical to
# -j N), smoke-check that a poisoned oracle cache is rejected and
# regenerated without changing a single output bit, smoke-check the
# staged pipeline (cold run vs warm run vs interrupted-then-resumed run:
# bit-identical output, zero stage rebuilds when warm), and smoke-check
# the servable snapshot layer (batched eval bit-identical to scalar at
# -j 1 and -j N; a warm snapshot loads from exactly one store entry),
# and smoke-check the batch kernels (scalar-vs-kernel timings reported,
# serve-throughput JSON artifact matches its schema, every row
# bit-identical), and smoke-check sharded oracle warming (single-shard
# warms resume into a full run that loads — never recomputes — the
# published shards; a re-run hits every shard and the whole table),
# and smoke-check the fault-injection substrate (an injected-ENOSPC warm
# exits through the typed store-io code; a process aborted at a mutating
# store operation leaves a store that fsck repairs with nothing
# quarantined and a resumed run completes bit-identically).
# Usage: tools/check.sh [N]   (N = fan-out width, default 4)
set -eu

cd "$(dirname "$0")/.."
N="${1:-4}"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== -j 1 vs -j $N smoke diff =="
tmp1=$(mktemp) && tmpN=$(mktemp)
cachedir=$(mktemp -d) && cold=$(mktemp) && poisoned=$(mktemp) && stats=$(mktemp)
trap 'rm -f "$tmp1" "$tmpN" "$cold" "$poisoned" "$stats"; rm -rf "$cachedir"' EXIT
# Disable the oracle disk cache so both runs actually exercise the
# (parallel) oracle construction rather than a file load.
RLIBM_NO_DISK_CACHE=1 dune exec --no-build bin/rlibm_gen.exe -- generate \
  --func log2 --scheme estrin --ebits 4 --prec 7 --verify -j 1 > "$tmp1"
RLIBM_NO_DISK_CACHE=1 dune exec --no-build bin/rlibm_gen.exe -- generate \
  --func log2 --scheme estrin --ebits 4 --prec 7 --verify -j "$N" > "$tmpN"
diff "$tmp1" "$tmpN"
echo "identical at -j 1 and -j $N"

echo "== cache poisoning smoke =="
# Cold-cache fingerprint: coefficients, special inputs, verify verdict.
RLIBM_CACHE_DIR="$cachedir" dune exec --no-build bin/rlibm_gen.exe -- generate \
  --func exp2 --scheme estrin-fma --ebits 4 --prec 7 --verify > "$cold"
[ -n "$(ls "$cachedir")" ] || { echo "no cache entry written"; exit 1; }
# Corrupt every cache entry (clobber the magic) and re-run: the store must
# quarantine, regenerate, and reproduce the cold-cache output bit for bit.
for f in "$cachedir"/*; do
  printf 'XXXX' | dd of="$f" bs=1 conv=notrunc 2>/dev/null
done
RLIBM_CACHE_DIR="$cachedir" dune exec --no-build bin/rlibm_gen.exe -- generate \
  --func exp2 --scheme estrin-fma --ebits 4 --prec 7 --verify --cache-stats \
  > "$poisoned" 2> "$stats"
diff "$cold" "$poisoned"
grep -Eq '[1-9][0-9]* corrupt-rejected' "$stats" \
  || { echo "corruption was not detected:"; cat "$stats"; exit 1; }
ls "$cachedir"/*.corrupt-* > /dev/null \
  || { echo "corrupt entry was not quarantined"; exit 1; }
echo "poisoned cache rejected, quarantined, and regenerated bit-identically"

echo "== staged pipeline smoke (cold / warm / resume) =="
stagedir=$(mktemp -d) && resumedir=$(mktemp -d)
coldg=$(mktemp) && warmg=$(mktemp) && resumedg=$(mktemp)
stageout=$(mktemp) && warmstats=$(mktemp)
trap 'rm -f "$tmp1" "$tmpN" "$cold" "$poisoned" "$stats" \
       "$coldg" "$warmg" "$resumedg" "$stageout" "$warmstats"
     rm -rf "$cachedir" "$stagedir" "$resumedir"' EXIT
# Cold run: every stage rebuilt and persisted.
RLIBM_CACHE_DIR="$stagedir" dune exec --no-build bin/rlibm_gen.exe -- generate \
  --func exp2 --scheme estrin-fma --ebits 4 --prec 7 --verify > "$coldg"
# Warm run: all five stages must hit (zero rebuilds, zero store misses),
# and the generated output must not move a bit.
RLIBM_CACHE_DIR="$stagedir" dune exec --no-build bin/rlibm_gen.exe -- stages \
  --func exp2 --scheme estrin-fma --ebits 4 --prec 7 --cache-stats \
  > "$stageout" 2> "$warmstats"
if grep -q 'rebuilt' "$stageout"; then
  echo "warm run rebuilt a stage:"; cat "$stageout"; exit 1
fi
[ "$(grep -c '  hit  ' "$stageout")" -eq 5 ] \
  || { echo "expected 5 stage hits:"; cat "$stageout"; exit 1; }
grep -q ' 0 misses' "$warmstats" \
  || { echo "warm run missed the store:"; cat "$warmstats"; exit 1; }
grep -q 'poly' "$warmstats" \
  || { echo "per-kind counters missing:"; cat "$warmstats"; exit 1; }
RLIBM_CACHE_DIR="$stagedir" dune exec --no-build bin/rlibm_gen.exe -- generate \
  --func exp2 --scheme estrin-fma --ebits 4 --prec 7 --verify > "$warmg"
diff "$coldg" "$warmg"
echo "warm run: 5/5 stage hits, output bit-identical"
# Interrupted run: only the oracle and rounding-interval stages complete.
# (warm narrates on stderr; stdout is reserved for product output.)
RLIBM_CACHE_DIR="$resumedir" dune exec --no-build bin/rlibm_gen.exe -- warm \
  --func exp2 --through intervals --ebits 4 --prec 7 2> /dev/null
# Resume: stages 1-2 load, stages 3-5 rebuild, output bit-identical to cold.
RLIBM_CACHE_DIR="$resumedir" dune exec --no-build bin/rlibm_gen.exe -- stages \
  --func exp2 --scheme estrin-fma --ebits 4 --prec 7 > "$stageout"
for want in 'oracle  *hit' 'intervals  *hit' 'constraints  *rebuilt' \
            'poly  *rebuilt' 'verdict  *rebuilt'; do
  grep -Eq "$want" "$stageout" \
    || { echo "resume expected '$want':"; cat "$stageout"; exit 1; }
done
RLIBM_CACHE_DIR="$resumedir" dune exec --no-build bin/rlibm_gen.exe -- generate \
  --func exp2 --scheme estrin-fma --ebits 4 --prec 7 --verify > "$resumedg"
diff "$coldg" "$resumedg"
echo "interrupted run resumed from stage 3, output bit-identical"

echo "== servable snapshot smoke =="
servedir=$(mktemp -d)
serve1=$(mktemp) && serveN=$(mktemp) && servestats=$(mktemp)
servebench=$(mktemp) && benchjson=$(mktemp)
trap 'rm -f "$tmp1" "$tmpN" "$cold" "$poisoned" "$stats" \
       "$coldg" "$warmg" "$resumedg" "$stageout" "$warmstats" \
       "$serve1" "$serveN" "$servestats" "$servebench" "$benchjson"
     rm -rf "$cachedir" "$stagedir" "$resumedir" "$servedir"' EXIT
# Cold build at -j 1: resolves through the pipeline, persists the
# snapshot, and cross-checks every batched result against the scalar
# eval path bit for bit.
RLIBM_CACHE_DIR="$servedir" dune exec --no-build bin/rlibm_gen.exe -- serve \
  --func exp2 --func log2 --ebits 4 --prec 7 --check-scalar -j 1 > "$serve1"
# Warm load at -j N: stdout (per-function result digests + scalar
# checks) must be bit-identical, and the store must be touched for
# exactly one entry of exactly one kind — the snapshot.  Zero oracle
# evaluations, zero LP solves, not even a per-stage artifact load.
RLIBM_CACHE_DIR="$servedir" dune exec --no-build bin/rlibm_gen.exe -- serve \
  --func exp2 --func log2 --ebits 4 --prec 7 --check-scalar --cache-stats \
  -j "$N" > "$serveN" 2> "$servestats"
diff "$serve1" "$serveN"
grep -Eq '^ *snapshot +1 hits, 0 misses' "$servestats" \
  || { echo "warm serve did not load the snapshot:"; cat "$servestats"; exit 1; }
if grep -Eq '^ *(oracle|intervals|constraints|poly|verdict|table) ' "$servestats"; then
  echo "warm serve touched per-stage artifacts:"; cat "$servestats"; exit 1
fi
echo "snapshot: batched eval bit-identical at -j 1 and -j $N, warm load = 1 store entry"

echo "== batch kernel smoke =="
# serve --bench reports scalar-vs-kernel timings on stderr (stdout must
# stay job-count-invariant for the diff above); the run also re-checks
# the batched results against the scalar path (--check-scalar).
RLIBM_CACHE_DIR="$servedir" dune exec --no-build bin/rlibm_gen.exe -- serve \
  --func exp2 --func log2 --ebits 4 --prec 7 --check-scalar --bench \
  -j "$N" > /dev/null 2> "$servebench"
grep -Eq 'bench: scalar [0-9.]+ ns/eval, kernel [0-9.]+ ns/eval' "$servebench" \
  || { echo "no kernel timings reported:"; cat "$servebench"; exit 1; }
# Throughput harness: quick grid, small batch, JSON artifact.  The run
# exits non-zero if any kernel result differs from the scalar path.
RLIBM_CACHE_DIR="$servedir" dune exec --no-build bench/main.exe -- \
  --serve-bench --quick --serve-batch-pow 10 --serve-json "$benchjson" \
  -j "$N" > /dev/null
python3 - "$benchjson" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("schema_version", "kind", "timestamp", "commit", "host",
            "jobs", "input_bits", "batch_pow", "results"):
    assert key in doc, f"missing envelope key {key!r}"
assert doc["kind"] == "serve-throughput", doc["kind"]
assert doc["schema_version"] == 1, doc["schema_version"]
assert doc["results"], "no result rows"
for row in doc["results"]:
    for key in ("func", "scheme", "batch", "scalar_ns_per_eval",
                "kernel_ns_per_eval", "scalar_evals_per_s",
                "kernel_evals_per_s", "speedup",
                "kernel_minor_words_per_eval", "bit_identical"):
        assert key in row, f"missing row key {key!r}"
    assert row["bit_identical"] is True, row
    assert row["kernel_ns_per_eval"] > 0.0, row
EOF
echo "kernel timings reported, serve-throughput JSON schema OK"

echo "== sharded oracle warm smoke =="
sharddir=$(mktemp -d)
shardout=$(mktemp)
trap 'rm -f "$tmp1" "$tmpN" "$cold" "$poisoned" "$stats" \
       "$coldg" "$warmg" "$resumedg" "$stageout" "$warmstats" \
       "$serve1" "$serveN" "$servestats" "$servebench" "$benchjson" \
       "$shardout"
     rm -rf "$cachedir" "$stagedir" "$resumedir" "$servedir" "$sharddir"' EXIT
# Half-run: warm two of the four oracle shards, one invocation each (the
# distributed / killed-warmer shape).  All warm narration lives on
# stderr, so the shard-status greps below read the stderr capture.
RLIBM_CACHE_DIR="$sharddir" dune exec --no-build bin/rlibm_gen.exe -- warm \
  --func exp2 --through oracle --shard 0/4 --ebits 4 --prec 7 2> /dev/null
RLIBM_CACHE_DIR="$sharddir" dune exec --no-build bin/rlibm_gen.exe -- warm \
  --func exp2 --through oracle --shard 1/4 --ebits 4 --prec 7 2> /dev/null
# Resume: the full sharded warm must load shards 0-1 from the store and
# compute only shards 2-3.
RLIBM_CACHE_DIR="$sharddir" dune exec --no-build bin/rlibm_gen.exe -- warm \
  --func exp2 --through oracle --shards 4 --ebits 4 --prec 7 \
  --cache-stats 2> "$shardout"
for want in 'oracle shard 0/4 hit' 'oracle shard 1/4 hit' \
            'oracle shard 2/4 rebuilt' 'oracle shard 3/4 rebuilt'; do
  grep -q "$want" "$shardout" \
    || { echo "resume expected '$want':"; cat "$shardout"; exit 1; }
done
grep -Eq '^ *oracle-shard +2 hits, 2 misses' "$shardout" \
  || { echo "expected 2 shard loads + 2 computes:"; cat "$shardout"; exit 1; }
# Fully warm re-run: the republished whole table covers every shard.
RLIBM_CACHE_DIR="$sharddir" dune exec --no-build bin/rlibm_gen.exe -- warm \
  --func exp2 --through oracle --shards 4 --ebits 4 --prec 7 2> "$shardout"
[ "$(grep -c 'oracle shard [0-3]/4 hit' "$shardout")" -eq 4 ] \
  || { echo "warm re-run expected 4 shard hits:"; cat "$shardout"; exit 1; }
if grep -q 'rebuilt' "$shardout"; then
  echo "warm re-run recomputed a shard:"; cat "$shardout"; exit 1
fi
# And the merged whole-table artifact satisfies the unsharded pipeline.
RLIBM_CACHE_DIR="$sharddir" dune exec --no-build bin/rlibm_gen.exe -- stages \
  --func exp2 --scheme estrin-fma --ebits 4 --prec 7 > "$shardout"
grep -Eq 'oracle  *hit' "$shardout" \
  || { echo "oracle stage missed after sharded warm:"; cat "$shardout"; exit 1; }
echo "sharded warm: resume loads published shards, re-run all-hit, oracle stage warm"

echo "== machine-readable stdout smoke (--gen-json) =="
# With every narration line on stderr, a JSON artifact pointed at
# /dev/stdout must leave stdout as one parseable document — nothing else
# may leak into the stream.
genjson=$(mktemp)
trap 'rm -f "$tmp1" "$tmpN" "$cold" "$poisoned" "$stats" \
       "$coldg" "$warmg" "$resumedg" "$stageout" "$warmstats" \
       "$serve1" "$serveN" "$servestats" "$servebench" "$benchjson" \
       "$shardout" "$genjson"
     rm -rf "$cachedir" "$stagedir" "$resumedir" "$servedir" "$sharddir"' EXIT
dune exec --no-build bench/main.exe -- --gen-json /dev/stdout --quick \
  -j "$N" > "$genjson" 2> /dev/null
python3 - "$genjson" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)  # fails if any narration leaked onto stdout
for key in ("schema_version", "kind", "timestamp", "commit", "host",
            "jobs", "input_bits", "scheme", "generation"):
    assert key in doc, f"missing envelope key {key!r}"
assert doc["kind"] == "staged-generation", doc["kind"]
assert doc["generation"], "no generation rows"
for row in doc["generation"]:
    assert row["ok"] is True, row
    assert row["warm_rebuilt_stages"] == 0, row
EOF
echo "--gen-json stdout parses as one JSON document, warm rebuilds = 0"

echo "== trace smoke (cold/warm generate with --trace) =="
# Trace files live at a stable path (not the mktemp pool) so CI can
# upload them as a post-mortem artifact when this script fails; they are
# removed only on success, at the bottom.
tracedir="_build/trace-smoke"
rm -rf "$tracedir" && mkdir -p "$tracedir"
tracegen=$(mktemp -d)
tracecold=$(mktemp) && tracewarm=$(mktemp) && tracenone=$(mktemp)
trap 'rm -f "$tmp1" "$tmpN" "$cold" "$poisoned" "$stats" \
       "$coldg" "$warmg" "$resumedg" "$stageout" "$warmstats" \
       "$serve1" "$serveN" "$servestats" "$servebench" "$benchjson" \
       "$shardout" "$genjson" "$tracecold" "$tracewarm" "$tracenone"
     rm -rf "$cachedir" "$stagedir" "$resumedir" "$servedir" "$sharddir" \
       "$tracegen"' EXIT
RLIBM_CACHE_DIR="$tracegen" dune exec --no-build bin/rlibm_gen.exe -- generate \
  --func exp2 --scheme estrin-fma --ebits 4 --prec 7 --verify \
  --trace "$tracedir/cold.jsonl" -j 1 > "$tracecold" 2> /dev/null
RLIBM_CACHE_DIR="$tracegen" dune exec --no-build bin/rlibm_gen.exe -- generate \
  --func exp2 --scheme estrin-fma --ebits 4 --prec 7 --verify \
  --trace "$tracedir/warm.jsonl" -j "$N" > "$tracewarm" 2> /dev/null
# Observing the run must not move an output bit, at either job count.
RLIBM_CACHE_DIR="$tracegen" dune exec --no-build bin/rlibm_gen.exe -- generate \
  --func exp2 --scheme estrin-fma --ebits 4 --prec 7 --verify \
  -j "$N" > "$tracenone" 2> /dev/null
diff "$tracecold" "$tracewarm"
diff "$tracewarm" "$tracenone"
python3 - "$tracedir/cold.jsonl" "$tracedir/warm.jsonl" <<'EOF'
import json, sys

def load(path):
    with open(path) as f:
        lines = [json.loads(l) for l in f if l.strip()]
    assert len(lines) > 1, f"{path}: empty trace"
    header, events = lines[0], lines[1:]
    assert header["schema_version"] == 1, header
    assert header["kind"] == "rlibm-trace", header
    for key in ("timestamp", "host", "jobs"):
        assert key in header, header
    for ev in events:
        for key in ("ts", "level", "ev", "fields"):
            assert key in ev, ev
    return header, events

def stage_ends(events):
    return [e for e in events if e["ev"] == "stage.end"]

cold_h, cold = load(sys.argv[1])
warm_h, warm = load(sys.argv[2])
assert cold_h["jobs"] == 1, cold_h["jobs"]
assert any(e["fields"].get("status") == "rebuilt" for e in stage_ends(cold)), \
    "cold run rebuilt no stage"
warm_ends = stage_ends(warm)
assert warm_ends, "warm trace has no stage spans"
assert all(e["fields"].get("status") == "hit" for e in warm_ends), \
    [e["fields"] for e in warm_ends]
# Timing sanity.  Stage spans nest (a cold verdict span contains the
# poly span, which contains the constraints span, ...), so only the
# top-level stage spans — those not enclosed by another stage span —
# partition the run; their durations must be non-negative and sum to no
# more than the trace's own wall clock.
for events in (cold, warm):
    stage_ids = {e["span"] for e in events
                 if e["ev"] in ("stage.begin", "stage.end")}
    secs = [e["fields"]["seconds"] for e in stage_ends(events)]
    assert all(s >= 0.0 for s in secs), secs
    top = [e["fields"]["seconds"] for e in stage_ends(events)
           if e.get("parent") not in stage_ids]
    assert top, "no top-level stage spans"
    wall = max(e["ts"] for e in events) - min(e["ts"] for e in events)
    assert sum(top) <= wall + 0.25, (sum(top), wall)
EOF
echo "trace: schema OK, warm run all-hit, output bit-identical with tracing on"

echo "== fault smoke (injected ENOSPC, kill-point resume, fsck) =="
# Fault artifacts live at a stable path (like the trace smoke) so CI can
# upload the fsck report and any quarantined files as post-mortem
# artifacts when this script fails; removed only on success, at the
# bottom.
faultdir="_build/fault-smoke"
rm -rf "$faultdir" && mkdir -p "$faultdir"
# Sticky injected ENOSPC on every store write: warm completes the
# computation in memory but must report every failed publish and exit
# through the typed store-io code (3) with the uniform error rendering.
mkdir -p "$faultdir/enospc-store"
rc=0
RLIBM_CACHE_DIR="$faultdir/enospc-store" RLIBM_FAULT_PLAN='write@1+=enospc' \
  dune exec --no-build bin/rlibm_gen.exe -- warm \
  --func exp2 --through oracle --ebits 4 --prec 7 \
  > "$faultdir/enospc.out" 2> "$faultdir/enospc.err" || rc=$?
[ "$rc" -eq 3 ] \
  || { echo "injected ENOSPC: expected exit 3, got $rc"
       cat "$faultdir/enospc.err"; exit 1; }
grep -q 'store publishes failed' "$faultdir/enospc.err" \
  || { echo "failed publishes not reported:"; cat "$faultdir/enospc.err"; exit 1; }
grep -q 'rlibm: store I/O error' "$faultdir/enospc.err" \
  || { echo "no typed store-io message:"; cat "$faultdir/enospc.err"; exit 1; }
# Kill-point: abort the process at a mutating store operation mid-way
# through a sharded publish; fsck --repair must find nothing quarantined
# (atomic publish can orphan temps, never expose a torn entry) and a
# resumed run must leave the store byte-identical to an uninterrupted
# control run.
mkdir -p "$faultdir/control" "$faultdir/killed"
RLIBM_CACHE_DIR="$faultdir/control" dune exec --no-build bin/rlibm_gen.exe -- \
  warm --func exp2 --through oracle --shards 2 --ebits 4 --prec 7 \
  2> /dev/null
rc=0
RLIBM_CACHE_DIR="$faultdir/killed" RLIBM_FAULT_PLAN='mut@4=abort' \
  dune exec --no-build bin/rlibm_gen.exe -- warm \
  --func exp2 --through oracle --shards 2 --ebits 4 --prec 7 \
  2> "$faultdir/killed.err" || rc=$?
[ "$rc" -eq 70 ] \
  || { echo "kill-point: expected abort exit 70, got $rc"
       cat "$faultdir/killed.err"; exit 1; }
dune exec --no-build bin/rlibm_gen.exe -- fsck \
  --cache-dir "$faultdir/killed" --repair > "$faultdir/fsck.out" \
  || { echo "fsck --repair failed on the killed store:"
       cat "$faultdir/fsck.out"; exit 1; }
grep -q ', 0 quarantined,' "$faultdir/fsck.out" \
  || { echo "kill left a torn entry:"; cat "$faultdir/fsck.out"; exit 1; }
RLIBM_CACHE_DIR="$faultdir/killed" dune exec --no-build bin/rlibm_gen.exe -- \
  warm --func exp2 --through oracle --shards 2 --ebits 4 --prec 7 \
  2> /dev/null
diff -r "$faultdir/control" "$faultdir/killed"
# And the resumed store passes a plain fsck scan with everything valid.
dune exec --no-build bin/rlibm_gen.exe -- fsck \
  --cache-dir "$faultdir/killed" > "$faultdir/fsck-clean.out" \
  || { echo "resumed store not fsck-clean:"
       cat "$faultdir/fsck-clean.out"; exit 1; }
grep -q ', 0 quarantined, 0 stale temps,' "$faultdir/fsck-clean.out" \
  || { echo "resumed store has findings:"; cat "$faultdir/fsck-clean.out"; exit 1; }
echo "injected ENOSPC exits 3 typed; kill-point resume bit-identical, fsck clean"

rm -rf "$tracedir" "$faultdir"
echo "== OK =="
