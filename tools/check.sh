#!/bin/sh
# Tier-1 gate for every PR: build, run the full test suite, and smoke-check
# the parallel determinism contract (-j 1 output must be bit-identical to
# -j N).  Usage: tools/check.sh [N]   (N = fan-out width, default 4)
set -eu

cd "$(dirname "$0")/.."
N="${1:-4}"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== -j 1 vs -j $N smoke diff =="
tmp1=$(mktemp) && tmpN=$(mktemp)
trap 'rm -f "$tmp1" "$tmpN"' EXIT
# Disable the oracle disk cache so both runs actually exercise the
# (parallel) oracle construction rather than a file load.
RLIBM_NO_DISK_CACHE=1 dune exec --no-build bin/rlibm_gen.exe -- generate \
  --func log2 --scheme estrin --ebits 4 --prec 7 --verify -j 1 > "$tmp1"
RLIBM_NO_DISK_CACHE=1 dune exec --no-build bin/rlibm_gen.exe -- generate \
  --func log2 --scheme estrin --ebits 4 --prec 7 --verify -j "$N" > "$tmpN"
diff "$tmp1" "$tmpN"
echo "identical at -j 1 and -j $N"

echo "== OK =="
