(* Regenerate the committed codegen golden snapshots:

     dune exec test/gen_golden.exe [DIR]     (default DIR: test/golden)

   Run after an intentional codegen change, review the diff, commit.
   Generation is deterministic (seeded RNG, fixed knobs), so the output
   is a pure function of the case list below — keep it in sync with
   test_codegen.ml. *)

let tiny_cfg =
  {
    Rlibm.Config.default_mini with
    Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:7;
    table_bits = 3;
    max_specials = 40;
    max_rounds = 20;
  }

let piecewise_log_cfg = { tiny_cfg with Rlibm.Config.pieces = 2 }

let cases =
  [
    ("exp_estrin_fma", Oracle.Exp, Polyeval.EstrinFma, tiny_cfg);
    ("log2_piecewise", Oracle.Log2, Polyeval.Horner, piecewise_log_cfg);
  ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  Cache.with_persistence false (fun () ->
      List.iter
        (fun (name, func, scheme, cfg) ->
          match Genlibm.generate ~cfg ~scheme func with
          | Error msg ->
              Printf.eprintf "%s: generation failed: %s\n" name
                (Diag.Error.to_string msg);
              exit 1
          | Ok g ->
              let emitted = "rlibm_" ^ Oracle.name func in
              let write ext src =
                let path = Filename.concat dir (name ^ ext ^ ".golden") in
                Out_channel.with_open_bin path (fun oc ->
                    Out_channel.output_string oc src);
                Printf.printf "wrote %s\n" path
              in
              write ".c" (Codegen.to_c g ~name:emitted);
              write ".ml" (Codegen.to_ocaml g ~name:emitted))
        cases)
