(* Tests for the pipeline building blocks: rounding intervals, range
   reduction / output compensation, reduced-interval inference and
   constraint merging. *)

let mini = Rlibm.Config.default_mini
let tout = Rlibm.Config.tout mini

(* ---------- rounding intervals ---------- *)

let test_interval_odd () =
  (* Pick an odd-patterned value and check the open-interval property. *)
  let y = Softfp.of_rat tout Softfp.RTO (Rat.of_ints 1 3) in
  Alcotest.(check bool) "odd" true (Softfp.frac_odd tout y);
  let iv = Rlibm.Intervals.of_round_to_odd tout y in
  Alcotest.(check bool) "not degenerate" false (Rlibm.Intervals.is_degenerate iv);
  (* every double in [lo,hi] rounds back to y under RTO *)
  let check v =
    Alcotest.(check int64)
      (Printf.sprintf "%h rounds to y" v)
      y
      (Softfp.of_rat tout Softfp.RTO (Rat.of_float v))
  in
  check iv.Rlibm.Intervals.lo;
  check iv.Rlibm.Intervals.hi;
  check (0.5 *. (iv.Rlibm.Intervals.lo +. iv.Rlibm.Intervals.hi));
  (* and the doubles just outside do not *)
  Alcotest.(check bool) "below is different" false
    (Int64.equal y
       (Softfp.of_rat tout Softfp.RTO
          (Rat.of_float (Float.pred iv.Rlibm.Intervals.lo))));
  Alcotest.(check bool) "above is different" false
    (Int64.equal y
       (Softfp.of_rat tout Softfp.RTO
          (Rat.of_float (Float.succ iv.Rlibm.Intervals.hi))))

let test_interval_even_degenerate () =
  (* 1.0 is exactly representable: its pattern is even and the interval is
     the single point. *)
  let y = Softfp.of_rat tout Softfp.RTO Rat.one in
  Alcotest.(check bool) "even" false (Softfp.frac_odd tout y);
  let iv = Rlibm.Intervals.of_round_to_odd tout y in
  Alcotest.(check bool) "degenerate" true (Rlibm.Intervals.is_degenerate iv);
  Alcotest.(check (float 0.0)) "at 1" 1.0 iv.Rlibm.Intervals.lo

let test_interval_rejects_nonfinite () =
  Alcotest.check_raises "inf"
    (Invalid_argument "Intervals.of_round_to_odd: not finite") (fun () ->
      ignore
        (Rlibm.Intervals.of_round_to_odd tout (Softfp.inf_bits tout ~neg:false)))

(* ---------- reductions ---------- *)

let family f =
  Rlibm.Reduction.make f ~out_fmt:tout ~pieces:2 ~table_bits:4

let test_exp2_reduction_identity () =
  let fam = family Oracle.Exp2 in
  List.iter
    (fun x ->
      let red = fam.Rlibm.Reduction.reduce x in
      (* reconstruct: oc(2^r) should equal 2^x up to double rounding *)
      let v = red.Rlibm.Reduction.oc (Float.exp2 red.Rlibm.Reduction.r) in
      Alcotest.(check bool)
        (Printf.sprintf "2^%h" x)
        true
        (Float.abs (v -. Float.exp2 x) <= 1e-10 *. Float.exp2 x);
      Alcotest.(check bool) "r in [0,1)" true
        (red.Rlibm.Reduction.r >= 0.0 && red.Rlibm.Reduction.r < 1.0))
    [ 0.0; 0.5; 3.25; -2.75; 7.9; -12.0625 ]

let test_exp2_exact_fraction () =
  let fam = family Oracle.Exp2 in
  (* for exp2 the reduced input is exactly x - floor x *)
  let red = fam.Rlibm.Reduction.reduce 3.625 in
  Alcotest.(check (float 0.0)) "frac" 0.625 red.Rlibm.Reduction.r

let test_exp_shortcuts () =
  let fam = family Oracle.Exp in
  Alcotest.(check bool) "overflow" true
    (fam.Rlibm.Reduction.shortcut 1.0e6 <> None);
  Alcotest.(check bool) "underflow" true
    (fam.Rlibm.Reduction.shortcut (-1.0e6) <> None);
  Alcotest.(check bool) "normal" true (fam.Rlibm.Reduction.shortcut 1.0 = None);
  (* shortcut results round correctly in every mode *)
  (match fam.Rlibm.Reduction.shortcut 1.0e6 with
  | Some v ->
      Alcotest.(check bool) "huge RNE=inf" true
        (Softfp.classify tout (Softfp.of_rat tout Softfp.RNE (Rat.of_float v))
        = Softfp.Inf);
      Alcotest.(check int64) "huge RTO=maxfin"
        (Softfp.max_finite_bits tout ~neg:false)
        (Softfp.of_rat tout Softfp.RTO (Rat.of_float v))
  | None -> Alcotest.fail "expected shortcut");
  match fam.Rlibm.Reduction.shortcut (-1.0e6) with
  | Some v ->
      Alcotest.(check int64) "tiny RNE=0" (Softfp.zero_bits tout)
        (Softfp.of_rat tout Softfp.RNE (Rat.of_float v));
      Alcotest.(check int64) "tiny RTU=minsub"
        (Softfp.min_subnormal_bits tout ~neg:false)
        (Softfp.of_rat tout Softfp.RTU (Rat.of_float v))
  | None -> Alcotest.fail "expected shortcut"

let test_exp_near_one_shortcut () =
  (* For tiny |x| the shortcut must return a double that rounds, in every
     mode and width, exactly like the true result 2^x (which lies strictly
     between 1 and its neighbour in the target). *)
  let fam = family Oracle.Exp2 in
  List.iter
    (fun x ->
      match fam.Rlibm.Reduction.shortcut x with
      | None -> Alcotest.failf "expected near-one shortcut for %h" x
      | Some v ->
          let r = Oracle.make_rounder Oracle.Exp2 (Rat.of_float x) in
          List.iter
            (fun mode ->
              List.iter
                (fun prec ->
                  let f = Softfp.make_fmt ~ebits:5 ~prec in
                  Alcotest.(check int64)
                    (Printf.sprintf "%h %s p%d" x (Softfp.mode_to_string mode)
                       prec)
                    (Oracle.round_with r ~fmt:f ~mode)
                    (Softfp.of_rat f mode (Rat.of_float v)))
                [ 2; 5; 8; 10 ])
            (Softfp.RTO :: Softfp.all_standard_modes))
    [ 1e-7; -1e-7; 4.2e-5; -3.3e-6; Float.ldexp 1.0 (-20) ];
  (* x = 0 must NOT shortcut: the exact value 1 belongs to the polynomial
     path's degenerate constraint *)
  Alcotest.(check bool) "0 not shortcut" true
    (fam.Rlibm.Reduction.shortcut 0.0 = None)

let test_log_reduction_identity () =
  List.iter
    (fun (f, reference) ->
      let fam = family f in
      List.iter
        (fun x ->
          let red = fam.Rlibm.Reduction.reduce x in
          let r = red.Rlibm.Reduction.r in
          Alcotest.(check bool) "r in [0, 2^-J)" true (r >= 0.0 && r < 1.0 /. 16.0);
          (* oc(log_b(1+r)) ~ log_b(x) *)
          let v = red.Rlibm.Reduction.oc (reference (1.0 +. r)) in
          Alcotest.(check bool)
            (Printf.sprintf "%s %h: %h vs %h" (Oracle.name f) x v (reference x))
            true
            (Float.abs (v -. reference x)
            <= 1e-9 *. Float.max 1.0 (Float.abs (reference x))))
        [ 1.0; 1.5; 2.0; 0.75; 1024.0; 3.1e-3; 7.25e5 ])
    [
      (Oracle.Log, log);
      (Oracle.Log2, Float.log2);
      (Oracle.Log10, log10);
    ]

let test_log_shortcuts () =
  let fam = family Oracle.Log in
  (match fam.Rlibm.Reduction.shortcut 0.0 with
  | Some v -> Alcotest.(check (float 0.0)) "log 0" Float.neg_infinity v
  | None -> Alcotest.fail "log 0 shortcut");
  (match fam.Rlibm.Reduction.shortcut (-1.0) with
  | Some v -> Alcotest.(check bool) "log neg" true (Float.is_nan v)
  | None -> Alcotest.fail "log neg shortcut");
  Alcotest.(check bool) "log pos" true (fam.Rlibm.Reduction.shortcut 2.0 = None)

(* ---------- reduced intervals ---------- *)

let test_reduced_interval_exponential () =
  (* Exponential OC is exact scaling: the reduced interval must map back
     exactly inside. *)
  let fam = family Oracle.Exp2 in
  let red = fam.Rlibm.Reduction.reduce 5.3 in
  let y =
    Oracle.correctly_round Oracle.Exp2 (Rat.of_float 5.3) ~fmt:tout
      ~mode:Softfp.RTO
  in
  let iv = Rlibm.Intervals.of_round_to_odd tout y in
  match Rlibm.Constraints.reduced_interval red iv with
  | None -> Alcotest.fail "reduced interval must exist"
  | Some (lo, hi) ->
      Alcotest.(check bool) "nonempty" true (lo <= hi);
      List.iter
        (fun v ->
          let out = red.Rlibm.Reduction.oc v in
          Alcotest.(check bool)
            (Printf.sprintf "oc %h inside" v)
            true
            (Rlibm.Intervals.contains iv out))
        [ lo; hi; 0.5 *. (lo +. hi) ]

let test_reduced_interval_log () =
  (* Log OC rounds (an addition): the fix-up loop must still deliver
     endpoints that map inside. *)
  let fam = family Oracle.Log2 in
  List.iter
    (fun x ->
      let red = fam.Rlibm.Reduction.reduce x in
      let y =
        Oracle.correctly_round Oracle.Log2 (Rat.of_float x) ~fmt:tout
          ~mode:Softfp.RTO
      in
      let iv = Rlibm.Intervals.of_round_to_odd tout y in
      match Rlibm.Constraints.reduced_interval red iv with
      | None -> () (* possible for degenerate intervals; fine *)
      | Some (lo, hi) ->
          Alcotest.(check bool) "nonempty" true (lo <= hi);
          List.iter
            (fun v ->
              Alcotest.(check bool)
                (Printf.sprintf "log2 %h: oc %h inside" x v)
                true
                (Rlibm.Intervals.contains iv (red.Rlibm.Reduction.oc v)))
            [ lo; hi ])
    [ 1.17; 3.0; 9.5; 1000.0; 0.0625; 0.7 ]

let test_reduced_interval_budget_per_direction () =
  (* Regression: the fix-up loops used to share one 256-step budget, so a
     boundary needing many lower nudges starved the upper fix-up and a
     recoverable constraint was misclassified as infeasible.  Build a
     synthetic reduction whose exact inverse lands ~200 nudges outside on
     *both* sides: the lower loop needs ~200 of its 256 steps, and the
     upper loop must still have a full budget of its own. *)
  let ulp = Float.succ 1.0 -. 1.0 in
  let iv = { Rlibm.Intervals.lo = 1.0; hi = 1.0 +. (64.0 *. ulp) } in
  let mid = Rat.of_float (1.0 +. (32.0 *. ulp)) in
  let shift = Rat.of_float (100.0 *. ulp) in
  let oc_inv q =
    (* push the lower endpoint below the interval and the upper one
       above it, so both directions have repair work to do *)
    if Rat.compare q mid <= 0 then Rat.sub q shift else Rat.add q shift
  in
  let red =
    { Rlibm.Reduction.r = 0.0; piece = 0; oc = (fun v -> v); oc_inv }
  in
  match Rlibm.Constraints.reduced_interval red iv with
  | None ->
      Alcotest.fail
        "feasible constraint misclassified: the upper fix-up was starved"
  | Some (lo, hi) ->
      Alcotest.(check bool) "nonempty" true (lo <= hi);
      Alcotest.(check bool) "lo mapped inside" true
        (Rlibm.Intervals.contains iv lo);
      Alcotest.(check bool) "hi mapped inside" true
        (Rlibm.Intervals.contains iv hi)

(* ---------- constraint building ---------- *)

let test_build_merges_and_covers () =
  let cfg = { mini with Rlibm.Config.pieces = 2 } in
  let fam =
    Rlibm.Reduction.make Oracle.Exp2 ~out_fmt:tout ~pieces:2
      ~table_bits:cfg.Rlibm.Config.table_bits
  in
  let inputs = Array.init 64 (fun i -> Softfp.of_ordinal cfg.Rlibm.Config.tin (i + 400)) in
  let built = Rlibm.Constraints.build ~cfg ~family:fam ~inputs in
  Alcotest.(check int) "two piece buckets" 2 (Array.length built.Rlibm.Constraints.points);
  let n_pts =
    Array.fold_left (fun acc a -> acc + Array.length a) 0 built.Rlibm.Constraints.points
  in
  let n_specials = List.length built.Rlibm.Constraints.immediate_specials in
  let n_xs =
    Array.fold_left
      (fun acc a ->
        Array.fold_left
          (fun acc p -> acc + List.length p.Rlibm.Constraints.xs)
          acc a)
      0 built.Rlibm.Constraints.points
  in
  Alcotest.(check bool) "every input accounted" true (n_xs + n_specials <= 64);
  Alcotest.(check bool) "some constraints" true (n_pts > 0);
  (* every constraint interval is nonempty and pieces are correct *)
  Array.iteri
    (fun pi pts ->
      Array.iter
        (fun p ->
          Alcotest.(check bool) "nonempty" true
            (p.Rlibm.Constraints.lo <= p.Rlibm.Constraints.hi);
          Alcotest.(check int) "piece" pi p.Rlibm.Constraints.piece)
        pts)
    built.Rlibm.Constraints.points

let test_mini_config_sanity () =
  Alcotest.(check int) "tout width" 15 (Softfp.width tout);
  Alcotest.(check int) "tout prec" 10 tout.Softfp.prec;
  List.iter
    (fun f ->
      let cfg = Rlibm.Config.mini_for f in
      Alcotest.(check bool) "pieces >= 1" true (cfg.Rlibm.Config.pieces >= 1))
    Oracle.all

let suite =
  [
    ("odd rounding interval", `Quick, test_interval_odd);
    ("even degenerate interval", `Quick, test_interval_even_degenerate);
    ("interval rejects non-finite", `Quick, test_interval_rejects_nonfinite);
    ("exp2 reduction identity", `Quick, test_exp2_reduction_identity);
    ("exp2 exact fraction", `Quick, test_exp2_exact_fraction);
    ("exp shortcuts", `Quick, test_exp_shortcuts);
    ("exp near-one shortcut", `Quick, test_exp_near_one_shortcut);
    ("log reduction identity", `Quick, test_log_reduction_identity);
    ("log shortcuts", `Quick, test_log_shortcuts);
    ("reduced interval exponential", `Quick, test_reduced_interval_exponential);
    ("reduced interval log (fixup)", `Quick, test_reduced_interval_log);
    ( "reduced interval per-direction budget",
      `Quick,
      test_reduced_interval_budget_per_direction );
    ("constraint building", `Quick, test_build_merges_and_covers);
    ("mini config", `Quick, test_mini_config_sanity);
  ]
