(* Tests for the hardened persistent artifact store: header/checksum
   validation, quarantine-and-regenerate on every corruption mode,
   atomic concurrent publishes, and the acceptance criterion that a
   poisoned oracle cache can never change generated output. *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let has_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let dir_entries_with ~sub d =
  Sys.readdir d |> Array.to_list |> List.filter (has_substring ~sub)

let dir_counter = ref 0

(* Run [f] against a fresh store directory with zeroed counters, restoring
   the previous directory afterwards (other suites share the process). *)
let in_fresh_dir f =
  let saved = Cache.dir () in
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rlibm-cache-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  Cache.set_dir d;
  Cache.reset_stats ();
  Fun.protect ~finally:(fun () -> Cache.set_dir saved) (fun () -> f d)

let check_counts ~hits ~misses ~corrupt () =
  let s = Cache.stats () in
  Alcotest.(check int) "hits" hits s.Cache.hits;
  Alcotest.(check int) "misses" misses s.Cache.misses;
  Alcotest.(check int) "corrupt-rejected" corrupt s.Cache.corrupt_rejected

(* Expect a load to reject: a typed corrupt/key-mismatch error, one
   corrupt-rejected count, the entry quarantined aside (so the next load
   is a clean miss). *)
let check_rejected ~key d =
  let corrupt_before = (Cache.stats ()).Cache.corrupt_rejected in
  (match (Cache.load ~kind:"test" ~key : (int list option, Diag.Error.t) result) with
  | Error (Diag.Error.Corrupt_artifact { kind; key = k; _ })
  | Error (Diag.Error.Key_mismatch { kind; key = k }) ->
      Alcotest.(check string) "error carries the kind" "test" kind;
      Alcotest.(check string) "error carries the key" key k
  | Ok _ -> Alcotest.fail "corrupt entry was not rejected"
  | Error e -> Alcotest.failf "unexpected error %s" (Diag.Error.to_string e));
  Alcotest.(check int) "one more corrupt-rejected" (corrupt_before + 1)
    (Cache.stats ()).Cache.corrupt_rejected;
  Alcotest.(check bool) "quarantined aside" true
    (dir_entries_with ~sub:".corrupt-" d <> []);
  Alcotest.(check bool) "original gone" false
    (Sys.file_exists (Cache.path_of_key key));
  Alcotest.(check bool) "subsequent load is a miss" true
    (Cache.load ~kind:"test" ~key = (Ok None : (int list option, Diag.Error.t) result))

let value : int list = List.init 257 (fun i -> (i * i) - 7)

let test_roundtrip () =
  in_fresh_dir (fun _d ->
      Alcotest.(check bool) "store succeeds" true
        (Cache.store ~kind:"test" ~key:"roundtrip" value = Ok ());
      Alcotest.(check bool) "loads back" true
        (Cache.load ~kind:"test" ~key:"roundtrip" = Ok (Some value));
      check_counts ~hits:1 ~misses:0 ~corrupt:0 ();
      let s = Cache.stats () in
      Alcotest.(check bool) "bytes written" true (s.Cache.bytes_written > 0);
      Alcotest.(check bool) "bytes read" true
        (s.Cache.bytes_read = s.Cache.bytes_written))

let test_miss () =
  in_fresh_dir (fun _d ->
      Alcotest.(check bool) "absent" true
        (Cache.load ~kind:"test" ~key:"never-stored"
        = (Ok None : (int list option, Diag.Error.t) result));
      check_counts ~hits:0 ~misses:1 ~corrupt:0 ())

let test_per_kind_stats () =
  in_fresh_dir (fun _d ->
      ignore (Cache.store ~kind:"oracle" ~key:"k1" value : (unit, Diag.Error.t) result);
      ignore (Cache.store ~kind:"poly" ~key:"k2" value : (unit, Diag.Error.t) result);
      ignore (Cache.load ~kind:"oracle" ~key:"k1" : (int list option, Diag.Error.t) result);
      ignore (Cache.load ~kind:"oracle" ~key:"k1" : (int list option, Diag.Error.t) result);
      ignore (Cache.load ~kind:"poly" ~key:"absent" : (int list option, Diag.Error.t) result);
      let kinds = Cache.stats_by_kind () in
      let find k = List.assoc k kinds in
      let o = find "oracle" and p = find "poly" in
      Alcotest.(check int) "oracle hits" 2 o.Cache.hits;
      Alcotest.(check int) "oracle misses" 0 o.Cache.misses;
      Alcotest.(check bool) "oracle bytes written" true
        (o.Cache.bytes_written > 0);
      Alcotest.(check int) "poly hits" 0 p.Cache.hits;
      Alcotest.(check int) "poly misses" 1 p.Cache.misses;
      (* global counters are the sum over kinds *)
      let s = Cache.stats () in
      Alcotest.(check int) "global hits" (o.Cache.hits + p.Cache.hits)
        s.Cache.hits;
      Alcotest.(check int) "global misses" (o.Cache.misses + p.Cache.misses)
        s.Cache.misses;
      (* the per-kind report renders one line per kind *)
      let rendered =
        Format.asprintf "%a" Cache.pp_stats_by_kind (Cache.stats_by_kind ())
      in
      Alcotest.(check bool) "report names both kinds" true
        (has_substring ~sub:"oracle" rendered
        && has_substring ~sub:"poly" rendered))

let test_truncated () =
  in_fresh_dir (fun d ->
      let key = "truncated" in
      ignore (Cache.store ~kind:"test" ~key value : (unit, Diag.Error.t) result);
      let path = Cache.path_of_key key in
      let data = read_file path in
      write_file path (String.sub data 0 (String.length data - 5));
      check_rejected ~key d)

let test_bitflip_payload () =
  in_fresh_dir (fun d ->
      let key = "bitflip" in
      ignore (Cache.store ~kind:"test" ~key value : (unit, Diag.Error.t) result);
      let path = Cache.path_of_key key in
      let b = Bytes.of_string (read_file path) in
      let off = Bytes.length b - 3 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
      write_file path (Bytes.to_string b);
      check_rejected ~key d)

let test_wrong_version () =
  in_fresh_dir (fun d ->
      let key = "wrong-version" in
      ignore (Cache.store ~kind:"test" ~key value : (unit, Diag.Error.t) result);
      let path = Cache.path_of_key key in
      let b = Bytes.of_string (read_file path) in
      (* the u32 at offset 8 is the container format version *)
      Bytes.set_int32_be b 8 (Int32.of_int (Cache.format_version + 13));
      write_file path (Bytes.to_string b);
      check_rejected ~key d)

let test_wrong_key () =
  in_fresh_dir (fun d ->
      (* A file renamed (or hash-collided) onto another key's path still
         carries the full key in its header and must be rejected. *)
      ignore (Cache.store ~kind:"test" ~key:"key-a" value
        : (unit, Diag.Error.t) result);
      write_file (Cache.path_of_key "key-b")
        (read_file (Cache.path_of_key "key-a"));
      check_rejected ~key:"key-b" d;
      (* the genuine entry is untouched *)
      Alcotest.(check bool) "key-a still loads" true
        (Cache.load ~kind:"test" ~key:"key-a" = Ok (Some value)))

let test_legacy_unversioned_blob () =
  in_fresh_dir (fun d ->
      (* The pre-hardening cache wrote raw Marshal blobs.  One planted at
         the new path must be rejected on the magic check — stale entries
         are regenerated, never trusted (and never deserialized). *)
      let key = "legacy" in
      write_file (Cache.path_of_key key) (Marshal.to_string value []);
      check_rejected ~key d)

let test_concurrent_writers () =
  in_fresh_dir (fun d ->
      let key = "concurrent" in
      let rounds = 50 in
      let writer tag =
        Domain.spawn (fun () ->
            for i = 1 to rounds do
              ignore (Cache.store ~kind:"test" ~key (tag, i)
                : (unit, Diag.Error.t) result)
            done)
      in
      let d1 = writer "a" and d2 = writer "b" in
      Domain.join d1;
      Domain.join d2;
      (* Whatever interleaving happened, the published file is one
         writer's complete, validating record — never a torn mix. *)
      (match
         (Cache.load ~kind:"test" ~key
           : ((string * int) option, Diag.Error.t) result)
       with
      | Ok (Some (tag, i)) ->
          Alcotest.(check bool) "a complete record" true
            ((tag = "a" || tag = "b") && i = rounds)
      | Ok None | Error _ -> Alcotest.fail "published entry must validate");
      check_counts ~hits:1 ~misses:0 ~corrupt:0 ();
      Alcotest.(check (list string)) "no temp litter" []
        (dir_entries_with ~sub:".tmp-" d))

(* ---------- acceptance: poisoning never changes generated output ---------- *)

let tiny_cfg =
  {
    Rlibm.Config.default_mini with
    Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:7;
    table_bits = 3;
    max_specials = 40;
    max_rounds = 20;
  }

(* Everything observable about a generated function, as exact bits (same
   shape as the determinism fingerprint in test_parallel.ml). *)
let fingerprint (g : Rlibm.Generate.generated) =
  let coeffs =
    Array.to_list g.Rlibm.Generate.pieces
    |> List.concat_map (fun (p : Polyeval.compiled) ->
           Array.to_list (Array.map Int64.bits_of_float p.Polyeval.data))
  in
  let specials =
    Hashtbl.fold
      (fun x v acc -> (x, Int64.bits_of_float v) :: acc)
      g.Rlibm.Generate.specials []
    |> List.sort compare
  in
  let oracle =
    Hashtbl.fold (fun x y acc -> (x, y) :: acc) g.Rlibm.Generate.oracle []
    |> List.sort compare
  in
  (coeffs, Array.to_list g.Rlibm.Generate.degrees, specials, oracle)

let generate_and_verify () =
  Rlibm.Constraints.clear_memory_cache ();
  match Genlibm.generate ~cfg:tiny_cfg ~scheme:Polyeval.Estrin Oracle.Exp2 with
  | Error err -> Alcotest.failf "generation failed: %s" (Diag.Error.to_string err)
  | Ok g ->
      let inputs = Genlibm.inputs_exhaustive tiny_cfg.Rlibm.Config.tin in
      let rep = Genlibm.verify g ~inputs in
      (fingerprint g, rep)

let test_poisoned_cache_bit_identity () =
  in_fresh_dir (fun d ->
      let cold, cold_rep = generate_and_verify () in
      let key =
        Rlibm.Constraints.oracle_cache_key ~func:Oracle.Exp2
          ~tin:tiny_cfg.Rlibm.Config.tin
          ~tout:(Rlibm.Config.tout tiny_cfg)
      in
      let path = Cache.path_of_key key in
      Alcotest.(check bool) "oracle table persisted" true
        (Sys.file_exists path);
      (* warm run: disk hit, still bit-identical *)
      let warm, warm_rep = generate_and_verify () in
      Alcotest.(check bool) "warm = cold" true (warm = cold && warm_rep = cold_rep);
      (* poison the payload and regenerate: the store must reject,
         quarantine, recompute — and the output must not move a bit *)
      let b = Bytes.of_string (read_file path) in
      let off = Bytes.length b - 11 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x55));
      write_file path (Bytes.to_string b);
      Cache.reset_stats ();
      let poisoned, poisoned_rep = generate_and_verify () in
      Alcotest.(check bool) "coefficients/specials/oracle bit-identical" true
        (poisoned = cold);
      Alcotest.(check bool) "verification verdicts identical" true
        (poisoned_rep = cold_rep);
      Alcotest.(check bool) "rejection counted" true
        ((Cache.stats ()).Cache.corrupt_rejected >= 1);
      Alcotest.(check bool) "poisoned file quarantined" true
        (dir_entries_with ~sub:".corrupt-" d <> []);
      (* the regeneration republished a valid entry *)
      Alcotest.(check bool) "entry republished" true (Sys.file_exists path);
      let republished, republished_rep = generate_and_verify () in
      Alcotest.(check bool) "republished entry validates and matches" true
        (republished = cold && republished_rep = cold_rep))

let suite =
  [
    ("store/load roundtrip", `Quick, test_roundtrip);
    ("absent entry is a miss", `Quick, test_miss);
    ("per-kind counters", `Quick, test_per_kind_stats);
    ("truncated file rejected", `Quick, test_truncated);
    ("bit-flipped payload rejected", `Quick, test_bitflip_payload);
    ("wrong format version rejected", `Quick, test_wrong_version);
    ("wrong key header rejected", `Quick, test_wrong_key);
    ("legacy unversioned blob rejected", `Quick, test_legacy_unversioned_blob);
    ("concurrent writers never tear", `Quick, test_concurrent_writers);
    ( "poisoned cache: output bit-identical to cold run",
      `Slow,
      test_poisoned_cache_bit_identity );
  ]
