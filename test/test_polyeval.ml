(* Tests for the evaluation schemes: bit-exact agreement between the fast
   closures and the reference DAG semantics, Knuth adaptation identities,
   operation counts from the paper, and the cubic solver. *)

let powers n = Array.init n Fun.id

let dense_exact coeffs x =
  Lp.eval_poly ~powers:(powers (Array.length coeffs))
    (Array.map Rat.of_float coeffs)
    x

(* ---------- cubic solver ---------- *)

let test_cubic_known_roots () =
  (* (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6 *)
  let root = Cubic.real_root ~c3:1.0 ~c2:(-6.0) ~c1:11.0 ~c0:(-6.0) in
  let p = Cubic.eval ~c3:1.0 ~c2:(-6.0) ~c1:11.0 ~c0:(-6.0) in
  Alcotest.(check bool) "is a root" true (Float.abs (p root) < 1e-9);
  (* single real root *)
  let root = Cubic.real_root ~c3:1.0 ~c2:0.0 ~c1:0.0 ~c0:(-8.0) in
  Alcotest.(check (float 1e-12)) "cbrt 8" 2.0 root;
  (* negative leading coefficient *)
  let root = Cubic.real_root ~c3:(-2.0) ~c2:0.0 ~c1:0.0 ~c0:16.0 in
  Alcotest.(check (float 1e-12)) "neg leading" 2.0 root;
  Alcotest.check_raises "degree < 3"
    (Invalid_argument "Cubic.real_root: degree < 3") (fun () ->
      ignore (Cubic.real_root ~c3:0.0 ~c2:1.0 ~c1:0.0 ~c0:0.0))

let prop_cubic_random =
  let gen =
    QCheck2.Gen.(
      let* c3 = float_range (-10.0) 10.0 in
      let* c2 = float_range (-10.0) 10.0 in
      let* c1 = float_range (-10.0) 10.0 in
      let* c0 = float_range (-10.0) 10.0 in
      return (c3, c2, c1, c0))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"cubic root residual is tiny" gen
       (fun (c3, c2, c1, c0) ->
         QCheck2.assume (Float.abs c3 > 0.01);
         let x = Cubic.real_root ~c3 ~c2 ~c1 ~c0 in
         let residual = Float.abs (Cubic.eval ~c3 ~c2 ~c1 ~c0 x) in
         let scale =
           1.0 +. Float.abs c0 +. Float.abs c1 +. Float.abs c2 +. Float.abs c3
         in
         residual /. scale < 1e-8))

(* ---------- paper's running example ---------- *)

let test_paper_example () =
  (* u(x) = -6 + 6x + 42x^2 + 18x^3 + 2x^4, adapted:
     y = (x+4)x - 1, u = ((y + x + 3)y - 1) * 2 *)
  let u = [| -6.; 6.; 42.; 18.; 2. |] in
  match Polyeval.adapt_knuth u with
  | None -> Alcotest.fail "adaptation must exist"
  | Some a ->
      Alcotest.(check (array (float 0.0))) "alphas" [| 4.; -1.; 3.; -1.; 2. |] a;
      (* evaluation matches the dense polynomial exactly here (the adapted
         coefficients are small integers) *)
      List.iter
        (fun x ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "u(%g)" x)
            (Rat.to_float (dense_exact u (Rat.of_float x)))
            (Polyeval.eval_knuth ~degree:4 a x))
        [ -2.0; -0.5; 0.0; 0.3; 1.0; 2.5 ]

(* ---------- op counts from the paper ---------- *)

let test_op_counts () =
  let cost s d = Expr.cost (Polyeval.scheme_expr s ~degree:d) in
  let check name c (m, a, f) =
    Alcotest.(check (triple int int int))
      name (m, a, f)
      (c.Expr.mults, c.Expr.adds, c.Expr.fmas)
  in
  (* Horner: d mults + d adds *)
  check "horner 4" (cost Polyeval.Horner 4) (4, 4, 0);
  check "horner 6" (cost Polyeval.Horner 6) (6, 6, 0);
  (* Knuth, from Section 3: deg 4 = 3 mul/5 add; deg 5 = 4 mul/5 add;
     deg 6 = 4 mul/7 add *)
  check "knuth 4" (cost Polyeval.Knuth 4) (3, 5, 0);
  check "knuth 5" (cost Polyeval.Knuth 5) (4, 5, 0);
  check "knuth 6" (cost Polyeval.Knuth 6) (4, 7, 0);
  (* Horner-fma: d fmas *)
  check "horner-fma 5" (cost Polyeval.HornerFma 5) (0, 0, 5);
  (* Estrin+fma degree 5: x^2, y^2 mults + 5 fmas *)
  check "estrin-fma 5" (cost Polyeval.EstrinFma 5) (2, 0, 5)

let test_depth_ordering () =
  (* The whole point of Estrin: dependence chains shrink. *)
  List.iter
    (fun d ->
      let depth s = (Expr.cost (Polyeval.scheme_expr s ~degree:d)).Expr.depth in
      Alcotest.(check bool)
        (Printf.sprintf "estrin-fma < horner at degree %d" d)
        true
        (depth Polyeval.EstrinFma < depth Polyeval.Horner);
      Alcotest.(check bool)
        (Printf.sprintf "estrin < horner at degree %d" d)
        true
        (depth Polyeval.Estrin < depth Polyeval.Horner))
    [ 4; 5; 6; 7; 8 ];
  List.iter
    (fun d ->
      let depth s = (Expr.cost (Polyeval.scheme_expr s ~degree:d)).Expr.depth in
      Alcotest.(check bool)
        (Printf.sprintf "knuth <= horner at degree %d" d)
        true
        (depth Polyeval.Knuth <= depth Polyeval.Horner))
    [ 4; 5; 6 ]

(* ---------- bit-exact agreement: closures vs DAG ---------- *)

let arb_coeffs_and_x =
  QCheck2.Gen.(
    let* d = int_range 0 8 in
    let* coeffs = array_size (return (d + 1)) (float_range (-4.0) 4.0) in
    let* x = float_range (-2.0) 2.0 in
    return (coeffs, x))

let prop_closure_matches_dag scheme =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:600
       ~name:
         (Printf.sprintf "%s closure = DAG semantics"
            (Polyeval.scheme_name scheme))
       arb_coeffs_and_x
       (fun (coeffs, x) ->
         match Polyeval.compile scheme coeffs with
         | None ->
             scheme = Polyeval.Knuth
             && (Array.length coeffs - 1 < 4
                || Array.length coeffs - 1 > 6
                || coeffs.(Array.length coeffs - 1) = 0.0
                || Polyeval.adapt_knuth coeffs = None)
         | Some c ->
             let fast = c.Polyeval.eval x in
             let reference =
               Expr.eval_float c.Polyeval.expr ~data:c.Polyeval.data x
             in
             Int64.equal (Int64.bits_of_float fast)
               (Int64.bits_of_float reference)))

(* ---------- bit-exact agreement: batch kernel vs closures ---------- *)

let prop_eval_into_matches_closure scheme =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:400
       ~name:
         (Printf.sprintf "%s eval_into = scalar closure"
            (Polyeval.scheme_name scheme))
       QCheck2.Gen.(
         let* d = int_range 0 10 in
         let* coeffs = array_size (return (d + 1)) (float_range (-4.0) 4.0) in
         let* xs = array_size (int_range 1 17) (float_range (-2.0) 2.0) in
         let* lo = int_range 0 3 in
         return (coeffs, xs, lo))
       (fun (coeffs, xs, lo) ->
         match Polyeval.compile scheme coeffs with
         | None -> true
         | Some c ->
             let n = Array.length xs in
             (* pad the window on both sides: slots outside [lo, hi)
                must keep their sentinel *)
             let len = lo + n + 1 in
             let src = Float.Array.make len 0.0 in
             let dst = Float.Array.make len Float.nan in
             Array.iteri (fun i x -> Float.Array.set src (lo + i) x) xs;
             Polyeval.eval_into scheme c.Polyeval.data ~src ~dst ~lo
               ~hi:(lo + n);
             let ok = ref (Float.is_nan (Float.Array.get dst (len - 1))) in
             if lo > 0 then
               ok := !ok && Float.is_nan (Float.Array.get dst (lo - 1));
             Array.iteri
               (fun i x ->
                 let want = Int64.bits_of_float (c.Polyeval.eval x) in
                 let got =
                   Int64.bits_of_float (Float.Array.get dst (lo + i))
                 in
                 ok := !ok && Int64.equal want got)
               xs;
             !ok))

let test_eval_into_knuth_bad_degree () =
  let src = Float.Array.make 1 0.5 and dst = Float.Array.make 1 0.0 in
  Alcotest.check_raises "knuth data length"
    (Invalid_argument "Polyeval.eval_into: Knuth degree must be 4, 5 or 6")
    (fun () ->
      Polyeval.eval_into Polyeval.Knuth [| 1.0; 2.0 |] ~src ~dst ~lo:0 ~hi:1)

(* ---------- algebraic identities ---------- *)

let prop_exact_value_is_dense scheme =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300
       ~name:
         (Printf.sprintf "%s algebraic value = dense polynomial"
            (Polyeval.scheme_name scheme))
       arb_coeffs_and_x
       (fun (coeffs, x) ->
         match Polyeval.compile scheme coeffs with
         | None -> true
         | Some c ->
             let xe = Rat.of_float x in
             Rat.equal (Polyeval.eval_exact c xe) (dense_exact coeffs xe)))

let prop_knuth_identity =
  (* Adaptation computed in doubles: the adapted form expands to a
     polynomial within solver/rounding tolerance of the original. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:400 ~name:"knuth adaptation is a near-identity"
       QCheck2.Gen.(
         let* d = int_range 4 6 in
         let* coeffs = array_size (return (d + 1)) (float_range (-3.0) 3.0) in
         let* x = float_range (-2.0) 2.0 in
         return (coeffs, x))
       (fun (coeffs, x) ->
         let d = Array.length coeffs - 1 in
         QCheck2.assume (Float.abs coeffs.(d) > 0.25);
         match Polyeval.compile Polyeval.Knuth coeffs with
         | None -> false
         | Some c ->
             let xe = Rat.of_float x in
             let got = Rat.to_float (Polyeval.eval_exact c xe) in
             let want = Rat.to_float (dense_exact coeffs xe) in
             let scale =
               Array.fold_left (fun acc v -> acc +. Float.abs v) 1.0 coeffs
             in
             (* cubic-root conditioning can cost many digits; a wrong
                formula errs at O(1) relative, so 1e-4 still catches it
                while tolerating ill-conditioned draws *)
             let conditioning = 1.0 +. (scale /. Float.abs coeffs.(d)) in
             Float.abs (got -. want) /. (scale *. conditioning ** 2.0) < 1e-4))

let test_knuth_na_cases () =
  Alcotest.(check bool) "degree 3" true (Polyeval.adapt_knuth [| 1.; 2.; 3.; 4. |] = None);
  Alcotest.(check bool) "degree 7" true
    (Polyeval.adapt_knuth (Array.make 8 1.0) = None);
  Alcotest.(check bool) "zero leading" true
    (Polyeval.adapt_knuth [| 1.; 2.; 3.; 4.; 0.0 |] = None);
  Alcotest.(check bool) "compile falls back" true
    (Polyeval.compile Polyeval.Knuth [| 1.; 2. |] = None)

let test_scheme_names () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Polyeval.scheme_name s) true
        (Polyeval.scheme_of_name (Polyeval.scheme_name s) = Some s))
    Polyeval.all_schemes;
  Alcotest.(check int) "paper schemes" 4 (List.length Polyeval.paper_schemes)

let test_estrin_matches_algorithm1 () =
  (* Degree 6, explicit trace of Algorithm 1 with fma. *)
  let c = [| 1.; 2.; 3.; 4.; 5.; 6.; 7. |] in
  let x = 0.37 in
  let fma = Float.fma in
  let v0 = fma c.(1) x c.(0) and v1 = fma c.(3) x c.(2) and v2 = fma c.(5) x c.(4) in
  let v3 = c.(6) in
  let y = x *. x in
  let w0 = fma v1 y v0 and w1 = fma v3 y v2 in
  let expect = fma w1 (y *. y) w0 in
  Alcotest.(check (float 0.0)) "trace" expect (Polyeval.estrin_fma c x)

let suite =
  [
    ("cubic known roots", `Quick, test_cubic_known_roots);
    prop_cubic_random;
    ("paper running example", `Quick, test_paper_example);
    ("op counts (paper §3-4)", `Quick, test_op_counts);
    ("depth ordering", `Quick, test_depth_ordering);
    ("knuth N/A cases", `Quick, test_knuth_na_cases);
    ("scheme names", `Quick, test_scheme_names);
    ("estrin = Algorithm 1 trace", `Quick, test_estrin_matches_algorithm1);
    ("eval_into knuth bad degree", `Quick, test_eval_into_knuth_bad_degree);
    prop_knuth_identity;
  ]
  @ List.map prop_closure_matches_dag Polyeval.all_schemes
  @ List.map prop_eval_into_matches_closure Polyeval.all_schemes
  @ List.map prop_exact_value_is_dense
      [ Polyeval.Horner; Polyeval.HornerFma; Polyeval.Estrin; Polyeval.EstrinFma ]
