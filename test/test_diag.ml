(* The diagnostics substrate: typed error paths (corrupt snapshot,
   unwritable store, shard range), the event/span layer (nesting, levels,
   zero-cost gating) and the JSONL trace sink.  The pipeline-facing
   acceptance check lives here too: a warm run emits stage spans with
   hit status only. *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let dir_counter = ref 0

let fresh_tmp_name prefix =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !dir_counter)

(* Run [f] against a fresh store directory, restoring the previous one
   afterwards (other suites share the process). *)
let in_fresh_dir f =
  let saved = Cache.dir () in
  let d = fresh_tmp_name "rlibm-diag-test" in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  Cache.set_dir d;
  Fun.protect ~finally:(fun () -> Cache.set_dir saved) (fun () -> f d)

let tiny_cfg =
  {
    Rlibm.Config.default_mini with
    Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:7;
    table_bits = 3;
    max_specials = 40;
    max_rounds = 20;
  }

(* ---------- error domain basics ---------- *)

let test_levels () =
  List.iter
    (fun l ->
      match Diag.level_of_string (Diag.level_to_string l) with
      | Ok l' -> Alcotest.(check bool) (Diag.level_to_string l) true (l = l')
      | Error e ->
          Alcotest.failf "%s did not round-trip: %s" (Diag.level_to_string l)
            (Diag.Error.to_string e))
    [ Diag.Quiet; Diag.Error; Diag.Warn; Diag.Info; Diag.Debug ];
  match Diag.level_of_string "loud" with
  | Error (Diag.Error.Bad_config _) -> ()
  | Error e ->
      Alcotest.failf "expected Bad_config, got %s" (Diag.Error.to_string e)
  | Ok _ -> Alcotest.fail "bogus level accepted"

let test_exit_codes () =
  let codes =
    List.map Diag.Error.exit_code
      [
        Diag.Error.Bad_config { what = "x" };
        Diag.Error.Bad_spec { name = "x"; suggestion = None };
        Diag.Error.Shard_range { index = 9; count = 4 };
        Diag.Error.Store_io { path = "p"; detail = "d" };
        Diag.Error.Corrupt_artifact { kind = "k"; key = "x"; reason = "r" };
        Diag.Error.Key_mismatch { kind = "k"; key = "x" };
        Diag.Error.Stage_conflict { stage = "poly"; key = "x"; detail = "d" };
        Diag.Error.Lp_infeasible
          { func = "exp2"; scheme = "estrin"; piece = 0; degree = 3 };
        Diag.Error.Budget_exhausted
          { func = "exp2"; scheme = "estrin"; piece = 0; max_degree = 3 };
        Diag.Error.Verification_failed
          { func = "exp2"; scheme = "estrin"; wrong34 = 1; wrong_narrow = 0 };
      ]
  in
  Alcotest.(check (list int)) "documented exit-code taxonomy"
    [ 2; 2; 2; 3; 4; 4; 5; 6; 6; 7 ] codes;
  (* every error renders and carries a stable machine label *)
  List.iter
    (fun e ->
      Alcotest.(check bool) "non-empty message" true
        (String.length (Diag.Error.to_string e) > 0);
      Alcotest.(check bool) "kebab label" true
        (String.length (Diag.Error.label e) > 0
        && not (String.contains (Diag.Error.label e) ' ')))
    [
      Diag.Error.Store_io { path = "p"; detail = "d" };
      Diag.Error.Bad_spec { name = "x"; suggestion = Some "exp" };
    ]

(* ---------- typed store I/O error: unwritable store directory ---------- *)

(* Root ignores permission bits, so a chmod-based read-only directory is
   not reliable in CI containers; a path component that is a regular
   file (ENOTDIR) fails for every uid. *)
let test_store_io_error () =
  let saved = Cache.dir () in
  let blocker = fresh_tmp_name "rlibm-diag-blocker" in
  write_file blocker "not a directory";
  Cache.set_dir (Filename.concat blocker "store");
  Fun.protect
    ~finally:(fun () -> Cache.set_dir saved)
    (fun () ->
      match Cache.store ~kind:"test" ~key:"unwritable" [ 1; 2; 3 ] with
      | Error (Diag.Error.Store_io { path; detail }) ->
          Alcotest.(check bool) "path points into the store" true
            (contains ~sub:blocker path);
          Alcotest.(check bool) "detail non-empty" true (detail <> "")
      | Error e ->
          Alcotest.failf "expected Store_io, got %s" (Diag.Error.to_string e)
      | Ok () -> Alcotest.fail "store into a non-directory succeeded")

(* ---------- typed corrupt-snapshot error from Serve.build ---------- *)

(* Build a snapshot, then flip one payload byte in the stored file so
   the next load hits the store's CRC check. *)
let build_then_corrupt specs =
  (match Serve.build ~strict:true specs with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "cold build failed: %s" (Diag.Error.to_string e));
  let path = Cache.path_of_key (Serve.snapshot_key specs) in
  Alcotest.(check bool) "snapshot persisted" true (Sys.file_exists path);
  let b = Bytes.of_string (read_file path) in
  let off = Bytes.length b - 9 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x20));
  write_file path (Bytes.to_string b)

let test_corrupt_snapshot_is_typed () =
  in_fresh_dir (fun d ->
      let specs = [ (Oracle.Exp2, Polyeval.Horner, tiny_cfg) ] in
      build_then_corrupt specs;
      (* strict mode: the store must reject the entry and Serve.build
         must surface that as the typed error — no exception, no silent
         rebuild *)
      (match Serve.build ~strict:true specs with
      | Error (Diag.Error.Corrupt_artifact { kind = "snapshot"; key; _ }) ->
          Alcotest.(check string) "error carries the snapshot key"
            (Serve.snapshot_key specs) key
      | Error e ->
          Alcotest.failf "expected Corrupt_artifact, got %s"
            (Diag.Error.to_string e)
      | Ok _ -> Alcotest.fail "corrupt snapshot served");
      (* the corrupt file was quarantined, so a retry rebuilds cleanly *)
      Alcotest.(check bool) "quarantined" true
        (Sys.readdir d |> Array.to_list
        |> List.exists (contains ~sub:".corrupt-"));
      match Serve.build ~strict:true specs with
      | Ok snap ->
          Alcotest.(check int) "retry rebuilds" 1
            (List.length (Serve.entries snap))
      | Error e ->
          Alcotest.failf "retry failed: %s" (Diag.Error.to_string e))

(* Default mode degrades gracefully: the corrupt snapshot is
   quarantined, a serve.degraded warn is emitted, and the build
   regenerates through the (warm) pipeline instead of failing. *)
let test_corrupt_snapshot_degrades_by_default () =
  in_fresh_dir (fun d ->
      let specs = [ (Oracle.Exp2, Polyeval.Horner, tiny_cfg) ] in
      build_then_corrupt specs;
      let sink, drain = Diag.memory_sink ~min_level:Diag.Warn () in
      (match Diag.with_sinks [ sink ] (fun () -> Serve.build specs) with
      | Ok snap ->
          Alcotest.(check int) "degraded build serves" 1
            (List.length (Serve.entries snap))
      | Error e ->
          Alcotest.failf "default build must degrade, got %s"
            (Diag.Error.to_string e));
      let evs = drain () in
      (match
         List.find_opt (fun ev -> ev.Diag.ev_name = "serve.degraded") evs
       with
      | Some ev ->
          Alcotest.(check bool) "degradation names the snapshot key" true
            (List.assoc_opt "key" ev.Diag.ev_fields
            = Some (Diag.String (Serve.snapshot_key specs)))
      | None -> Alcotest.fail "no serve.degraded warn emitted");
      (* the bad file was still quarantined, and the regenerated
         snapshot was re-persisted for the next load *)
      Alcotest.(check bool) "quarantined" true
        (Sys.readdir d |> Array.to_list
        |> List.exists (contains ~sub:".corrupt-"));
      Alcotest.(check bool) "re-persisted" true
        (Sys.file_exists (Cache.path_of_key (Serve.snapshot_key specs))))

(* ---------- event layer: levels, nesting, zero-cost gating ---------- *)

let test_event_levels_and_gating () =
  let sink, drain = Diag.memory_sink ~min_level:Diag.Info () in
  Diag.with_sinks [ sink ] (fun () ->
      Alcotest.(check bool) "info enabled" true (Diag.enabled Diag.Info);
      Alcotest.(check bool) "debug disabled" false (Diag.enabled Diag.Debug);
      let forced = ref 0 in
      Diag.event "seen" (fun () ->
          incr forced;
          [ ("k", Diag.Int 1) ]);
      Diag.event ~level:Diag.Debug "unseen" (fun () ->
          incr forced;
          []);
      Alcotest.(check int) "suppressed fields never forced" 1 !forced;
      match drain () with
      | [ ev ] ->
          Alcotest.(check string) "name" "seen" ev.Diag.ev_name;
          Alcotest.(check bool) "fields carried" true
            (ev.Diag.ev_fields = [ ("k", Diag.Int 1) ])
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
  (* outside with_sinks the default warn-level stderr sink is back *)
  Alcotest.(check bool) "info disabled after restore" false
    (Diag.enabled Diag.Info)

let test_span_nesting () =
  let sink, drain = Diag.memory_sink ~min_level:Diag.Debug () in
  Diag.with_sinks [ sink ] (fun () ->
      let v =
        Diag.span "outer"
          (fun () -> [ ("who", Diag.String "outer") ])
          (fun () ->
            Diag.event "inside" (fun () -> []);
            Diag.span "inner"
              (fun () -> [])
              ~result:(fun n -> [ ("n", Diag.Int n) ])
              (fun () -> 41)
            + 1)
      in
      Alcotest.(check int) "span returns the body's value" 42 v;
      match drain () with
      | [ ob; inside; ib; ie; oe ] ->
          Alcotest.(check string) "outer begin" "outer.begin" ob.Diag.ev_name;
          Alcotest.(check string) "inside event" "inside" inside.Diag.ev_name;
          Alcotest.(check string) "inner begin" "inner.begin" ib.Diag.ev_name;
          Alcotest.(check string) "inner end" "inner.end" ie.Diag.ev_name;
          Alcotest.(check string) "outer end" "outer.end" oe.Diag.ev_name;
          let outer_id = ob.Diag.ev_span and inner_id = ib.Diag.ev_span in
          Alcotest.(check bool) "ids assigned" true
            (outer_id <> None && inner_id <> None && outer_id <> inner_id);
          Alcotest.(check bool) "outer is a root span" true
            (ob.Diag.ev_parent = None);
          Alcotest.(check bool) "plain event nests under outer" true
            (inside.Diag.ev_parent = outer_id && inside.Diag.ev_span = None);
          Alcotest.(check bool) "inner nests under outer" true
            (ib.Diag.ev_parent = outer_id);
          Alcotest.(check bool) "end records pair with begins" true
            (ie.Diag.ev_span = inner_id && oe.Diag.ev_span = outer_id);
          let has_field name ev =
            List.mem_assoc name ev.Diag.ev_fields
          in
          Alcotest.(check bool) "end carries timing and status" true
            (has_field "seconds" oe && has_field "ok" oe);
          Alcotest.(check bool) "result fields merged into the end" true
            (List.assoc_opt "n" ie.Diag.ev_fields = Some (Diag.Int 41))
      | evs -> Alcotest.failf "expected 5 events, got %d" (List.length evs))

let test_span_exception () =
  let sink, drain = Diag.memory_sink ~min_level:Diag.Debug () in
  Diag.with_sinks [ sink ] (fun () ->
      (try
         Diag.span "boom"
           (fun () -> [])
           (fun () -> failwith "kaput")
       with Failure _ -> ());
      match drain () with
      | [ _b; e ] ->
          Alcotest.(check bool) "ok=false on the end record" true
            (List.assoc_opt "ok" e.Diag.ev_fields = Some (Diag.Bool false));
          Alcotest.(check bool) "error field present" true
            (List.mem_assoc "error" e.Diag.ev_fields)
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

(* ---------- the acceptance criterion, in-process: a warm pipeline run
   emits stage spans with hit status only ---------- *)

let stage_ends evs =
  List.filter_map
    (fun ev ->
      if ev.Diag.ev_name = "stage.end" then
        Some (List.assoc_opt "status" ev.Diag.ev_fields)
      else None)
    evs

let test_warm_run_emits_only_hits () =
  in_fresh_dir (fun _d ->
      let gen () =
        Rlibm.Constraints.clear_memory_cache ();
        match
          Pipeline.generate ~cfg:tiny_cfg ~scheme:Polyeval.Horner Oracle.Exp2
        with
        | Ok g -> g
        | Error e ->
            Alcotest.failf "generation failed: %s" (Diag.Error.to_string e)
      in
      let sink, drain = Diag.memory_sink ~min_level:Diag.Debug () in
      let cold_fp, cold_evs =
        Diag.with_sinks [ sink ] (fun () ->
            let g = gen () in
            ( Array.map (fun (p : Polyeval.compiled) -> p.Polyeval.data)
                g.Rlibm.Generate.pieces,
              drain () ))
      in
      Alcotest.(check bool) "cold run rebuilds stages" true
        (List.exists
           (fun st -> st = Some (Diag.String "rebuilt"))
           (stage_ends cold_evs));
      let sink, drain = Diag.memory_sink ~min_level:Diag.Debug () in
      let warm_fp, warm_evs =
        Diag.with_sinks [ sink ] (fun () ->
            let g = gen () in
            ( Array.map (fun (p : Polyeval.compiled) -> p.Polyeval.data)
                g.Rlibm.Generate.pieces,
              drain () ))
      in
      let warm_ends = stage_ends warm_evs in
      Alcotest.(check bool) "warm run executed stages" true (warm_ends <> []);
      List.iter
        (fun st ->
          Alcotest.(check bool) "warm stage status is hit" true
            (st = Some (Diag.String "hit")))
        warm_ends;
      (* and observing the run did not move the artifacts *)
      Alcotest.(check bool) "observed warm output bit-identical" true
        (cold_fp = warm_fp))

(* ---------- JSONL trace sink ---------- *)

let test_trace_sink () =
  let path = fresh_tmp_name "rlibm-diag-trace" ^ ".jsonl" in
  let sink =
    match Diag.trace_sink ~jobs:3 path with
    | Ok s -> s
    | Error e ->
        Alcotest.failf "trace_sink failed: %s" (Diag.Error.to_string e)
  in
  Diag.with_sinks [ sink ] (fun () ->
      Diag.span "outer"
        (fun () -> [ ("f", Diag.String "exp2") ])
        (fun () ->
          Diag.event ~level:Diag.Debug "tick" (fun () ->
              [
                ("n", Diag.Int 7);
                ("x", Diag.Float 0.5);
                ("ok", Diag.Bool true);
                ("quoted", Diag.String "a\"b\\c\nd");
              ])));
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  (match lines with
  | header :: events ->
      Alcotest.(check bool) "header is the trace envelope" true
        (contains ~sub:"\"kind\":\"rlibm-trace\"" header
        && contains
             ~sub:
               (Printf.sprintf "\"schema_version\":%d"
                  Diag.trace_schema_version)
             header
        && contains ~sub:"\"jobs\":3" header);
      Alcotest.(check int) "begin + event + end" 3 (List.length events);
      List.iter
        (fun l ->
          Alcotest.(check bool) "event lines carry ts/level/ev" true
            (contains ~sub:"\"ts\":" l
            && contains ~sub:"\"level\":" l
            && contains ~sub:"\"ev\":" l))
        events
  | [] -> Alcotest.fail "empty trace file");
  (* the escaped string survived as valid JSON source *)
  Alcotest.(check bool) "string fields escaped" true
    (contains ~sub:{|"quoted":"a\"b\\c\nd"|} (read_file path));
  (* an unopenable path is a typed error, not an exception *)
  match Diag.trace_sink (Filename.concat path "sub.jsonl") with
  | Error (Diag.Error.Store_io _) -> Sys.remove path
  | Error e ->
      Alcotest.failf "expected Store_io, got %s" (Diag.Error.to_string e)
  | Ok _ -> Alcotest.fail "trace into a non-directory succeeded"

let suite =
  [
    ("level round-trip and bad level", `Quick, test_levels);
    ("exit-code taxonomy", `Quick, test_exit_codes);
    ("unwritable store is a typed Store_io", `Quick, test_store_io_error);
    ("event levels and zero-cost gating", `Quick, test_event_levels_and_gating);
    ("span nesting and ids", `Quick, test_span_nesting);
    ("span failure is recorded and re-raised", `Quick, test_span_exception);
    ("JSONL trace sink", `Quick, test_trace_sink);
    ("corrupt snapshot surfaces typed from strict Serve.build", `Slow,
     test_corrupt_snapshot_is_typed);
    ("corrupt snapshot degrades gracefully by default", `Slow,
     test_corrupt_snapshot_degrades_by_default);
    ("warm pipeline run emits only hit spans", `Slow,
     test_warm_run_emits_only_hits);
  ]
