(* Test entry point: one alcotest section per library, substrates first. *)

let () =
  Alcotest.run "rlibm-fastpoly"
    [
      ("bigint", Test_bigint.suite);
      ("rat", Test_rat.suite);
      ("softfp", Test_softfp.suite);
      ("fparith", Test_fparith.suite);
      ("dyadic", Test_dyadic.suite);
      ("diag", Test_diag.suite);
      ("funcspec", Test_funcspec.suite);
      ("oracle", Test_oracle.suite);
      ("lp", Test_lp.suite);
      ("polyeval", Test_polyeval.suite);
      ("rlibm", Test_rlibm.suite);
      ("genlibm", Test_genlibm.suite);
      ("codegen", Test_codegen.suite);
      ("cache", Test_cache.suite);
      ("fault", Test_fault.suite);
      ("pipeline", Test_pipeline.suite);
      ("serve", Test_serve.suite);
      ("kernels", Test_kernels.suite);
      (* The determinism tests disable store persistence with the scoped
         Cache.with_persistence override, so suite order no longer
         matters for cache state. *)
      ("parallel", Test_parallel.suite);
    ]
