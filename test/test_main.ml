(* Test entry point: one alcotest section per library, substrates first. *)

let () =
  Alcotest.run "rlibm-fastpoly"
    [
      ("bigint", Test_bigint.suite);
      ("rat", Test_rat.suite);
      ("softfp", Test_softfp.suite);
      ("fparith", Test_fparith.suite);
      ("dyadic", Test_dyadic.suite);
      ("oracle", Test_oracle.suite);
      ("lp", Test_lp.suite);
      ("polyeval", Test_polyeval.suite);
      ("rlibm", Test_rlibm.suite);
      ("genlibm", Test_genlibm.suite);
      (* Needs the disk cache enabled, so it must precede the parallel
         suite (see below). *)
      ("cache", Test_cache.suite);
      ("pipeline", Test_pipeline.suite);
      (* Last: the determinism tests disable the oracle disk cache for
         the rest of the process. *)
      ("parallel", Test_parallel.suite);
    ]
