(* Codegen coverage: golden-snapshot tests for the emitted C and OCaml
   (an exponential and a piecewise logarithm), hex-literal round-trips,
   and a compile smoke of the emitted C when a C compiler is on PATH.

   The goldens live in test/golden/*.golden and are committed:
   generation is deterministic (seeded RNG, fixed knobs), so the emitted
   source is a pure function of this case list.  After an intentional
   codegen change, regenerate with

     dune exec test/gen_golden.exe

   review the diff and commit it.  Keep [cases] in sync with
   gen_golden.ml. *)

let tiny_cfg =
  {
    Rlibm.Config.default_mini with
    Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:7;
    table_bits = 3;
    max_specials = 40;
    max_rounds = 20;
  }

(* Two pieces force the piecewise emission branch of both backends. *)
let piecewise_log_cfg = { tiny_cfg with Rlibm.Config.pieces = 2 }

let cases =
  [
    ("exp_estrin_fma", Oracle.Exp, Polyeval.EstrinFma, tiny_cfg);
    ("log2_piecewise", Oracle.Log2, Polyeval.Horner, piecewise_log_cfg);
  ]

let gen_cache : (string, Rlibm.Generate.generated) Hashtbl.t = Hashtbl.create 4

let generate_case (name, func, scheme, cfg) =
  match Hashtbl.find_opt gen_cache name with
  | Some g -> g
  | None -> (
      match
        Cache.with_persistence false (fun () ->
            Genlibm.generate ~cfg ~scheme func)
      with
      | Error msg ->
          Alcotest.failf "%s: generation failed: %s" name
            (Diag.Error.to_string msg)
      | Ok g ->
          Hashtbl.replace gen_cache name g;
          g)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* dune runtest runs in _build/default/test (goldens staged via the
   stanza's deps); dune exec from the workspace root sees test/golden. *)
let golden_path file =
  let rel = Filename.concat "golden" file in
  if Sys.file_exists rel then rel else Filename.concat "test" rel

let check_golden name src =
  let path = golden_path (name ^ ".golden") in
  if not (Sys.file_exists path) then
    Alcotest.failf
      "missing golden snapshot %s — generate it with: dune exec \
       test/gen_golden.exe"
      path;
  if src <> read_file path then
    Alcotest.failf
      "%s drifted from its golden snapshot; if the change is intentional, \
       regenerate with: dune exec test/gen_golden.exe — and review the diff"
      name

let emitted_name func = "rlibm_" ^ Oracle.name func

let test_golden (((name, func, _, _) as case) : string * _ * _ * _) lang () =
  let g = generate_case case in
  match lang with
  | `C -> check_golden (name ^ ".c") (Codegen.to_c g ~name:(emitted_name func))
  | `Ml ->
      check_golden (name ^ ".ml") (Codegen.to_ocaml g ~name:(emitted_name func))

(* Every constant of the generated implementation — polynomial
   coefficients and reduction-table entries — must survive the
   hex-literal round trip: print with %h, parse back, compare bits.
   This is the property that makes the emitted source bit-faithful. *)
let test_hex_roundtrip () =
  let check_const label v =
    let printed = Printf.sprintf "%h" v in
    let back = float_of_string printed in
    Alcotest.(check int64) label (Int64.bits_of_float v)
      (Int64.bits_of_float back)
  in
  List.iter
    (fun (((name, _, _, _) as case) : string * _ * _ * _) ->
      let g = generate_case case in
      Array.iteri
        (fun pi (piece : Polyeval.compiled) ->
          Array.iteri
            (fun ci c ->
              check_const (Printf.sprintf "%s piece %d c%d" name pi ci) c)
            piece.Polyeval.data)
        g.Rlibm.Generate.pieces;
      match g.Rlibm.Generate.family.Rlibm.Reduction.params with
      | Rlibm.Reduction.Log_params { table; _ } ->
          Array.iteri
            (fun i t -> check_const (Printf.sprintf "%s tbl[%d]" name i) t)
            table
      | Rlibm.Reduction.Exp_params { log2_base } ->
          check_const (name ^ " log2_base") log2_base)
    cases

(* Emitted constants appear verbatim in both backends (same %h text). *)
let test_constants_emitted () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (((name, func, _, _) as case) : string * _ * _ * _) ->
      let g = generate_case case in
      let c_src = Codegen.to_c g ~name:(emitted_name func) in
      let ml_src = Codegen.to_ocaml g ~name:(emitted_name func) in
      Array.iter
        (fun (piece : Polyeval.compiled) ->
          Array.iter
            (fun coef ->
              let lit = Printf.sprintf "%h" coef in
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s in C" name lit)
                true (contains c_src lit);
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s in OCaml" name lit)
                true (contains ml_src lit))
            piece.Polyeval.data)
        g.Rlibm.Generate.pieces)
    cases

(* Compile smoke: the emitted C must be an accepted C99 translation
   unit.  Silently skipped when no C compiler is on PATH (the container
   guarantees the OCaml toolchain only). *)
let test_c_compiles () =
  if Sys.command "command -v cc >/dev/null 2>&1" <> 0 then ()
  else
    List.iter
      (fun (((name, func, _, _) as case) : string * _ * _ * _) ->
        let g = generate_case case in
        let src = Codegen.to_c g ~name:(emitted_name func) in
        let c_file = Filename.temp_file "rlibm_codegen" ".c" in
        let o_file = Filename.temp_file "rlibm_codegen" ".o" in
        Fun.protect
          ~finally:(fun () ->
            (try Sys.remove c_file with Sys_error _ -> ());
            try Sys.remove o_file with Sys_error _ -> ())
          (fun () ->
            Out_channel.with_open_bin c_file (fun oc ->
                Out_channel.output_string oc src);
            let rc =
              Sys.command
                (Printf.sprintf "cc -std=c99 -Wall -c %s -o %s"
                   (Filename.quote c_file) (Filename.quote o_file))
            in
            Alcotest.(check int) (name ^ " compiles") 0 rc))
      cases

let suite =
  let golden_tests =
    List.concat_map
      (fun ((name, _, _, _) as case) ->
        [
          (name ^ ".c matches golden", `Slow, test_golden case `C);
          (name ^ ".ml matches golden", `Slow, test_golden case `Ml);
        ])
      cases
  in
  golden_tests
  @ [
      ("hex literals round-trip", `Slow, test_hex_roundtrip);
      ("constants emitted verbatim", `Slow, test_constants_emitted);
      ("emitted C compiles (cc smoke)", `Slow, test_c_compiles);
    ]
