(* Bit-identity of the zero-allocation batch layer against the scalar
   evaluation path: Genlibm.eval_bits_into vs eval_bits over every bit
   pattern of a mini format (NaN, infinities, zeros, subnormals,
   specials and shortcut inputs included) for every scheme on both
   families, Serve.eval_batch_into at -j 1 and -j 4, the allocation-free
   reduction scratch against the allocating wrapper, and seeded sampled
   binary32 batches (multi-piece counting-sort path). *)

let tiny_cfg =
  {
    Rlibm.Config.default_mini with
    Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:7;
    table_bits = 3;
    max_specials = 40;
    max_rounds = 20;
  }

let tiny = tiny_cfg.Rlibm.Config.tin

(* Generation is expensive and several tests share a function; memoize
   for the whole suite run (same idiom as test_genlibm). *)
let gen_cache :
    ( Oracle.func * Polyeval.scheme,
      (Rlibm.Generate.generated, Diag.Error.t) result )
    Hashtbl.t =
  Hashtbl.create 16

let generate_ok func scheme =
  let r =
    match Hashtbl.find_opt gen_cache (func, scheme) with
    | Some r -> r
    | None ->
        let r = Genlibm.generate ~cfg:tiny_cfg ~scheme func in
        Hashtbl.replace gen_cache (func, scheme) r;
        r
  in
  match r with
  | Ok g -> g
  | Error msg ->
      Alcotest.failf "%s/%s generation failed: %s" (Oracle.name func)
        (Polyeval.scheme_name scheme)
        (Diag.Error.to_string msg)

(* Every bit pattern of the format — the kernel must agree on the
   non-finite and special rows too, not just the polynomial path. *)
let all_patterns fmt =
  Array.init (1 lsl Softfp.width fmt) Int64.of_int

let kernel_bits g patterns =
  let n = Array.length patterns in
  let src = Genlibm.create_src n and dst = Genlibm.create_dst n in
  Array.iteri (fun i x -> Bigarray.Array1.set src i x) patterns;
  Genlibm.eval_bits_into g ~src ~dst ~lo:0 ~hi:n;
  Array.init n (fun i -> Int64.bits_of_float (Bigarray.Array1.get dst i))

let check_bit_identity name g patterns =
  let kb = kernel_bits g patterns in
  Array.iteri
    (fun i x ->
      let s = Int64.bits_of_float (Genlibm.eval_bits g x) in
      if not (Int64.equal s kb.(i)) then
        Alcotest.failf "%s: input %Lx: scalar %Lx, kernel %Lx" name x s kb.(i))
    patterns

(* ---------- exhaustive kernel = scalar, per (func, scheme) ---------- *)

(* exp2/log2 cover every scheme; the remaining four functions ride on
   one scheme each (the full grid at this format is generation-bound,
   and the kernel branches under test depend on family + scheme, both
   of which this set covers completely). *)
let combos =
  List.map (fun s -> (Oracle.Exp2, s)) Polyeval.all_schemes
  @ List.map (fun s -> (Oracle.Log2, s)) Polyeval.all_schemes
  @ [
      (Oracle.Exp, Polyeval.EstrinFma);
      (Oracle.Exp10, Polyeval.EstrinFma);
      (Oracle.Log, Polyeval.EstrinFma);
      (Oracle.Log10, Polyeval.EstrinFma);
    ]

let test_exhaustive func scheme () =
  let g = generate_ok func scheme in
  let name =
    Printf.sprintf "%s/%s" (Oracle.name func) (Polyeval.scheme_name scheme)
  in
  let patterns = all_patterns tiny in
  check_bit_identity name g patterns;
  (* eval_float is the same shortcut/reduce/poly path, minus the special
     table: it must agree with eval_bits on every non-special finite
     input. *)
  Array.iter
    (fun x ->
      if
        Softfp.is_finite tiny x
        && not (Hashtbl.mem g.Rlibm.Generate.specials x)
      then begin
        let b = Int64.bits_of_float (Genlibm.eval_bits g x) in
        let f =
          Int64.bits_of_float (Genlibm.eval_float g (Softfp.to_float tiny x))
        in
        if not (Int64.equal b f) then
          Alcotest.failf "%s: input %Lx: eval_bits %Lx, eval_float %Lx" name x
            b f
      end)
    patterns

(* ---------- chunk windows ---------- *)

let test_window_untouched () =
  let g = generate_ok Oracle.Log2 Polyeval.EstrinFma in
  let patterns = all_patterns tiny in
  let n = Array.length patterns in
  let src = Genlibm.create_src n and dst = Genlibm.create_dst n in
  Array.iteri (fun i x -> Bigarray.Array1.set src i x) patterns;
  Bigarray.Array1.fill dst 42.0;
  let lo = n / 3 and hi = 2 * n / 3 in
  Genlibm.eval_bits_into g ~src ~dst ~lo ~hi;
  for i = 0 to n - 1 do
    if i < lo || i >= hi then begin
      if Bigarray.Array1.get dst i <> 42.0 then
        Alcotest.failf "slot %d outside [%d, %d) was clobbered" i lo hi
    end
    else begin
      let s = Int64.bits_of_float (Genlibm.eval_bits g patterns.(i)) in
      let k = Int64.bits_of_float (Bigarray.Array1.get dst i) in
      if not (Int64.equal s k) then
        Alcotest.failf "windowed slot %d: scalar %Lx, kernel %Lx" i s k
    end
  done

let test_bounds_rejected () =
  let g = generate_ok Oracle.Log2 Polyeval.EstrinFma in
  let src = Genlibm.create_src 8 and dst = Genlibm.create_dst 8 in
  let oob lo hi () = Genlibm.eval_bits_into g ~src ~dst ~lo ~hi in
  let exn = Invalid_argument "Genlibm.eval_bits_into: chunk outside the buffers" in
  Alcotest.check_raises "negative lo" exn (oob (-1) 4);
  Alcotest.check_raises "hi past src" exn (oob 0 9);
  Alcotest.check_raises "hi below lo" exn (oob 5 4);
  let short = Genlibm.create_dst 4 in
  Alcotest.check_raises "hi past dst" exn (fun () ->
      Genlibm.eval_bits_into g ~src ~dst:short ~lo:0 ~hi:8)

(* ---------- serve batch kernels at -j 1 and -j 4 ---------- *)

let fresh_cache_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rlibm-kernels-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let with_cache_dir f =
  let prev = Cache.dir () in
  Cache.set_dir (fresh_cache_dir ());
  Fun.protect ~finally:(fun () -> Cache.set_dir prev) f

let with_jobs j f =
  let prev = Parallel.jobs () in
  Parallel.set_jobs j;
  Fun.protect ~finally:(fun () -> Parallel.set_jobs prev) f

let test_serve_batch_into_jobs () =
  with_cache_dir (fun () ->
      let specs =
        [
          (Oracle.Exp2, Polyeval.EstrinFma, tiny_cfg);
          (Oracle.Log2, Polyeval.Horner, tiny_cfg);
        ]
      in
      let snap =
        match Serve.build specs with
        | Ok t -> t
        | Error err ->
            Alcotest.failf "snapshot build failed: %s"
              (Diag.Error.to_string err)
      in
      let inputs = all_patterns tiny in
      let n = Array.length inputs in
      List.iter
        (fun func ->
          let e =
            match Serve.find snap func with
            | Some e -> e
            | None -> Alcotest.failf "%s missing" (Oracle.name func)
          in
          let scalar =
            Array.map
              (fun x -> Int64.bits_of_float (Genlibm.eval_bits e.Serve.e_impl x))
              inputs
          in
          List.iter
            (fun j ->
              with_jobs j (fun () ->
                  let src = Genlibm.create_src n in
                  let dst = Genlibm.create_dst n in
                  Array.iteri (fun i x -> Bigarray.Array1.set src i x) inputs;
                  Serve.eval_batch_into snap func ~src ~dst;
                  Array.iteri
                    (fun i s ->
                      let k = Int64.bits_of_float (Bigarray.Array1.get dst i) in
                      if not (Int64.equal s k) then
                        Alcotest.failf "%s -j %d: input %Lx: scalar %Lx, batch %Lx"
                          (Oracle.name func) j inputs.(i) s k)
                    scalar))
            [ 1; 4 ])
        [ Oracle.Exp2; Oracle.Log2 ])

(* ---------- allocation-free reduction = allocating wrapper ---------- *)

let test_reduce_into_matches_reduce () =
  let out_fmt = Rlibm.Config.tout tiny_cfg in
  List.iter
    (fun func ->
      let fam = Rlibm.Reduction.make func ~out_fmt ~pieces:2 ~table_bits:3 in
      let s = Rlibm.Reduction.scratch () in
      Array.iter
        (fun b ->
          if Softfp.is_finite tiny b then begin
            let x = Softfp.to_float tiny b in
            if fam.Rlibm.Reduction.shortcut x = None then begin
              let red = fam.Rlibm.Reduction.reduce x in
              s.Rlibm.Reduction.sf.Rlibm.Reduction.sx <- x;
              fam.Rlibm.Reduction.reduce_into s;
              if
                not
                  (Int64.equal
                     (Int64.bits_of_float red.Rlibm.Reduction.r)
                     (Int64.bits_of_float s.Rlibm.Reduction.sf.Rlibm.Reduction.sr))
              then Alcotest.failf "%s: r mismatch at %h" (Oracle.name func) x;
              Alcotest.(check int)
                (Printf.sprintf "%s piece at %h" (Oracle.name func) x)
                red.Rlibm.Reduction.piece s.Rlibm.Reduction.spiece;
              (* the inline compensation of the kernel form must be the
                 same double operation as the oc closure *)
              let v = 1.5 in
              let oc_scalar = red.Rlibm.Reduction.oc v in
              let oc_kernel =
                match fam.Rlibm.Reduction.kernel with
                | Rlibm.Reduction.Exp_kernel _ ->
                    Float.ldexp v s.Rlibm.Reduction.sn
                | Rlibm.Reduction.Log_kernel ->
                    s.Rlibm.Reduction.sf.Rlibm.Reduction.sc +. v
              in
              if
                not
                  (Int64.equal
                     (Int64.bits_of_float oc_scalar)
                     (Int64.bits_of_float oc_kernel))
              then Alcotest.failf "%s: oc mismatch at %h" (Oracle.name func) x
            end
          end)
        (all_patterns tiny))
    [ Oracle.Exp2; Oracle.Exp10; Oracle.Log2; Oracle.Log10 ]

(* ---------- sampled binary32 (multi-piece, wide exponents) ---------- *)

let test_binary32_sampled func =
  let cfg = Rlibm.Config.float32_for func in
  let r, sampled =
    Genlibm.generate_sampled ~cfg ~scheme:Polyeval.EstrinFma ~count:250
      ~seed:11 func
  in
  match r with
  | Error msg ->
      Alcotest.failf "%s binary32 sampled generation failed: %s"
        (Oracle.name func)
        (Diag.Error.to_string msg)
  | Ok g ->
      let name = Printf.sprintf "%s/binary32" (Oracle.name func) in
      check_bit_identity (name ^ " sampled") g sampled;
      (* a fresh seeded batch over the whole 32-bit pattern space:
         non-finite rows, patterns the generator never saw, every
         piece of the piecewise polynomial *)
      let st = Random.State.make [| 2026 |] in
      let batch =
        Array.init 4096 (fun _ ->
            Random.State.int64 st (Int64.shift_left 1L 32))
      in
      check_bit_identity (name ^ " random batch") g batch

let suite =
  List.map
    (fun (func, scheme) ->
      ( Printf.sprintf "%s/%s kernel = scalar (exhaustive)" (Oracle.name func)
          (Polyeval.scheme_name scheme),
        `Slow,
        test_exhaustive func scheme ))
    combos
  @ [
      ("chunk window leaves other slots untouched", `Slow, test_window_untouched);
      ("chunk bounds rejected", `Slow, test_bounds_rejected);
      ("serve batch kernel at -j 1 and -j 4", `Slow, test_serve_batch_into_jobs);
      ( "reduce_into = reduce (all families)",
        `Quick,
        test_reduce_into_matches_reduce );
      ( "exp2/binary32 sampled batches",
        `Slow,
        fun () -> test_binary32_sampled Oracle.Exp2 );
      ( "log2/binary32 sampled batches",
        `Slow,
        fun () -> test_binary32_sampled Oracle.Log2 );
    ]
