(* Integration tests: generate correctly rounded functions end-to-end on a
   small universe and verify them exhaustively.  The heavyweight
   all-function × all-scheme sweep lives in the benchmark harness; here we
   run one exponential and one logarithm with two schemes each, plus
   targeted behaviour tests. *)

(* An even smaller universe than Config.mini keeps the integration tests
   fast: 11-bit inputs, 13-bit round-to-odd target, 1984 finite inputs. *)
let tiny_cfg =
  {
    Rlibm.Config.default_mini with
    Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:7;
    table_bits = 3;
    max_specials = 40;
    max_rounds = 20;
  }

let tiny = tiny_cfg.Rlibm.Config.tin
let inputs = lazy (Genlibm.inputs_exhaustive tiny)

(* Generation is expensive; several tests share the same function, so the
   results are memoized for the whole suite run. *)
let gen_cache : (Oracle.func * Polyeval.scheme, (Rlibm.Generate.generated, Diag.Error.t) result) Hashtbl.t =
  Hashtbl.create 16

let generate_ok func scheme =
  let r =
    match Hashtbl.find_opt gen_cache (func, scheme) with
    | Some r -> r
    | None ->
        let r = Genlibm.generate ~cfg:tiny_cfg ~scheme func in
        Hashtbl.replace gen_cache (func, scheme) r;
        r
  in
  match r with
  | Ok g -> g
  | Error msg -> Alcotest.failf "generation failed: %s" (Diag.Error.to_string msg)

let check_verified func scheme =
  let g = generate_ok func scheme in
  let rep = Genlibm.verify g ~inputs:(Lazy.force inputs) in
  Alcotest.(check int)
    (Printf.sprintf "%s/%s wrong34" (Oracle.name func)
       (Polyeval.scheme_name scheme))
    0 rep.Genlibm.wrong34;
  Alcotest.(check int)
    (Printf.sprintf "%s/%s wrong narrow" (Oracle.name func)
       (Polyeval.scheme_name scheme))
    0 rep.Genlibm.wrong_narrow;
  Alcotest.(check bool) "checked everything" true
    (rep.Genlibm.checked = Softfp.count_finite tiny);
  g

let test_exp2_horner () = ignore (check_verified Oracle.Exp2 Polyeval.Horner)
let test_exp2_estrin_fma () = ignore (check_verified Oracle.Exp2 Polyeval.EstrinFma)
let test_log2_horner () = ignore (check_verified Oracle.Log2 Polyeval.Horner)
let test_log2_estrin () = ignore (check_verified Oracle.Log2 Polyeval.Estrin)
let test_exp_estrin_fma () = ignore (check_verified Oracle.Exp Polyeval.EstrinFma)
let test_log10_estrin_fma () = ignore (check_verified Oracle.Log10 Polyeval.EstrinFma)

let test_nonfinite_inputs () =
  let g = generate_ok Oracle.Exp2 Polyeval.Horner in
  Alcotest.(check bool) "nan -> nan" true
    (Float.is_nan (Genlibm.eval_bits g (Softfp.nan_bits tiny)));
  Alcotest.(check (float 0.0)) "+inf -> inf" Float.infinity
    (Genlibm.eval_bits g (Softfp.inf_bits tiny ~neg:false));
  Alcotest.(check (float 0.0)) "-inf -> 0" 0.0
    (Genlibm.eval_bits g (Softfp.inf_bits tiny ~neg:true));
  let gl = generate_ok Oracle.Log2 Polyeval.Horner in
  Alcotest.(check bool) "log -inf -> nan" true
    (Float.is_nan (Genlibm.eval_bits gl (Softfp.inf_bits tiny ~neg:true)));
  Alcotest.(check (float 0.0)) "log +inf -> inf" Float.infinity
    (Genlibm.eval_bits gl (Softfp.inf_bits tiny ~neg:false));
  Alcotest.(check (float 0.0)) "log 0 -> -inf" Float.neg_infinity
    (Genlibm.eval_bits gl (Softfp.zero_bits tiny))

let test_exact_identities () =
  (* 2^0 = 1 and log2(1) = 0 must come out exactly right through the whole
     generated path (either via the polynomial or a special case). *)
  let g = generate_ok Oracle.Exp2 Polyeval.Horner in
  let zero = Softfp.zero_bits tiny in
  Alcotest.(check (float 0.0)) "2^0 = 1" 1.0 (Genlibm.eval_bits g zero);
  let gl = generate_ok Oracle.Log2 Polyeval.Horner in
  let one = Softfp.of_rat tiny Softfp.RNE Rat.one in
  Alcotest.(check (float 0.0)) "log2 1 = 0" 0.0 (Genlibm.eval_bits gl one)

let test_round_result_nonfinite () =
  let f = tiny in
  Alcotest.(check bool) "nan" true
    (Softfp.is_nan f (Genlibm.round_result f Softfp.RNE Float.nan));
  Alcotest.(check int64) "inf" (Softfp.inf_bits f ~neg:false)
    (Genlibm.round_result f Softfp.RNE Float.infinity);
  Alcotest.(check int64) "-inf" (Softfp.inf_bits f ~neg:true)
    (Genlibm.round_result f Softfp.RNE Float.neg_infinity);
  Alcotest.(check int64) "-0" (Softfp.neg_zero_bits f)
    (Genlibm.round_result f Softfp.RNE (-0.0))

let test_table1_row () =
  let g = generate_ok Oracle.Exp2 Polyeval.Horner in
  let row = Genlibm.table1_row g in
  Alcotest.(check bool) "pieces" true (row.Genlibm.n_pieces >= 1);
  Alcotest.(check bool) "degrees bounded" true
    (List.for_all
       (fun d -> d <= tiny_cfg.Rlibm.Config.max_degree)
       row.Genlibm.degrees);
  Alcotest.(check bool) "specials bounded" true
    (row.Genlibm.n_specials <= Hashtbl.length g.Rlibm.Generate.specials + 1000)

let test_post_process_pitfall () =
  (* Section 6.3: adapting the Horner polynomial as a post-process breaks
     correctness for some inputs, while the integrated loop does not.  We
     check the mechanism: take the Horner-generated polynomial, adapt its
     coefficients outside the loop, and count inputs whose result leaves
     the rounding interval.  (On tiny universes the count can occasionally
     be zero; we therefore only assert that the integrated version is
     never worse, and record that the experiment runs end to end.) *)
  let g = generate_ok Oracle.Exp10 Polyeval.Horner in
  let integrated =
    try Rlibm.Generate.n_specials (generate_ok Oracle.Exp10 Polyeval.Knuth)
    with _ -> max_int
  in
  let post_wrong = ref 0 in
  Array.iter
    (fun piece ->
      match Polyeval.compile Polyeval.Knuth piece.Polyeval.data with
      | None -> ()
      | Some adapted ->
          (* count verification failures of the post-adapted polynomial *)
          let tout = Rlibm.Config.tout tiny_cfg in
          Array.iter
            (fun x ->
              if
                Softfp.is_finite tiny x
                && not (Hashtbl.mem g.Rlibm.Generate.specials x)
              then begin
                let xf = Softfp.to_float tiny x in
                match g.Rlibm.Generate.family.Rlibm.Reduction.shortcut xf with
                | Some _ -> ()
                | None ->
                    let red = g.Rlibm.Generate.family.Rlibm.Reduction.reduce xf in
                    if red.Rlibm.Reduction.piece = 0 then begin
                      let v = red.Rlibm.Reduction.oc (adapted.Polyeval.eval red.Rlibm.Reduction.r) in
                      let y_impl = Genlibm.round_result tout Softfp.RTO v in
                      match Hashtbl.find_opt g.Rlibm.Generate.oracle x with
                      | Some y_true when not (Int64.equal y_impl y_true) ->
                          incr post_wrong
                      | _ -> ()
                    end
              end)
            (Lazy.force inputs))
    [| g.Rlibm.Generate.pieces.(0) |];
  (* integrated never needs more specials than post-processing produces
     wrong results + the original special budget *)
  Alcotest.(check bool)
    (Printf.sprintf "integrated (%d specials) <= post-process wrong (%d) + budget"
       integrated !post_wrong)
    true
    (integrated <= !post_wrong + tiny_cfg.Rlibm.Config.max_specials)

let test_sampled_inputs () =
  let f = Softfp.binary32 in
  let a = Genlibm.inputs_sampled f ~count:500 ~seed:7 in
  let b = Genlibm.inputs_sampled f ~count:500 ~seed:7 in
  Alcotest.(check bool) "deterministic" true (a = b);
  Alcotest.(check bool) "finite only" true
    (Array.for_all (Softfp.is_finite f) a);
  (* boundary values always present *)
  let mem v = Array.exists (Int64.equal v) a in
  Alcotest.(check bool) "zero included" true (mem (Softfp.zero_bits f));
  Alcotest.(check bool) "max finite included" true
    (mem (Softfp.max_finite_bits f ~neg:false));
  Alcotest.(check bool) "min subnormal included" true
    (mem (Softfp.min_subnormal_bits f ~neg:false))


let test_codegen_structure () =
  let g = generate_ok Oracle.Exp2 Polyeval.EstrinFma in
  let c_src = Codegen.to_c g ~name:"rlibm_exp2" in
  let ml_src = Codegen.to_ocaml g ~name:"rlibm_exp2" in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  (* the C artifact is a complete translation unit *)
  Alcotest.(check bool) "c signature" true
    (contains c_src "double rlibm_exp2(double x)");
  Alcotest.(check bool) "c includes math.h" true (contains c_src "#include <math.h>");
  Alcotest.(check bool) "c uses ldexp" true (contains c_src "ldexp(");
  (* estrin-fma must actually emit fma calls *)
  Alcotest.(check bool) "c uses fma" true (contains c_src "fma(");
  (* every coefficient appears verbatim as a hex literal *)
  Array.iter
    (fun (piece : Polyeval.compiled) ->
      Array.iter
        (fun coef ->
          Alcotest.(check bool)
            (Printf.sprintf "coefficient %h emitted" coef)
            true
            (contains c_src (Printf.sprintf "%h" coef)))
        piece.Polyeval.data)
    g.Rlibm.Generate.pieces;
  (* OCaml side *)
  Alcotest.(check bool) "ml signature" true
    (contains ml_src "let rlibm_exp2 (x : float) : float =");
  Alcotest.(check bool) "ml uses Float.fma" true (contains ml_src "Float.fma");
  (* log family gets a table *)
  let gl = generate_ok Oracle.Log2 Polyeval.Horner in
  let cl = Codegen.to_c gl ~name:"rlibm_log2" in
  Alcotest.(check bool) "log table emitted" true (contains cl "rlibm_log2_tbl");
  Alcotest.(check bool) "log frexp" true (contains cl "frexp(")

let suite =
  [
    ("sampled inputs", `Quick, test_sampled_inputs);
    ("exp2/horner exhaustive", `Slow, test_exp2_horner);
    ("exp2/estrin-fma exhaustive", `Slow, test_exp2_estrin_fma);
    ("log2/horner exhaustive", `Slow, test_log2_horner);
    ("log2/estrin exhaustive", `Slow, test_log2_estrin);
    ("exp/estrin-fma exhaustive", `Slow, test_exp_estrin_fma);
    ("log10/estrin-fma exhaustive", `Slow, test_log10_estrin_fma);
    ("non-finite inputs", `Slow, test_nonfinite_inputs);
    ("exact identities", `Slow, test_exact_identities);
    ("round_result non-finite", `Quick, test_round_result_nonfinite);
    ("table1 row", `Slow, test_table1_row);
    ("post-process pitfall (§6.3)", `Slow, test_post_process_pitfall);
    ("codegen structure", `Slow, test_codegen_structure);
  ]
