(* Tests for the staged artifact pipeline: the key invalidation graph
   (each knob orphans exactly the downstream stages), stage-level
   hit/rebuild behaviour, and the resume guarantee — a run restarted
   after the shallow stages completed rebuilds only the deep stages and
   still produces bit-identical output at every job count. *)

let dir_counter = ref 0

(* Run [f] against a fresh store directory, restoring the previous one
   afterwards (other suites share the process). *)
let in_fresh_dir f =
  let saved = Cache.dir () in
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rlibm-pipeline-test-%d-%d" (Unix.getpid ())
         !dir_counter)
  in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  Cache.set_dir d;
  Fun.protect ~finally:(fun () -> Cache.set_dir saved) (fun () -> f d)

let tiny_cfg =
  {
    Rlibm.Config.default_mini with
    Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:7;
    table_bits = 3;
    max_specials = 40;
    max_rounds = 20;
  }

(* The function's observable artifacts as exact bits: coefficients,
   degrees and the special table.  (Deliberately not the shared oracle
   table: verification lazily installs shortcut-path entries into it, so
   its in-process extent depends on whether the verdict stage ran — a
   warm run that loads the verdict skips exactly those lookups.) *)
let fingerprint (g : Rlibm.Generate.generated) =
  let coeffs =
    Array.to_list g.Rlibm.Generate.pieces
    |> List.concat_map (fun (p : Polyeval.compiled) ->
           Array.to_list (Array.map Int64.bits_of_float p.Polyeval.data))
  in
  let specials =
    Hashtbl.fold
      (fun x v acc -> (x, Int64.bits_of_float v) :: acc)
      g.Rlibm.Generate.specials []
    |> List.sort compare
  in
  (coeffs, Array.to_list g.Rlibm.Generate.degrees, specials)

(* One full pipeline pass from a cold in-process state (the disk store is
   whatever the test arranged): per-stage statuses plus the output
   fingerprint and verdict. *)
let run_pass ?(scheme = Polyeval.Estrin) ?(func = Oracle.Exp2)
    ?(cfg = tiny_cfg) () =
  Rlibm.Constraints.clear_memory_cache ();
  let events, result = Pipeline.run_stages ~cfg ~scheme func in
  let statuses =
    List.map (fun e -> (e.Pipeline.ev_stage, e.Pipeline.ev_status)) events
  in
  match result with
  | Error err ->
      Alcotest.failf "generation failed: %s" (Diag.Error.to_string err)
  | Ok (g, rep) -> (statuses, fingerprint g, rep)

let warm_ok ?schemes ?through ?shards ?only_shard pairs =
  match Pipeline.warm ?schemes ?through ?shards ?only_shard pairs with
  | Ok report -> report
  | Error err -> Alcotest.failf "warm failed: %s" (Diag.Error.to_string err)

(* Unwrap a Result-typed oracle stage in tests that arrange valid shard
   parameters. *)
let oracle_ok ?shards ?only_shard ~cfg func =
  match Pipeline.oracle_stage ?shards ?only_shard ~cfg func with
  | Ok t -> t
  | Error err ->
      Alcotest.failf "oracle stage failed: %s" (Diag.Error.to_string err)

let status_t =
  Alcotest.(
    list
      (pair
         (testable
            (Fmt.of_to_string Pipeline.stage_name)
            (fun a b -> a = b))
         (testable
            (Fmt.of_to_string (function
              | Pipeline.Hit -> "hit"
              | Pipeline.Rebuilt -> "rebuilt"))
            (fun a b -> a = b))))

let all_of st = List.map (fun s -> (s, st)) Pipeline.all_stages

(* ---------- the key invalidation graph ---------- *)

let test_keys () =
  let cfg = tiny_cfg and f = Oracle.Exp2 and scheme = Polyeval.Estrin in
  let keys c =
    ( Pipeline.oracle_key ~cfg:c f,
      Pipeline.intervals_key ~cfg:c f,
      Pipeline.constraints_key ~cfg:c f,
      Pipeline.poly_key ~cfg:c ~scheme f,
      Pipeline.verdict_key ~cfg:c ~scheme f )
  in
  let o0, i0, c0, p0, v0 = keys cfg in
  (* pieces: constraints and below *)
  let o, i, c, p, v =
    keys { cfg with Rlibm.Config.pieces = cfg.Rlibm.Config.pieces + 1 }
  in
  Alcotest.(check bool) "pieces keeps oracle+intervals" true (o = o0 && i = i0);
  Alcotest.(check bool) "pieces invalidates constraints+" true
    (c <> c0 && p <> p0 && v <> v0);
  (* table_bits: constraints and below *)
  let o, i, c, p, v =
    keys { cfg with Rlibm.Config.table_bits = cfg.Rlibm.Config.table_bits + 1 }
  in
  Alcotest.(check bool) "table_bits keeps oracle+intervals" true
    (o = o0 && i = i0);
  Alcotest.(check bool) "table_bits invalidates constraints+" true
    (c <> c0 && p <> p0 && v <> v0);
  (* degree/round/special budgets: polynomial and below *)
  let o, i, c, p, v =
    keys { cfg with Rlibm.Config.max_rounds = cfg.Rlibm.Config.max_rounds + 1 }
  in
  Alcotest.(check bool) "budgets keep oracle..constraints" true
    (o = o0 && i = i0 && c = c0);
  Alcotest.(check bool) "budgets invalidate poly+" true (p <> p0 && v <> v0);
  (* scheme: polynomial and below *)
  Alcotest.(check bool) "scheme invalidates poly+" true
    (Pipeline.poly_key ~cfg ~scheme:Polyeval.Horner f <> p0
    && Pipeline.verdict_key ~cfg ~scheme:Polyeval.Horner f <> v0);
  (* narrow: verdict only *)
  Alcotest.(check bool) "narrow invalidates only the verdict" true
    (Pipeline.verdict_key ~narrow:false ~cfg ~scheme f <> v0);
  (* input format: everything *)
  let o, i, c, p, v =
    keys { cfg with Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:8 }
  in
  Alcotest.(check bool) "format invalidates everything" true
    (o <> o0 && i <> i0 && c <> c0 && p <> p0 && v <> v0);
  (* every stage key is a distinct store entry *)
  Alcotest.(check int) "five distinct keys" 5
    (List.length (List.sort_uniq compare [ o0; i0; c0; p0; v0 ]))

(* ---------- stage invalidation: exactly the affected stages rebuild ---------- *)

let test_stage_invalidation () =
  in_fresh_dir (fun _d ->
      let cold_st, cold_fp, cold_rep = run_pass () in
      Alcotest.check status_t "cold run rebuilds every stage"
        (all_of Pipeline.Rebuilt) cold_st;
      let warm_st, warm_fp, warm_rep = run_pass () in
      Alcotest.check status_t "warm run hits every stage"
        (all_of Pipeline.Hit) warm_st;
      Alcotest.(check bool) "warm output bit-identical" true
        (warm_fp = cold_fp && warm_rep = cold_rep);
      (* pieces change: oracle + intervals survive, the rest rebuild *)
      let cfg2 = { tiny_cfg with Rlibm.Config.pieces = 2 } in
      let st2, _, _ = run_pass ~cfg:cfg2 () in
      Alcotest.check status_t "pieces change rebuilds constraints+"
        Pipeline.
          [
            (Oracle, Hit);
            (Intervals, Hit);
            (Constraints, Rebuilt);
            (Poly, Rebuilt);
            (Verdict, Rebuilt);
          ]
        st2;
      (* scheme change: everything up to constraints survives *)
      let st3, _, _ = run_pass ~scheme:Polyeval.HornerFma () in
      Alcotest.check status_t "scheme change rebuilds poly+"
        Pipeline.
          [
            (Oracle, Hit);
            (Intervals, Hit);
            (Constraints, Hit);
            (Poly, Rebuilt);
            (Verdict, Rebuilt);
          ]
        st3;
      (* and the original configuration still hits everywhere *)
      let again_st, again_fp, _ = run_pass () in
      Alcotest.check status_t "original knobs still fully warm"
        (all_of Pipeline.Hit) again_st;
      Alcotest.(check bool) "original output unchanged" true
        (again_fp = cold_fp))

(* ---------- resume: shallow stages persisted, deep stages rebuilt ---------- *)

let test_resume_bit_identical () =
  let saved_jobs = Parallel.jobs () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_jobs saved_jobs)
    (fun () ->
      (* The reference output, from an uninterrupted cold run. *)
      let reference =
        in_fresh_dir (fun _d ->
            Parallel.set_jobs 1;
            let _, fp, rep = run_pass () in
            (fp, rep))
      in
      List.iter
        (fun jobs ->
          in_fresh_dir (fun _d ->
              Parallel.set_jobs jobs;
              (* "Interrupted" run: only stages 1-2 completed. *)
              Rlibm.Constraints.clear_memory_cache ();
              let report =
                warm_ok ~through:Pipeline.Intervals
                  [ (Oracle.Exp2, tiny_cfg) ]
              in
              Alcotest.(check int) "one pair warmed" 1
                (List.length report.Pipeline.wm_entries);
              Alcotest.(check int) "nothing skipped" 0
                (List.length report.Pipeline.wm_failed);
              (* Resume: stages 1-2 load, stages 3-5 rebuild. *)
              let st, fp, rep = run_pass () in
              Alcotest.check status_t
                (Printf.sprintf "resume at -j %d rebuilds stages 3+" jobs)
                Pipeline.
                  [
                    (Oracle, Hit);
                    (Intervals, Hit);
                    (Constraints, Rebuilt);
                    (Poly, Rebuilt);
                    (Verdict, Rebuilt);
                  ]
                st;
              Alcotest.(check bool)
                (Printf.sprintf "resumed output at -j %d = cold -j 1" jobs)
                true
                ((fp, rep) = reference)))
        [ 1; 4 ])

(* ---------- oracle shards ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let shard_stats () =
  List.assoc_opt "oracle-shard" (Cache.stats_by_kind ())

(* The shard grid is a fixed partition of the input universe: contiguous,
   complete, in order — and a pure function of (n, shards), so the job
   count cannot move a shard boundary.  Keys are distinct per index and
   never collide with the whole-table key. *)
let test_shard_grid () =
  List.iter
    (fun (n, shards) ->
      let ranges = List.init shards (Pipeline.shard_range ~n ~shards) in
      let lo0, _ = List.hd ranges in
      Alcotest.(check int) "starts at 0" 0 lo0;
      let rec chained = function
        | [] | [ _ ] -> true
        | (_, hi) :: ((lo, _) :: _ as rest) -> hi = lo && chained rest
      in
      Alcotest.(check bool)
        (Printf.sprintf "contiguous n=%d s=%d" n shards)
        true (chained ranges);
      let _, hil = List.nth ranges (shards - 1) in
      Alcotest.(check int) "ends at n" n hil)
    [ (7936, 1); (7936, 4); (7936, 7); (10, 16); (0, 3) ];
  let saved = Parallel.jobs () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_jobs saved)
    (fun () ->
      let grid () = List.init 4 (Pipeline.shard_range ~n:7936 ~shards:4) in
      Parallel.set_jobs 1;
      let g1 = grid () in
      Parallel.set_jobs 4;
      Alcotest.(check bool) "grid independent of -j" true (g1 = grid ()));
  let key i =
    Pipeline.oracle_shard_key ~cfg:tiny_cfg ~shards:4 ~index:i Oracle.Exp2
  in
  let keys = List.init 4 key in
  Alcotest.(check int) "four distinct shard keys" 4
    (List.length (List.sort_uniq compare keys));
  Alcotest.(check bool) "distinct from the whole-table key" false
    (List.mem (Pipeline.oracle_key ~cfg:tiny_cfg Oracle.Exp2) keys);
  Alcotest.(check bool) "shard count is part of the key" true
    (key 0 <> Pipeline.oracle_shard_key ~cfg:tiny_cfg ~shards:8 ~index:0
                 Oracle.Exp2)

(* A sharded cold run must be indistinguishable from an unsharded one
   downstream: the republished whole-table artifact byte-identical, and
   every later stage hitting the very same keys with the same content —
   at -j 1 and -j 4. *)
let test_sharded_bit_identical () =
  let saved_jobs = Parallel.jobs () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_jobs saved_jobs)
    (fun () ->
      let okey = Pipeline.oracle_key ~cfg:tiny_cfg Oracle.Exp2 in
      let reference =
        in_fresh_dir (fun _d ->
            Parallel.set_jobs 1;
            Rlibm.Constraints.clear_memory_cache ();
            let _, fp, rep = run_pass () in
            (read_file (Cache.path_of_key okey), fp, rep))
      in
      List.iter
        (fun jobs ->
          in_fresh_dir (fun _d ->
              Parallel.set_jobs jobs;
              Rlibm.Constraints.clear_memory_cache ();
              let _ = oracle_ok ~shards:5 ~cfg:tiny_cfg Oracle.Exp2 in
              let ref_bytes, ref_fp, ref_rep = reference in
              Alcotest.(check bool)
                (Printf.sprintf "whole-table artifact bytes at -j %d" jobs)
                true
                (read_file (Cache.path_of_key okey) = ref_bytes);
              (* Downstream stages consume the republished table: the
                 oracle stage must hit, and output stays bit-identical. *)
              let st, fp, rep = run_pass () in
              Alcotest.(check bool)
                (Printf.sprintf "oracle hits after sharded warm -j %d" jobs)
                true
                (List.assoc Pipeline.Oracle st = Pipeline.Hit);
              Alcotest.(check bool)
                (Printf.sprintf "downstream bit-identical -j %d" jobs)
                true
                (fp = ref_fp && rep = ref_rep)))
        [ 1; 4 ])

(* Cooperative fill: shards published by a killed (or distributed)
   warmer are loaded, never recomputed.  Two single-shard invocations
   stand in for the interrupted run; the resuming full run must load
   exactly those two shards and compute exactly the other two. *)
let test_shard_resume () =
  in_fresh_dir (fun _d ->
      List.iter
        (fun k ->
          Rlibm.Constraints.clear_memory_cache ();
          ignore
            (oracle_ok ~shards:4 ~only_shard:k ~cfg:tiny_cfg Oracle.Exp2
              : (int64, int64) Hashtbl.t))
        [ 0; 1 ];
      (* Resume. *)
      Rlibm.Constraints.clear_memory_cache ();
      Cache.reset_stats ();
      let t = oracle_ok ~shards:4 ~cfg:tiny_cfg Oracle.Exp2 in
      (match shard_stats () with
      | None -> Alcotest.fail "no oracle-shard store traffic on resume"
      | Some s ->
          Alcotest.(check int) "published shards loaded, not recomputed" 2
            s.Cache.hits;
          Alcotest.(check int) "missing shards computed once" 2
            s.Cache.misses);
      (* The assembled table equals an unsharded run's. *)
      let unsharded =
        in_fresh_dir (fun _d ->
            Rlibm.Constraints.clear_memory_cache ();
            oracle_ok ~cfg:tiny_cfg Oracle.Exp2)
      in
      let sorted tbl =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
      in
      Alcotest.(check bool) "merged table = unsharded table" true
        (sorted t = sorted unsharded);
      (* Fully warm: the republished whole table satisfies every shard
         with zero store traffic and zero Ziv loops. *)
      Rlibm.Constraints.clear_memory_cache ();
      Cache.reset_stats ();
      ignore
        (oracle_ok ~shards:4 ~cfg:tiny_cfg Oracle.Exp2
          : (int64, int64) Hashtbl.t);
      (match shard_stats () with
      | None -> ()
      | Some s ->
          Alcotest.(check int) "warm run loads no shard" 0 s.Cache.hits;
          Alcotest.(check int) "warm run computes no shard" 0 s.Cache.misses);
      (* Bad shard parameters are rejected with a typed error, not an
         exception. *)
      (match Pipeline.oracle_stage ~shards:0 ~cfg:tiny_cfg Oracle.Exp2 with
      | Error (Diag.Error.Shard_range { count = 0; _ }) -> ()
      | Ok _ -> Alcotest.fail "shards < 1 accepted"
      | Error e ->
          Alcotest.failf "expected Shard_range, got %s"
            (Diag.Error.to_string e));
      match
        Pipeline.oracle_stage ~shards:4 ~only_shard:4 ~cfg:tiny_cfg Oracle.Exp2
      with
      | Error (Diag.Error.Shard_range { index = 4; count = 4 }) -> ()
      | Ok _ -> Alcotest.fail "out-of-range only_shard accepted"
      | Error e ->
          Alcotest.failf "expected Shard_range, got %s"
            (Diag.Error.to_string e))

(* Two warmer *processes* racing on one store directory: the O_EXCL-temp
   publish protocol makes the race benign (identical content, atomic
   rename), and the store must end up byte-identical to a lone
   unsharded run's.  [Unix.fork] (and everything built on it, like
   [create_process]) is forbidden once any domain has ever been spawned
   in this process, so the racers are launched through [Sys.command]
   (C-level system(3)) against the built CLI — which also exercises the
   --shards flag end to end. *)
let rlibm_gen_exe =
  (* Tests run with cwd = _build/default/test; the binary is a declared
     dependency in test/dune. *)
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "rlibm_gen.exe")

let test_shard_concurrent () =
  if not (Sys.file_exists rlibm_gen_exe) then
    Alcotest.failf "rlibm_gen binary not found at %s" rlibm_gen_exe;
  let saved_jobs = Parallel.jobs () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_jobs saved_jobs)
    (fun () ->
      Parallel.set_jobs 1;
      let okey = Pipeline.oracle_key ~cfg:tiny_cfg Oracle.Exp2 in
      let ref_bytes =
        in_fresh_dir (fun _d ->
            Rlibm.Constraints.clear_memory_cache ();
            let _, _, _ = run_pass () in
            read_file (Cache.path_of_key okey))
      in
      in_fresh_dir (fun dir ->
          let warmer log =
            Printf.sprintf
              "%s warm --func exp2 --through oracle --shards 4 --ebits 4 \
               --prec 7 --table-bits 3 -j 1 --cache-dir %s > %s 2>&1"
              (Filename.quote rlibm_gen_exe) (Filename.quote dir)
              (Filename.quote (Filename.concat dir log))
          in
          let cmd =
            Printf.sprintf "%s & p1=$!; %s & p2=$!; wait $p1 && wait $p2"
              (warmer "warmer1.log") (warmer "warmer2.log")
          in
          let rc = Sys.command cmd in
          if rc <> 0 then begin
            List.iter
              (fun log ->
                let p = Filename.concat dir log in
                if Sys.file_exists p then prerr_string (read_file p))
              [ "warmer1.log"; "warmer2.log" ];
            Alcotest.failf "concurrent warmers exited with %d" rc
          end;
          Alcotest.(check bool)
            "racing warmers leave the unsharded artifact bytes" true
            (read_file (Cache.path_of_key okey) = ref_bytes)))

(* warm must report skipped generations, not swallow them: a config
   whose degree search cannot succeed fails the polynomial stage for
   every scheme, and each failure lands in wm_failed. *)
let test_warm_reports_failures () =
  in_fresh_dir (fun _d ->
      Rlibm.Constraints.clear_memory_cache ();
      let doomed =
        {
          tiny_cfg with
          Rlibm.Config.min_degree = 0;
          max_degree = 0;
          max_rounds = 1;
          max_specials = 0;
        }
      in
      let report =
        warm_ok ~schemes:[ Polyeval.Estrin ] [ (Oracle.Exp2, doomed) ]
      in
      Alcotest.(check int) "entry still warmed through the oracle" 1
        (List.length report.Pipeline.wm_entries);
      (match report.Pipeline.wm_failed with
      | [ (Oracle.Exp2, Polyeval.Estrin, err) ] ->
          (* a zeroed budget must surface as a typed generation error
             (infeasible at the only degree tried, or out of budget) *)
          (match err with
          | Diag.Error.Budget_exhausted { func; scheme; max_degree; _ } ->
              Alcotest.(check string) "failure func" "exp2" func;
              Alcotest.(check string) "failure scheme" "estrin" scheme;
              Alcotest.(check int) "failure degree bound" 0 max_degree
          | Diag.Error.Lp_infeasible { func; scheme; degree; _ } ->
              Alcotest.(check string) "failure func" "exp2" func;
              Alcotest.(check string) "failure scheme" "estrin" scheme;
              Alcotest.(check int) "failure degree bound" 0 degree
          | e ->
              Alcotest.failf "expected a typed generation failure, got %s"
                (Diag.Error.to_string e));
          Alcotest.(check bool) "failure message non-empty" true
            (Diag.Error.to_string err <> "")
      | l -> Alcotest.failf "expected one failure, got %d" (List.length l));
      (* A healthy config reports no failures. *)
      Rlibm.Constraints.clear_memory_cache ();
      let ok =
        warm_ok ~schemes:[ Polyeval.Estrin ] [ (Oracle.Exp2, tiny_cfg) ]
      in
      Alcotest.(check int) "healthy warm skips nothing" 0
        (List.length ok.Pipeline.wm_failed))

let suite =
  [
    ("key invalidation graph", `Quick, test_keys);
    ("shard grid and keys", `Quick, test_shard_grid);
    ("stage invalidation rebuilds exactly downstream", `Slow,
     test_stage_invalidation);
    ("resume is bit-identical at -j 1 and -j 4", `Slow,
     test_resume_bit_identical);
    ("sharded run bit-identical to unsharded", `Slow,
     test_sharded_bit_identical);
    ("interrupted sharded warm resumes without recompute", `Slow,
     test_shard_resume);
    ("concurrent warmers fill one store cooperatively", `Slow,
     test_shard_concurrent);
    ("warm reports skipped generations", `Slow, test_warm_reports_failures);
  ]
