(* Tests for the staged artifact pipeline: the key invalidation graph
   (each knob orphans exactly the downstream stages), stage-level
   hit/rebuild behaviour, and the resume guarantee — a run restarted
   after the shallow stages completed rebuilds only the deep stages and
   still produces bit-identical output at every job count. *)

let dir_counter = ref 0

(* Run [f] against a fresh store directory, restoring the previous one
   afterwards (other suites share the process). *)
let in_fresh_dir f =
  let saved = Cache.dir () in
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rlibm-pipeline-test-%d-%d" (Unix.getpid ())
         !dir_counter)
  in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  Cache.set_dir d;
  Fun.protect ~finally:(fun () -> Cache.set_dir saved) (fun () -> f d)

let tiny_cfg =
  {
    Rlibm.Config.default_mini with
    Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:7;
    table_bits = 3;
    max_specials = 40;
    max_rounds = 20;
  }

(* The function's observable artifacts as exact bits: coefficients,
   degrees and the special table.  (Deliberately not the shared oracle
   table: verification lazily installs shortcut-path entries into it, so
   its in-process extent depends on whether the verdict stage ran — a
   warm run that loads the verdict skips exactly those lookups.) *)
let fingerprint (g : Rlibm.Generate.generated) =
  let coeffs =
    Array.to_list g.Rlibm.Generate.pieces
    |> List.concat_map (fun (p : Polyeval.compiled) ->
           Array.to_list (Array.map Int64.bits_of_float p.Polyeval.data))
  in
  let specials =
    Hashtbl.fold
      (fun x v acc -> (x, Int64.bits_of_float v) :: acc)
      g.Rlibm.Generate.specials []
    |> List.sort compare
  in
  (coeffs, Array.to_list g.Rlibm.Generate.degrees, specials)

(* One full pipeline pass from a cold in-process state (the disk store is
   whatever the test arranged): per-stage statuses plus the output
   fingerprint and verdict. *)
let run_pass ?(scheme = Polyeval.Estrin) ?(func = Oracle.Exp2)
    ?(cfg = tiny_cfg) () =
  Rlibm.Constraints.clear_memory_cache ();
  let events, result = Pipeline.run_stages ~cfg ~scheme func in
  let statuses =
    List.map (fun e -> (e.Pipeline.ev_stage, e.Pipeline.ev_status)) events
  in
  match result with
  | Error msg -> Alcotest.failf "generation failed: %s" msg
  | Ok (g, rep) -> (statuses, fingerprint g, rep)

let status_t =
  Alcotest.(
    list
      (pair
         (testable
            (Fmt.of_to_string Pipeline.stage_name)
            (fun a b -> a = b))
         (testable
            (Fmt.of_to_string (function
              | Pipeline.Hit -> "hit"
              | Pipeline.Rebuilt -> "rebuilt"))
            (fun a b -> a = b))))

let all_of st = List.map (fun s -> (s, st)) Pipeline.all_stages

(* ---------- the key invalidation graph ---------- *)

let test_keys () =
  let cfg = tiny_cfg and f = Oracle.Exp2 and scheme = Polyeval.Estrin in
  let keys c =
    ( Pipeline.oracle_key ~cfg:c f,
      Pipeline.intervals_key ~cfg:c f,
      Pipeline.constraints_key ~cfg:c f,
      Pipeline.poly_key ~cfg:c ~scheme f,
      Pipeline.verdict_key ~cfg:c ~scheme f )
  in
  let o0, i0, c0, p0, v0 = keys cfg in
  (* pieces: constraints and below *)
  let o, i, c, p, v =
    keys { cfg with Rlibm.Config.pieces = cfg.Rlibm.Config.pieces + 1 }
  in
  Alcotest.(check bool) "pieces keeps oracle+intervals" true (o = o0 && i = i0);
  Alcotest.(check bool) "pieces invalidates constraints+" true
    (c <> c0 && p <> p0 && v <> v0);
  (* table_bits: constraints and below *)
  let o, i, c, p, v =
    keys { cfg with Rlibm.Config.table_bits = cfg.Rlibm.Config.table_bits + 1 }
  in
  Alcotest.(check bool) "table_bits keeps oracle+intervals" true
    (o = o0 && i = i0);
  Alcotest.(check bool) "table_bits invalidates constraints+" true
    (c <> c0 && p <> p0 && v <> v0);
  (* degree/round/special budgets: polynomial and below *)
  let o, i, c, p, v =
    keys { cfg with Rlibm.Config.max_rounds = cfg.Rlibm.Config.max_rounds + 1 }
  in
  Alcotest.(check bool) "budgets keep oracle..constraints" true
    (o = o0 && i = i0 && c = c0);
  Alcotest.(check bool) "budgets invalidate poly+" true (p <> p0 && v <> v0);
  (* scheme: polynomial and below *)
  Alcotest.(check bool) "scheme invalidates poly+" true
    (Pipeline.poly_key ~cfg ~scheme:Polyeval.Horner f <> p0
    && Pipeline.verdict_key ~cfg ~scheme:Polyeval.Horner f <> v0);
  (* narrow: verdict only *)
  Alcotest.(check bool) "narrow invalidates only the verdict" true
    (Pipeline.verdict_key ~narrow:false ~cfg ~scheme f <> v0);
  (* input format: everything *)
  let o, i, c, p, v =
    keys { cfg with Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:8 }
  in
  Alcotest.(check bool) "format invalidates everything" true
    (o <> o0 && i <> i0 && c <> c0 && p <> p0 && v <> v0);
  (* every stage key is a distinct store entry *)
  Alcotest.(check int) "five distinct keys" 5
    (List.length (List.sort_uniq compare [ o0; i0; c0; p0; v0 ]))

(* ---------- stage invalidation: exactly the affected stages rebuild ---------- *)

let test_stage_invalidation () =
  in_fresh_dir (fun _d ->
      let cold_st, cold_fp, cold_rep = run_pass () in
      Alcotest.check status_t "cold run rebuilds every stage"
        (all_of Pipeline.Rebuilt) cold_st;
      let warm_st, warm_fp, warm_rep = run_pass () in
      Alcotest.check status_t "warm run hits every stage"
        (all_of Pipeline.Hit) warm_st;
      Alcotest.(check bool) "warm output bit-identical" true
        (warm_fp = cold_fp && warm_rep = cold_rep);
      (* pieces change: oracle + intervals survive, the rest rebuild *)
      let cfg2 = { tiny_cfg with Rlibm.Config.pieces = 2 } in
      let st2, _, _ = run_pass ~cfg:cfg2 () in
      Alcotest.check status_t "pieces change rebuilds constraints+"
        Pipeline.
          [
            (Oracle, Hit);
            (Intervals, Hit);
            (Constraints, Rebuilt);
            (Poly, Rebuilt);
            (Verdict, Rebuilt);
          ]
        st2;
      (* scheme change: everything up to constraints survives *)
      let st3, _, _ = run_pass ~scheme:Polyeval.HornerFma () in
      Alcotest.check status_t "scheme change rebuilds poly+"
        Pipeline.
          [
            (Oracle, Hit);
            (Intervals, Hit);
            (Constraints, Hit);
            (Poly, Rebuilt);
            (Verdict, Rebuilt);
          ]
        st3;
      (* and the original configuration still hits everywhere *)
      let again_st, again_fp, _ = run_pass () in
      Alcotest.check status_t "original knobs still fully warm"
        (all_of Pipeline.Hit) again_st;
      Alcotest.(check bool) "original output unchanged" true
        (again_fp = cold_fp))

(* ---------- resume: shallow stages persisted, deep stages rebuilt ---------- *)

let test_resume_bit_identical () =
  let saved_jobs = Parallel.jobs () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_jobs saved_jobs)
    (fun () ->
      (* The reference output, from an uninterrupted cold run. *)
      let reference =
        in_fresh_dir (fun _d ->
            Parallel.set_jobs 1;
            let _, fp, rep = run_pass () in
            (fp, rep))
      in
      List.iter
        (fun jobs ->
          in_fresh_dir (fun _d ->
              Parallel.set_jobs jobs;
              (* "Interrupted" run: only stages 1-2 completed. *)
              Rlibm.Constraints.clear_memory_cache ();
              let counts =
                Pipeline.warm ~through:Pipeline.Intervals
                  [ (Oracle.Exp2, tiny_cfg) ]
              in
              Alcotest.(check int) "one pair warmed" 1 (List.length counts);
              (* Resume: stages 1-2 load, stages 3-5 rebuild. *)
              let st, fp, rep = run_pass () in
              Alcotest.check status_t
                (Printf.sprintf "resume at -j %d rebuilds stages 3+" jobs)
                Pipeline.
                  [
                    (Oracle, Hit);
                    (Intervals, Hit);
                    (Constraints, Rebuilt);
                    (Poly, Rebuilt);
                    (Verdict, Rebuilt);
                  ]
                st;
              Alcotest.(check bool)
                (Printf.sprintf "resumed output at -j %d = cold -j 1" jobs)
                true
                ((fp, rep) = reference)))
        [ 1; 4 ])

let suite =
  [
    ("key invalidation graph", `Quick, test_keys);
    ("stage invalidation rebuilds exactly downstream", `Slow,
     test_stage_invalidation);
    ("resume is bit-identical at -j 1 and -j 4", `Slow,
     test_resume_bit_identical);
  ]
