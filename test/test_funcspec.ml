(* The function-spec registry: the single place that knows the paper's
   six functions.  These tests pin the registry's invariants — name
   round-trips, family classification, per-family constants, preset
   plumbing into Config — so a future function family only has to get
   its one registry entry right. *)

let all_funcs = Funcspec.all

let test_registry_complete () =
  Alcotest.(check int) "six functions" 6 (List.length all_funcs);
  (* every entry's spec is keyed by its own constructor *)
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Funcspec.name f ^ " spec self-keyed")
        true
        ((Funcspec.get f).Funcspec.func = f))
    all_funcs

let test_name_roundtrip () =
  List.iter
    (fun f ->
      match Funcspec.of_name (Funcspec.name f) with
      | Some f' -> Alcotest.(check bool) (Funcspec.name f) true (f = f')
      | None -> Alcotest.failf "%s did not round-trip" (Funcspec.name f))
    all_funcs;
  (* aliases resolve too *)
  Alcotest.(check bool) "ln -> log" true (Funcspec.of_name "ln" = Some Funcspec.Log);
  Alcotest.(check bool) "unknown rejected" true (Funcspec.of_name "tan" = None)

let test_family_classification () =
  let exp_side = [ Funcspec.Exp; Funcspec.Exp2; Funcspec.Exp10 ] in
  let log_side = [ Funcspec.Log; Funcspec.Log2; Funcspec.Log10 ] in
  List.iter
    (fun f ->
      Alcotest.(check bool) (Funcspec.name f) true (Funcspec.is_exp_family f))
    exp_side;
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Funcspec.name f)
        false
        (Funcspec.is_exp_family f))
    log_side;
  (* the exp family's range-shortcut scale is its log2 base; the log
     family has none *)
  Alcotest.(check (option (float 0.0))) "exp scale" (Some 1.4426950408889634)
    (Funcspec.log2_scale Funcspec.Exp);
  Alcotest.(check (option (float 0.0))) "exp2 scale" (Some 1.0)
    (Funcspec.log2_scale Funcspec.Exp2);
  Alcotest.(check (option (float 0.0))) "exp10 scale" (Some 3.321928094887362)
    (Funcspec.log2_scale Funcspec.Exp10);
  List.iter
    (fun f ->
      Alcotest.(check (option (float 0.0)))
        (Funcspec.name f) None (Funcspec.log2_scale f))
    log_side

let test_family_constants () =
  (* the log family's per-exponent constant log_b 2, and whether
     k * k_scale is exact (true only for log2's k * 1.0) *)
  let k_of f =
    match (Funcspec.get f).Funcspec.family with
    | Funcspec.Log_family { k_scale; k_exact } -> (k_scale, k_exact)
    | Funcspec.Exp_family _ -> Alcotest.failf "%s is not a log" (Funcspec.name f)
  in
  Alcotest.(check (pair (float 0.0) bool)) "log" (0.6931471805599453, false)
    (k_of Funcspec.Log);
  Alcotest.(check (pair (float 0.0) bool)) "log2" (1.0, true)
    (k_of Funcspec.Log2);
  Alcotest.(check (pair (float 0.0) bool)) "log10" (0.30102999566398120, false)
    (k_of Funcspec.Log10)

let test_domain_and_exact () =
  let spec f = Funcspec.get f in
  (* exponentials are total; logarithms need x > 0 *)
  List.iter
    (fun f ->
      Alcotest.(check bool) "exp domain" true
        ((spec f).Funcspec.domain_ok (Rat.of_int (-7))))
    [ Funcspec.Exp; Funcspec.Exp2; Funcspec.Exp10 ];
  List.iter
    (fun f ->
      Alcotest.(check bool) "log rejects 0" false
        ((spec f).Funcspec.domain_ok Rat.zero);
      Alcotest.(check bool) "log rejects negative" false
        ((spec f).Funcspec.domain_ok (Rat.of_int (-1)));
      Alcotest.(check bool) "log accepts positive" true
        ((spec f).Funcspec.domain_ok (Rat.of_ints 3 2)))
    [ Funcspec.Log; Funcspec.Log2; Funcspec.Log10 ];
  (* exact-value rules: 2^3, log2 8, log10 100, 10^2 are exact *)
  let exact f q =
    match (spec f).Funcspec.exact_value q with
    | Some v -> Rat.to_string v
    | None -> "<inexact>"
  in
  Alcotest.(check string) "2^3" "8" (exact Funcspec.Exp2 (Rat.of_int 3));
  Alcotest.(check string) "log2 8" "3" (exact Funcspec.Log2 (Rat.of_int 8));
  Alcotest.(check string) "log10 100" "2" (exact Funcspec.Log10 (Rat.of_int 100));
  Alcotest.(check string) "10^2" "100" (exact Funcspec.Exp10 (Rat.of_int 2));
  Alcotest.(check string) "e^1 inexact" "<inexact>"
    (exact Funcspec.Exp Rat.one)

let test_oracle_delegates () =
  (* Oracle's public dispatchers are the registry's: same membership,
     same names, same domain verdicts, same enclosures. *)
  Alcotest.(check int) "Oracle.all" (List.length all_funcs)
    (List.length Oracle.all);
  List.iter
    (fun f ->
      Alcotest.(check string) "name" (Funcspec.name f) (Oracle.name f);
      let q = Rat.of_ints 5 4 in
      let a = Ival.to_rats (Funcspec.((get f).enclosure) q ~prec:64) in
      let b = Ival.to_rats (Oracle.enclosure f q ~prec:64) in
      Alcotest.(check bool) "enclosure" true
        (Rat.compare (fst a) (fst b) = 0 && Rat.compare (snd a) (snd b) = 0))
    all_funcs

let test_config_presets () =
  (* Config's per-function presets come from the registry records *)
  List.iter
    (fun f ->
      let p = (Funcspec.get f).Funcspec.mini in
      let cfg = Rlibm.Config.mini_for f in
      Alcotest.(check int) (Funcspec.name f ^ " mini pieces")
        p.Funcspec.pieces cfg.Rlibm.Config.pieces;
      Alcotest.(check int) (Funcspec.name f ^ " mini min_degree")
        p.Funcspec.min_degree cfg.Rlibm.Config.min_degree;
      let p32 = (Funcspec.get f).Funcspec.float32 in
      let cfg32 = Rlibm.Config.float32_for f in
      Alcotest.(check int) (Funcspec.name f ^ " f32 pieces")
        p32.Funcspec.pieces cfg32.Rlibm.Config.pieces)
    all_funcs

(* resolve: of_name plus a typed Bad_spec with a typo suggestion when a
   registered name (or alias) is within editing distance. *)
let test_resolve () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Funcspec.name f ^ " resolves")
        true
        (Funcspec.resolve (Funcspec.name f) = Ok f))
    all_funcs;
  Alcotest.(check bool) "alias resolves" true
    (Funcspec.resolve "ln" = Ok Funcspec.Log);
  (match Funcspec.resolve "lgo2" with
  | Error (Diag.Error.Bad_spec { name = "lgo2"; suggestion = Some "log2" }) ->
      ()
  | Error e ->
      Alcotest.failf "expected a log2 suggestion, got %s"
        (Diag.Error.to_string e)
  | Ok _ -> Alcotest.fail "typo accepted");
  (* a one-edit typo also renders the suggestion in the message *)
  (match Funcspec.resolve "exp22" with
  | Error (Diag.Error.Bad_spec { suggestion = Some _; _ } as e) ->
      let msg = Diag.Error.to_string e in
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec at i =
          i + nl <= hl && (String.sub hay i nl = needle || at (i + 1))
        in
        at 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "message offers the suggestion (%s)" msg)
        true
        (contains "did you mean" msg)
  | Error e ->
      Alcotest.failf "expected a suggestion, got %s" (Diag.Error.to_string e)
  | Ok _ -> Alcotest.fail "typo accepted");
  (* nothing close: a typed error without a far-fetched suggestion *)
  match Funcspec.resolve "tan" with
  | Error (Diag.Error.Bad_spec { name = "tan"; suggestion = None }) -> ()
  | Error e ->
      Alcotest.failf "expected a bare Bad_spec, got %s"
        (Diag.Error.to_string e)
  | Ok _ -> Alcotest.fail "unknown function accepted"

let suite =
  [
    ("registry complete and self-keyed", `Quick, test_registry_complete);
    ("name round-trip and aliases", `Quick, test_name_roundtrip);
    ("resolve: typed errors with suggestions", `Quick, test_resolve);
    ("family classification", `Quick, test_family_classification);
    ("log-family constants", `Quick, test_family_constants);
    ("domains and exact values", `Quick, test_domain_and_exact);
    ("oracle delegates to registry", `Quick, test_oracle_delegates);
    ("config presets from registry", `Quick, test_config_presets);
  ]
