(* Unit and property tests for the arbitrary-precision integer substrate. *)

let b = Bigint.of_string
let bi = Bigint.of_int

let check_eq msg want got =
  Alcotest.(check string) msg want (Bigint.to_string got)

(* ---------- unit tests ---------- *)

let test_constants () =
  check_eq "zero" "0" Bigint.zero;
  check_eq "one" "1" Bigint.one;
  check_eq "two" "2" Bigint.two;
  check_eq "minus_one" "-1" Bigint.minus_one;
  check_eq "ten" "10" Bigint.ten

let test_of_int_roundtrip () =
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (string_of_int n) (Some n)
        (Bigint.to_int (bi n)))
    [ 0; 1; -1; 42; -42; max_int; min_int; 1 lsl 30; (1 lsl 30) - 1 ]

let test_of_string_forms () =
  check_eq "plus" "123" (b "+123");
  check_eq "underscores" "1000000" (b "1_000_000");
  check_eq "hex" "255" (b "0xff");
  check_eq "hex upper" "3735928559" (b "0XDEADBEEF");
  check_eq "neg hex" "-16" (b "-0x10");
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (b ""));
  Alcotest.check_raises "garbage"
    (Invalid_argument "Bigint.of_string: bad character 'z'") (fun () ->
      ignore (b "1z3"))

let test_add_sub_known () =
  check_eq "carry chain"
    "10000000000000000000000000000000"
    (Bigint.add (b "9999999999999999999999999999999") (b "1"));
  check_eq "borrow chain" "9999999999999999999999999999999"
    (Bigint.sub (b "10000000000000000000000000000000") (b "1"));
  check_eq "sign flip" "-1" (Bigint.sub (b "1") (b "2"));
  check_eq "cancel" "0" (Bigint.sub (b "12345678901234567890") (b "12345678901234567890"))

let test_mul_known () =
  check_eq "paper-scale product"
    "-12193263113702179522496570642237463801111263526900"
    (Bigint.mul (b "123456789012345678901234567890") (b "-98765432109876543210"));
  check_eq "square"
    "15241578753238836750495351562536198787501905199875019052100"
    (Bigint.mul (b "123456789012345678901234567890") (b "123456789012345678901234567890"))

let test_karatsuba_consistency () =
  let open Bigint.Infix in
  (* Large operands cross the Karatsuba threshold; compare against a
     decomposition identity instead of a second multiplier:
     (a*B + c)(d*B + e) = ad B^2 + (ae + cd) B + ce. *)
  let big = Bigint.pow (b "1234567890987654321") 40 in
  let a = Bigint.shift_right big 600 in
  let c = big - Bigint.shift_left a 600 in
  let d = a + Bigint.one and e = c + Bigint.two in
  let other = Bigint.shift_left d 600 + e in
  let direct = big * other in
  let recomposed =
    Bigint.shift_left (a * d) 1200
    + Bigint.shift_left ((a * e) + (c * d)) 600
    + (c * e)
  in
  Alcotest.(check bool) "karatsuba identity" true (direct = recomposed)

let test_divmod_properties_known () =
  let q, r = Bigint.divmod (b "7") (b "2") in
  check_eq "7/2 q" "3" q;
  check_eq "7/2 r" "1" r;
  let q, r = Bigint.divmod (b "-7") (b "2") in
  check_eq "-7/2 q" "-3" q;
  check_eq "-7/2 r" "-1" r;
  let q, r = Bigint.divmod (b "7") (b "-2") in
  check_eq "7/-2 q" "-3" q;
  check_eq "7/-2 r" "1" r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bigint.divmod Bigint.one Bigint.zero))

let test_fdiv_cdiv () =
  check_eq "fdiv -7 2" "-4" (Bigint.fdiv (bi (-7)) (bi 2));
  check_eq "cdiv -7 2" "-3" (Bigint.cdiv (bi (-7)) (bi 2));
  check_eq "fdiv 7 -2" "-4" (Bigint.fdiv (bi 7) (bi (-2)));
  check_eq "cdiv 7 2" "4" (Bigint.cdiv (bi 7) (bi 2));
  let q, r = Bigint.fdivmod (bi (-7)) (bi 2) in
  check_eq "fdivmod q" "-4" q;
  check_eq "fdivmod r" "1" r

let test_shifts () =
  check_eq "shl" "1267650600228229401496703205376" (Bigint.pow2 100);
  check_eq "shr floor pos" "3" (Bigint.shift_right (bi 7) 1);
  check_eq "shr floor neg" "-4" (Bigint.shift_right (bi (-7)) 1);
  check_eq "shr all" "0" (Bigint.shift_right (bi 7) 10);
  check_eq "shr all neg" "-1" (Bigint.shift_right (bi (-7)) 10)

let test_bits () =
  Alcotest.(check int) "numbits 0" 0 (Bigint.numbits Bigint.zero);
  Alcotest.(check int) "numbits 1" 1 (Bigint.numbits Bigint.one);
  Alcotest.(check int) "numbits 2^100" 101 (Bigint.numbits (Bigint.pow2 100));
  Alcotest.(check bool) "testbit" true (Bigint.testbit (bi 5) 2);
  Alcotest.(check bool) "testbit off" false (Bigint.testbit (bi 5) 1);
  Alcotest.(check int) "trailing zeros" 100
    (Bigint.trailing_zeros (Bigint.pow2 100));
  Alcotest.(check int) "trailing zeros odd" 0 (Bigint.trailing_zeros (bi 5))

let test_gcd_pow () =
  check_eq "gcd" "6" (Bigint.gcd (bi 48) (bi (-18)));
  check_eq "gcd zero" "5" (Bigint.gcd (bi 5) Bigint.zero);
  check_eq "pow" "1024" (Bigint.pow (bi 2) 10);
  check_eq "pow 0" "1" (Bigint.pow (bi 7) 0);
  Alcotest.check_raises "neg pow"
    (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
      ignore (Bigint.pow (bi 2) (-1)))

let test_to_float_correct_rounding () =
  (* 2^53 + 1 is a tie -> rounds to even (2^53); +3 rounds up. *)
  Alcotest.(check (float 0.0)) "tie to even" 9007199254740992.0
    (Bigint.to_float (b "9007199254740993"));
  Alcotest.(check (float 0.0)) "round up" 9007199254740996.0
    (Bigint.to_float (b "9007199254740995"));
  Alcotest.(check (float 0.0)) "huge" Float.infinity
    (Bigint.to_float (Bigint.pow2 1100));
  Alcotest.(check (float 0.0)) "neg huge" Float.neg_infinity
    (Bigint.to_float (Bigint.neg (Bigint.pow2 1100)))

(* The limb-level scalar multiply must agree with the general product for
   every scalar size class: single limb, two limbs, three limbs (> 2^60),
   the native extremes, and negatives. *)
let test_mul_int_large () =
  let scalars =
    [
      0; 1; -1; 7; -7;
      (1 lsl 30) - 1; 1 lsl 30; (1 lsl 30) + 1;  (* one/two limb boundary *)
      -(1 lsl 30); (1 lsl 45) + 12345; -((1 lsl 45) + 12345);
      (1 lsl 60) - 1; 1 lsl 60; (1 lsl 60) + 987654321;  (* three limbs *)
      max_int; -max_int; min_int; min_int + 1;
    ]
  in
  let values =
    [ Bigint.zero; Bigint.one; Bigint.minus_one; bi max_int;
      b "123456789123456789123456789123456789"; Bigint.neg (b "999999999999999999999999");
      Bigint.pow2 200 ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun n ->
          check_eq
            (Printf.sprintf "%s * %d" (Bigint.to_string a) n)
            (Bigint.to_string (Bigint.mul a (bi n)))
            (Bigint.mul_int a n))
        scalars)
    values

(* ---------- property tests ---------- *)

(* Random decimal strings of widely varying size, signed. *)
let arb_bigint =
  QCheck2.Gen.(
    let* n_chunks = int_range 1 8 in
    let* chunks = list_size (return n_chunks) (int_bound 999_999_999) in
    let* neg = bool in
    let s = String.concat "" (List.map string_of_int (1 :: chunks)) in
    return (Bigint.of_string (if neg then "-" ^ s else s)))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen f)

let props =
  let beq = Bigint.equal in
  let badd = Bigint.add and bmul = Bigint.mul in
  [
    prop "string round-trip" arb_bigint (fun x ->
        beq (Bigint.of_string (Bigint.to_string x)) x);
    prop "add comm" (QCheck2.Gen.pair arb_bigint arb_bigint) (fun (a, bb) ->
        beq (badd a bb) (badd bb a));
    prop "mul_int agrees with mul" (QCheck2.Gen.pair arb_bigint QCheck2.Gen.int)
      (fun (a, n) -> beq (Bigint.mul_int a n) (bmul a (Bigint.of_int n)));
    prop "mul comm" (QCheck2.Gen.pair arb_bigint arb_bigint) (fun (a, bb) ->
        beq (bmul a bb) (bmul bb a));
    prop "distributivity"
      (QCheck2.Gen.triple arb_bigint arb_bigint arb_bigint)
      (fun (a, bb, c) -> beq (bmul a (badd bb c)) (badd (bmul a bb) (bmul a c)));
    prop "divmod invariant" (QCheck2.Gen.pair arb_bigint arb_bigint)
      (fun (a, bb) ->
        Bigint.is_zero bb
        ||
        let q, r = Bigint.divmod a bb in
        beq a (badd (bmul q bb) r)
        && Bigint.compare (Bigint.abs r) (Bigint.abs bb) < 0
        && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a));
    prop "fdivmod invariant" (QCheck2.Gen.pair arb_bigint arb_bigint)
      (fun (a, bb) ->
        Bigint.is_zero bb
        ||
        let q, r = Bigint.fdivmod a bb in
        beq a (badd (bmul q bb) r)
        && (Bigint.is_zero r || Bigint.sign r = Bigint.sign bb));
    prop "shift inverse" (QCheck2.Gen.pair arb_bigint (QCheck2.Gen.int_bound 200))
      (fun (a, k) -> beq (Bigint.shift_right (Bigint.shift_left a k) k) a);
    prop "gcd divides" (QCheck2.Gen.pair arb_bigint arb_bigint) (fun (a, bb) ->
        (Bigint.is_zero a && Bigint.is_zero bb)
        ||
        let g = Bigint.gcd a bb in
        Bigint.is_zero (Bigint.rem a g) && Bigint.is_zero (Bigint.rem bb g));
    prop "numbits bound" arb_bigint (fun a ->
        Bigint.is_zero a
        ||
        let n = Bigint.numbits a in
        Bigint.compare (Bigint.abs a) (Bigint.pow2 n) < 0
        && Bigint.compare (Bigint.pow2 (n - 1)) (Bigint.abs a) <= 0);
    prop "compare antisym" (QCheck2.Gen.pair arb_bigint arb_bigint)
      (fun (a, bb) -> Bigint.compare a bb = -Bigint.compare bb a);
  ]

let suite =
  [
    ("constants", `Quick, test_constants);
    ("of_int round-trip", `Quick, test_of_int_roundtrip);
    ("of_string forms", `Quick, test_of_string_forms);
    ("add/sub carries", `Quick, test_add_sub_known);
    ("mul known answers", `Quick, test_mul_known);
    ("mul_int limb-level", `Quick, test_mul_int_large);
    ("karatsuba identity", `Quick, test_karatsuba_consistency);
    ("divmod semantics", `Quick, test_divmod_properties_known);
    ("fdiv/cdiv", `Quick, test_fdiv_cdiv);
    ("shifts", `Quick, test_shifts);
    ("bit operations", `Quick, test_bits);
    ("gcd/pow", `Quick, test_gcd_pow);
    ("to_float correct rounding", `Quick, test_to_float_correct_rounding);
  ]
  @ props
