(* Tests for the correctly rounded oracle (the MPFR substitute). *)

let fmt16 = Softfp.binary16

let test_exact_values () =
  let check name f x expect =
    match Oracle.exact_value f (Rat.of_string x) with
    | Some y -> Alcotest.(check string) name expect (Rat.to_string y)
    | None -> Alcotest.failf "%s: expected exact value" name
  in
  check "exp 0" Oracle.Exp "0" "1";
  check "exp2 10" Oracle.Exp2 "10" "1024";
  check "exp2 -3" Oracle.Exp2 "-3" "1/8";
  check "exp10 3" Oracle.Exp10 "3" "1000";
  check "log 1" Oracle.Log "1" "0";
  check "log2 1024" Oracle.Log2 "1024" "10";
  check "log2 1/8" Oracle.Log2 "1/8" "-3";
  check "log10 1/100" Oracle.Log10 "1/100" "-2";
  let none name f x =
    Alcotest.(check bool) name true (Oracle.exact_value f (Rat.of_string x) = None)
  in
  none "exp 1" Oracle.Exp "1";
  none "exp2 1/2" Oracle.Exp2 "1/2";
  none "log 2" Oracle.Log "2";
  none "log2 3" Oracle.Log2 "3";
  none "log10 2" Oracle.Log10 "2"

let test_constants () =
  (* ln2 and ln10 enclosures must bracket the known doubles tightly. *)
  let check name iv expect =
    let lo, hi = Ival.to_rats iv in
    Alcotest.(check bool) (name ^ " brackets") true
      (Rat.compare lo (Rat.of_float expect) <= 0
      && Rat.compare (Rat.of_float expect) hi >= 0
      ||
      (* the double is one side of the bracket *)
      Rat.to_float lo = expect || Rat.to_float hi = expect);
    Alcotest.(check bool) (name ^ " tight") true
      (Rat.compare (Rat.sub hi lo) (Rat.mul_pow2 Rat.one (-90)) < 0)
  in
  check "ln2" (Oracle.ln2 ~prec:100) 0.6931471805599453;
  check "ln10" (Oracle.ln10 ~prec:100) 2.302585092994046

let test_enclosure_brackets_native () =
  (* The enclosure must contain the value glibc computes, to within
     glibc's own error (2 ulp). *)
  let cases =
    [ (Oracle.Exp, 1.0, exp 1.0); (Oracle.Exp, -7.25, exp (-7.25));
      (Oracle.Exp2, 0.3, Float.exp2 0.3); (Oracle.Exp10, 2.5, 316.2277660168379);
      (Oracle.Log, 7.5, log 7.5); (Oracle.Log2, 7.5, Float.log2 7.5);
      (Oracle.Log10, 7.5, log10 7.5) ]
  in
  List.iter
    (fun (f, x, native) ->
      let iv = Oracle.enclosure f (Rat.of_float x) ~prec:80 in
      let lo, hi = Ival.to_rats iv in
      let slack = Rat.of_float (Float.abs native *. 1e-13) in
      Alcotest.(check bool)
        (Printf.sprintf "%s %h" (Oracle.name f) x)
        true
        (Rat.compare (Rat.sub lo slack) (Rat.of_float native) <= 0
        && Rat.compare (Rat.of_float native) (Rat.add hi slack) <= 0))
    cases

let test_enclosure_widths_shrink () =
  let x = Rat.of_ints 7 3 in
  let w prec =
    let iv = Oracle.enclosure Oracle.Exp x ~prec in
    let lo, hi = Ival.to_rats iv in
    Rat.sub hi lo
  in
  let w80 = w 80 and w160 = w 160 in
  Alcotest.(check bool) "narrower at higher prec" true
    (Rat.compare w160 w80 < 0);
  Alcotest.(check bool) "meets target" true
    (Rat.compare w160 (Rat.mul_pow2 Rat.one (-150)) < 0)

let test_correctly_round_all_modes () =
  (* Round exp(1/3) into binary16 under every mode; check bracketing and
     mode ordering. *)
  let x = Rat.of_ints 1 3 in
  let get mode = Oracle.correctly_round Oracle.Exp x ~fmt:fmt16 ~mode in
  let ord mode = Softfp.ordinal fmt16 (get mode) in
  Alcotest.(check bool) "RTD <= RNE" true (ord Softfp.RTD <= ord Softfp.RNE);
  Alcotest.(check bool) "RNE <= RTU" true (ord Softfp.RNE <= ord Softfp.RTU);
  Alcotest.(check bool) "RTZ = RTD (positive)" true
    (ord Softfp.RTZ = ord Softfp.RTD);
  Alcotest.(check bool) "RTU - RTD <= 1" true (ord Softfp.RTU - ord Softfp.RTD <= 1);
  (* RTO result is odd unless exact *)
  Alcotest.(check bool) "RTO odd" true (Softfp.frac_odd fmt16 (get Softfp.RTO))

let test_correctly_round_exact () =
  let b = Oracle.correctly_round Oracle.Exp2 (Rat.of_int 3) ~fmt:fmt16 ~mode:Softfp.RTO in
  Alcotest.(check (float 0.0)) "2^3" 8.0 (Softfp.to_float fmt16 b);
  let b = Oracle.correctly_round Oracle.Log2 (Rat.of_int 1024) ~fmt:fmt16 ~mode:Softfp.RNE in
  Alcotest.(check (float 0.0)) "log2 1024" 10.0 (Softfp.to_float fmt16 b)

let test_overflow_underflow_shortcuts () =
  let huge = Rat.of_float 3.0e38 and fmt = Softfp.fp34 in
  let cls m = Softfp.classify fmt (Oracle.correctly_round Oracle.Exp huge ~fmt ~mode:m) in
  Alcotest.(check bool) "exp(huge) RNE inf" true (cls Softfp.RNE = Softfp.Inf);
  Alcotest.(check int64) "exp(huge) RTO = maxfin"
    (Softfp.max_finite_bits fmt ~neg:false)
    (Oracle.correctly_round Oracle.Exp huge ~fmt ~mode:Softfp.RTO);
  Alcotest.(check int64) "exp(-huge) RTO = minsub"
    (Softfp.min_subnormal_bits fmt ~neg:false)
    (Oracle.correctly_round Oracle.Exp (Rat.neg huge) ~fmt ~mode:Softfp.RTO);
  Alcotest.(check int64) "exp(-huge) RNE = 0" (Softfp.zero_bits fmt)
    (Oracle.correctly_round Oracle.Exp (Rat.neg huge) ~fmt ~mode:Softfp.RNE);
  Alcotest.(check int64) "exp(-huge) RTU = minsub"
    (Softfp.min_subnormal_bits fmt ~neg:false)
    (Oracle.correctly_round Oracle.Exp (Rat.neg huge) ~fmt ~mode:Softfp.RTU)

let test_domain () =
  Alcotest.(check bool) "log domain" false
    (Oracle.domain_ok Oracle.Log (Rat.of_int (-1)));
  Alcotest.(check bool) "log zero" false (Oracle.domain_ok Oracle.Log Rat.zero);
  Alcotest.(check bool) "exp domain" true
    (Oracle.domain_ok Oracle.Exp (Rat.of_int (-1)));
  Alcotest.check_raises "enclosure domain"
    (Invalid_argument "Oracle.enclosure: domain") (fun () ->
      ignore (Oracle.enclosure Oracle.Log (Rat.of_int (-1)) ~prec:60))

let test_float64_against_native () =
  (* The float64 oracle and glibc should agree to <= 2 ulp (glibc's
     documented error bounds); count exact agreement as the common case. *)
  let ulp_diff a bb =
    Int64.abs (Int64.sub (Int64.bits_of_float a) (Int64.bits_of_float bb))
  in
  let st = Random.State.make [| 2023 |] in
  let checks =
    [ (Oracle.Exp, exp, fun () -> Random.State.float st 100.0 -. 50.0);
      (Oracle.Log, log, fun () -> Random.State.float st 1000.0 +. 1e-9);
      (Oracle.Log2, Float.log2, fun () -> Random.State.float st 1000.0 +. 1e-9);
      (Oracle.Log10, log10, fun () -> Random.State.float st 1000.0 +. 1e-9) ]
  in
  List.iter
    (fun (f, native, gen) ->
      for _ = 1 to 60 do
        let x = gen () in
        let o = Oracle.float64 f x and nv = native x in
        Alcotest.(check bool)
          (Printf.sprintf "%s %h: %h vs %h" (Oracle.name f) x o nv)
          true
          (Int64.compare (ulp_diff o nv) 2L <= 0)
      done)
    checks

let test_rounder_consistency () =
  (* A memoizing rounder must agree with fresh correctly_round calls for
     every format and mode. *)
  let x = Rat.of_ints 355 113 in
  let r = Oracle.make_rounder Oracle.Log2 x in
  List.iter
    (fun fmt ->
      List.iter
        (fun mode ->
          Alcotest.(check int64)
            (Softfp.mode_to_string mode)
            (Oracle.correctly_round Oracle.Log2 x ~fmt ~mode)
            (Oracle.round_with r ~fmt ~mode))
        (Softfp.RTO :: Softfp.all_standard_modes))
    [ Softfp.binary16; Softfp.bfloat16; Softfp.binary32; Softfp.fp34 ];
  Alcotest.check_raises "domain" (Invalid_argument "Oracle.make_rounder: domain")
    (fun () -> ignore (Oracle.make_rounder Oracle.Log (Rat.of_int (-3))))

let test_name_round_trip () =
  List.iter
    (fun f ->
      Alcotest.(check bool) (Oracle.name f) true
        (Oracle.of_name (Oracle.name f) = Some f))
    Oracle.all;
  Alcotest.(check bool) "ln alias" true (Oracle.of_name "ln" = Some Oracle.Log);
  Alcotest.(check bool) "unknown" true (Oracle.of_name "sin" = None)

(* Ziv loop correctness property: the rounded result of correctly_round
   decodes to a value within one ulp of the enclosure. *)
let prop_correctly_round_brackets =
  let gen =
    QCheck2.Gen.(
      let* fidx = int_bound 5 in
      let* n = int_range 1 40_000 in
      let* d = int_range 1 40_000 in
      let* neg = bool in
      let f = List.nth Oracle.all fidx in
      let q = Rat.of_ints (if neg then -n else n) d in
      (* keep the exponentials away from deep overflow/underflow so the
         direct enclosure (rather than the range shortcut) is exercised,
         and the logarithms positive *)
      let q =
        if not (Funcspec.is_exp_family f) then Rat.abs q
        else if Rat.compare (Rat.abs q) (Rat.of_int 30) > 0 then
          Rat.div q (Rat.of_int 40_000)
        else q
      in
      return (f, q))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:120 ~name:"correctly_round brackets enclosure"
       gen
       (fun (f, q) ->
         QCheck2.assume (Rat.sign q <> 0 || Oracle.domain_ok f q);
         if not (Oracle.domain_ok f q) then true
         else begin
           let b = Oracle.correctly_round f q ~fmt:fmt16 ~mode:Softfp.RNE in
           if not (Softfp.is_finite fmt16 b) then true
           else begin
             (* The result must be within one ulp of the enclosure,
                expressed format-side: the enclosure intersects the open
                interval (pred b, succ b).  Non-finite neighbours satisfy
                their side vacuously. *)
             let iv = Oracle.enclosure f q ~prec:96 in
             let lo, hi = Ival.to_rats iv in
             let above_ok =
               let s = Softfp.succ fmt16 b in
               (not (Softfp.is_finite fmt16 s))
               || Rat.compare lo (Softfp.to_rat fmt16 s) < 0
             in
             let below_ok =
               let p = Softfp.pred fmt16 b in
               (not (Softfp.is_finite fmt16 p))
               || Rat.compare (Softfp.to_rat fmt16 p) hi < 0
             in
             above_ok && below_ok
           end
         end))

let suite =
  [
    ("exact values", `Quick, test_exact_values);
    ("constants ln2/ln10", `Quick, test_constants);
    ("enclosures bracket glibc", `Quick, test_enclosure_brackets_native);
    ("enclosure width scales", `Quick, test_enclosure_widths_shrink);
    ("all rounding modes", `Quick, test_correctly_round_all_modes);
    ("exact correctly rounded", `Quick, test_correctly_round_exact);
    ("overflow/underflow shortcuts", `Quick, test_overflow_underflow_shortcuts);
    ("domain handling", `Quick, test_domain);
    ("float64 vs glibc", `Slow, test_float64_against_native);
    ("rounder consistency", `Quick, test_rounder_consistency);
    ("names", `Quick, test_name_round_trip);
    prop_correctly_round_brackets;
  ]
