(* Tests for the deterministic domain-pool fan-out, and the end-to-end
   determinism contract of the parallel pipeline: everything the
   generator produces must be bit-identical at -j 1 and -j 4. *)

let with_jobs j f =
  let saved = Parallel.jobs () in
  Parallel.set_jobs j;
  Fun.protect ~finally:(fun () -> Parallel.set_jobs saved) f

(* ---------- combinator unit tests ---------- *)

let test_map_empty_and_tiny () =
  with_jobs 4 (fun () ->
      Alcotest.(check (array int)) "empty" [||] (Parallel.map_array succ [||]);
      Alcotest.(check (array int)) "singleton" [| 1 |] (Parallel.map_array succ [| 0 |]);
      (* fewer items than jobs * chunk factor *)
      Alcotest.(check (array int)) "n < chunks" [| 1; 2; 3 |]
        (Parallel.map_array succ [| 0; 1; 2 |]))

let test_map_matches_sequential () =
  let a = Array.init 10_000 (fun i -> i) in
  let expect = Array.map (fun x -> (x * x) + 1) a in
  List.iter
    (fun j ->
      with_jobs j (fun () ->
          Alcotest.(check (array int))
            (Printf.sprintf "squares at -j %d" j)
            expect
            (Parallel.map_array (fun x -> (x * x) + 1) a)))
    [ 1; 2; 4; 7 ]

let test_init_matches_sequential () =
  let expect = Array.init 4999 (fun i -> 3 * i) in
  with_jobs 4 (fun () ->
      Alcotest.(check (array int)) "init" expect (Parallel.init 4999 (fun i -> 3 * i)))

let test_iter_chunks_covers () =
  with_jobs 4 (fun () ->
      let n = 7777 in
      let seen = Array.make n 0 in
      Parallel.iter_chunks n (fun lo hi ->
          for i = lo to hi - 1 do
            seen.(i) <- seen.(i) + 1
          done);
      Alcotest.(check bool) "each index exactly once" true
        (Array.for_all (( = ) 1) seen);
      Parallel.iter_chunks 0 (fun _ _ -> Alcotest.fail "chunk on empty range"))

exception Boom of int

let test_exception_propagation () =
  with_jobs 4 (fun () ->
      let a = Array.init 10_000 (fun i -> i) in
      (* Both ends fail; the lowest-numbered chunk's exception must win,
         deterministically, after the whole batch has drained. *)
      (match
         Parallel.map_array
           (fun x -> if x = 3 || x = 9_999 then raise (Boom x) else x)
           a
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x -> Alcotest.(check int) "lowest chunk wins" 3 x);
      (* The pool must survive a failed batch. *)
      Alcotest.(check (array int)) "pool alive after exception"
        (Array.map succ a)
        (Parallel.map_array succ a))

let test_pool_reuse () =
  with_jobs 4 (fun () ->
      let a = Array.init 2000 (fun i -> i) in
      for round = 1 to 25 do
        let got = Parallel.map_array (fun x -> x + round) a in
        Alcotest.(check int)
          (Printf.sprintf "round %d" round)
          (1999 + round)
          got.(1999)
      done);
  (* Resizing tears the pool down and rebuilds it lazily. *)
  List.iter
    (fun j ->
      with_jobs j (fun () ->
          Alcotest.(check (array int))
            (Printf.sprintf "resize to %d" j)
            [| 0; 2; 4 |]
            (Parallel.map_array (fun x -> 2 * x) [| 0; 1; 2 |])))
    [ 2; 4; 2 ]

let test_sequential_path () =
  (* -j 1 must run everything on the calling domain: no worker is
     spawned, f observes the driver's domain id. *)
  with_jobs 1 (fun () ->
      let self = (Domain.self () :> int) in
      let a = Array.init 5000 (fun i -> i) in
      let domains =
        Parallel.map_array (fun _ -> (Domain.self () :> int)) a
      in
      Alcotest.(check bool) "driver domain only" true
        (Array.for_all (( = ) self) domains);
      Parallel.iter_chunks 100 (fun lo hi ->
          Alcotest.(check (pair int int)) "single chunk" (0, 100) (lo, hi)))

(* ---------- RLIBM_JOBS parsing ---------- *)

let test_jobs_env_fallback () =
  let saved = Sys.getenv_opt "RLIBM_JOBS" in
  let restore () =
    (* putenv cannot unset; "" is documented as equivalent to unset. *)
    Unix.putenv "RLIBM_JOBS" (Option.value saved ~default:"")
  in
  Fun.protect ~finally:restore (fun () ->
      let cores = Domain.recommended_domain_count () in
      Unix.putenv "RLIBM_JOBS" "3";
      Alcotest.(check int) "valid value wins" 3 (Parallel.default_jobs ());
      Unix.putenv "RLIBM_JOBS" " 2 ";
      Alcotest.(check int) "whitespace trimmed" 2 (Parallel.default_jobs ());
      Unix.putenv "RLIBM_JOBS" "";
      Alcotest.(check int) "empty = unset" cores (Parallel.default_jobs ());
      (* Malformed values must fall back to the core count (with a
         warning on stderr), never crash and never yield 0 jobs. *)
      List.iter
        (fun bad ->
          Unix.putenv "RLIBM_JOBS" bad;
          Alcotest.(check int)
            (Printf.sprintf "%S falls back" bad)
            cores (Parallel.default_jobs ()))
        [ "banana"; "0"; "-4"; "3.5"; "  " ])

(* ---------- end-to-end determinism: -j 1 vs -j 4 ---------- *)

let tiny_cfg =
  {
    Rlibm.Config.default_mini with
    Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:7;
    table_bits = 3;
    max_specials = 40;
    max_rounds = 20;
  }

(* Everything observable about a generated function, in canonical order
   and exact bit patterns. *)
let fingerprint (g : Rlibm.Generate.generated) =
  let coeffs =
    Array.to_list g.Rlibm.Generate.pieces
    |> List.concat_map (fun (p : Polyeval.compiled) ->
           Array.to_list (Array.map Int64.bits_of_float p.Polyeval.data))
  in
  let specials =
    Hashtbl.fold
      (fun x v acc -> (x, Int64.bits_of_float v) :: acc)
      g.Rlibm.Generate.specials []
    |> List.sort compare
  in
  let oracle =
    Hashtbl.fold (fun x y acc -> (x, y) :: acc) g.Rlibm.Generate.oracle []
    |> List.sort compare
  in
  ( coeffs,
    Array.to_list g.Rlibm.Generate.degrees,
    specials,
    oracle )

let generate_at ~jobs func scheme =
  with_jobs jobs (fun () ->
      (* Re-pay the oracle construction so the fan-out actually runs. *)
      Rlibm.Constraints.clear_memory_cache ();
      match Genlibm.generate ~cfg:tiny_cfg ~scheme func with
      | Error msg -> Alcotest.failf "generation failed: %s" (Diag.Error.to_string msg)
      | Ok g ->
          let inputs =
            Genlibm.inputs_exhaustive tiny_cfg.Rlibm.Config.tin
          in
          let rep = Genlibm.verify g ~inputs in
          (fingerprint g, rep))

let check_determinism func scheme () =
  (* Keep the disk cache out of the picture: a warm file would let the
     second run skip the parallel oracle computation entirely.  The
     scoped override (not [Unix.putenv]) keeps the disabling local to
     this test and safe under concurrent domains. *)
  let (coeffs1, degrees1, specials1, oracle1), rep1 =
    Cache.with_persistence false (fun () -> generate_at ~jobs:1 func scheme)
  in
  let (coeffs4, degrees4, specials4, oracle4), rep4 =
    Cache.with_persistence false (fun () -> generate_at ~jobs:4 func scheme)
  in
  Alcotest.(check (list int64)) "coefficient bits" coeffs1 coeffs4;
  Alcotest.(check (list int)) "degrees" degrees1 degrees4;
  Alcotest.(check (list (pair int64 int64))) "special inputs" specials1 specials4;
  Alcotest.(check (list (pair int64 int64))) "oracle table" oracle1 oracle4;
  Alcotest.(check int) "verify checked" rep1.Genlibm.checked rep4.Genlibm.checked;
  Alcotest.(check int) "verify wrong34" rep1.Genlibm.wrong34 rep4.Genlibm.wrong34;
  Alcotest.(check int) "verify narrow checks" rep1.Genlibm.narrow_checks
    rep4.Genlibm.narrow_checks;
  Alcotest.(check int) "verify wrong narrow" rep1.Genlibm.wrong_narrow
    rep4.Genlibm.wrong_narrow

let suite =
  [
    ("map: empty / tiny", `Quick, test_map_empty_and_tiny);
    ("map matches sequential", `Quick, test_map_matches_sequential);
    ("init matches sequential", `Quick, test_init_matches_sequential);
    ("iter_chunks covers once", `Quick, test_iter_chunks_covers);
    ("exception propagation", `Quick, test_exception_propagation);
    ("pool reuse and resize", `Quick, test_pool_reuse);
    ("-j 1 sequential path", `Quick, test_sequential_path);
    ("RLIBM_JOBS parsing and fallback", `Quick, test_jobs_env_fallback);
    ("determinism log2/estrin -j1 vs -j4", `Slow, check_determinism Oracle.Log2 Polyeval.Estrin);
    ("determinism exp2/estrin-fma -j1 vs -j4", `Slow, check_determinism Oracle.Exp2 Polyeval.EstrinFma);
  ]
