(* The servable snapshot layer: build / persist / load round-trips, the
   warm-load store footprint (exactly one snapshot entry, no oracle or
   polynomial stage activity), and the batched evaluator's determinism
   contract (bit-identical to scalar eval_bits at every job count). *)

let tiny_cfg =
  {
    Rlibm.Config.default_mini with
    Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:7;
    table_bits = 3;
    max_specials = 40;
    max_rounds = 20;
  }

let tiny = tiny_cfg.Rlibm.Config.tin

let specs =
  [
    (Oracle.Exp2, Polyeval.EstrinFma, tiny_cfg);
    (Oracle.Log2, Polyeval.Horner, tiny_cfg);
  ]

let fresh_cache_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rlibm-serve-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* Point the store at a fresh directory for the scope of [f], restoring
   the previous directory afterwards. *)
let with_cache_dir f =
  let prev = Cache.dir () in
  let dir = fresh_cache_dir () in
  Cache.set_dir dir;
  Fun.protect ~finally:(fun () -> Cache.set_dir prev) (fun () -> f dir)

let with_jobs j f =
  let prev = Parallel.jobs () in
  Parallel.set_jobs j;
  Fun.protect ~finally:(fun () -> Parallel.set_jobs prev) f

let build_ok specs =
  match Serve.build specs with
  | Ok t -> t
  | Error err ->
      Alcotest.failf "snapshot build failed: %s" (Diag.Error.to_string err)

let bits_of = Array.map Int64.bits_of_float

let test_cold_warm_roundtrip () =
  with_cache_dir (fun _dir ->
      let cold = build_ok specs in
      Alcotest.(check int) "entries" 2 (List.length (Serve.entries cold));
      let inputs = Genlibm.inputs_exhaustive tiny in
      let out_cold = Serve.eval_batch cold Oracle.Exp2 inputs in
      (* Second build: must load from the store, touching exactly one
         entry of exactly one kind — no oracle, interval, constraint or
         polynomial stage activity of any sort. *)
      Cache.reset_stats ();
      let warm = build_ok specs in
      (match Cache.stats_by_kind () with
      | [ ("snapshot", s) ] ->
          Alcotest.(check int) "snapshot hits" 1 s.Cache.hits;
          Alcotest.(check int) "snapshot misses" 0 s.Cache.misses
      | kinds ->
          Alcotest.failf "warm load touched kinds [%s]"
            (String.concat "; " (List.map fst kinds)));
      let out_warm = Serve.eval_batch warm Oracle.Exp2 inputs in
      Alcotest.(check bool) "warm results bit-identical" true
        (bits_of out_cold = bits_of out_warm);
      let out_log = Serve.eval_batch warm Oracle.Log2 inputs in
      Alcotest.(check int) "log batch length" (Array.length inputs)
        (Array.length out_log))

let test_batch_matches_scalar_at_any_j () =
  with_cache_dir (fun _dir ->
      let snap = build_ok specs in
      let inputs = Genlibm.inputs_exhaustive tiny in
      List.iter
        (fun func ->
          let e =
            match Serve.find snap func with
            | Some e -> e
            | None -> Alcotest.failf "%s missing" (Oracle.name func)
          in
          let scalar =
            Array.map (fun x -> Genlibm.eval_bits e.Serve.e_impl x) inputs
          in
          let b1 =
            with_jobs 1 (fun () -> Serve.eval_batch snap func inputs)
          in
          let b4 =
            with_jobs 4 (fun () -> Serve.eval_batch snap func inputs)
          in
          Alcotest.(check bool)
            (Oracle.name func ^ " -j1 = scalar")
            true
            (bits_of b1 = bits_of scalar);
          Alcotest.(check bool)
            (Oracle.name func ^ " -j4 = -j1")
            true
            (bits_of b4 = bits_of b1))
        [ Oracle.Exp2; Oracle.Log2 ])

let test_unknown_func_rejected () =
  with_cache_dir (fun _dir ->
      let snap = build_ok [ (Oracle.Exp2, Polyeval.Horner, tiny_cfg) ] in
      Alcotest.check_raises "not in snapshot"
        (Invalid_argument "Serve.eval_batch: log10 is not in this snapshot")
        (fun () ->
          ignore (Serve.eval_batch snap Oracle.Log10 [| 0L |] : float array)))

(* Lookups are per-function, so a spec list naming one function twice
   must be rejected up front — before the fix the second entry was
   silently shadowed by the first and a caller asking for (exp2, horner)
   could be served (exp2, estrin-fma). *)
let test_duplicate_func_rejected () =
  with_cache_dir (fun _dir ->
      let dup =
        [
          (Oracle.Exp2, Polyeval.EstrinFma, tiny_cfg);
          (Oracle.Log2, Polyeval.Horner, tiny_cfg);
          (Oracle.Exp2, Polyeval.Horner, tiny_cfg);
        ]
      in
      Cache.reset_stats ();
      (match Serve.build dup with
      | Ok _ -> Alcotest.fail "duplicate spec accepted"
      | Error (Diag.Error.Bad_config { what } as err) ->
          let msg = Diag.Error.to_string err in
          let contains needle hay =
            let nl = String.length needle and hl = String.length hay in
            let rec at i =
              i + nl <= hl && (String.sub hay i nl = needle || at (i + 1))
            in
            at 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "error names the function (%s)" msg)
            true
            (contains "exp2" what && contains "duplicate" what
            && contains "exp2" msg && contains "duplicate" msg)
      | Error err ->
          Alcotest.failf "expected Bad_config, got %s"
            (Diag.Error.to_string err));
      (* The rejection must happen before any resolution: no stage ran,
         nothing was persisted. *)
      Alcotest.(check (list string)) "no store traffic" []
        (List.map fst (Cache.stats_by_kind ())))

let test_key_pins_knobs () =
  let k = Serve.snapshot_key specs in
  Alcotest.(check string) "key is deterministic" k (Serve.snapshot_key specs);
  let other_scheme =
    [
      (Oracle.Exp2, Polyeval.Horner, tiny_cfg);
      (Oracle.Log2, Polyeval.Horner, tiny_cfg);
    ]
  in
  Alcotest.(check bool) "scheme changes key" true
    (k <> Serve.snapshot_key other_scheme);
  let other_cfg =
    [
      (Oracle.Exp2, Polyeval.EstrinFma, { tiny_cfg with Rlibm.Config.pieces = 3 });
      (Oracle.Log2, Polyeval.Horner, tiny_cfg);
    ]
  in
  Alcotest.(check bool) "config changes key" true
    (k <> Serve.snapshot_key other_cfg);
  Alcotest.(check bool) "order changes key" true
    (k <> Serve.snapshot_key (List.rev specs))

let suite =
  [
    ("snapshot key pins every knob", `Quick, test_key_pins_knobs);
    ("duplicate function rejected", `Quick, test_duplicate_func_rejected);
    ("cold build / warm load round-trip", `Slow, test_cold_warm_roundtrip);
    ("batch = scalar at -j 1 and -j 4", `Slow, test_batch_matches_scalar_at_any_j);
    ("unknown function rejected", `Slow, test_unknown_func_rejected);
  ]
