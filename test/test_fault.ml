(* Fault-injection substrate and crash consistency: plan syntax,
   EINTR/short/torn write handling, bounded transient retry, stale-temp
   reaping, fsck semantics, warm's publish-failure reporting, and the
   kill-point sweep — abort a child generation at every mutating store
   site and assert the store stays loadable and a resumed run is
   bit-identical to an uninterrupted one. *)

let dir_counter = ref 0

let fresh_dir_name () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "rlibm-fault-test-%d-%d" (Unix.getpid ()) !dir_counter)

(* Run [f] against a fresh store directory, restoring the previous one
   afterwards (other suites share the process). *)
let in_fresh_dir f =
  let saved = Cache.dir () in
  let d = fresh_dir_name () in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  Cache.set_dir d;
  Fun.protect ~finally:(fun () -> Cache.set_dir saved) (fun () -> f d)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let plan_of spec =
  match Fault.parse spec with
  | Ok p -> p
  | Error msg -> Alcotest.failf "plan %S rejected: %s" spec msg

let tiny_cfg =
  {
    Rlibm.Config.default_mini with
    Rlibm.Config.tin = Softfp.make_fmt ~ebits:4 ~prec:7;
    table_bits = 3;
    max_specials = 40;
    max_rounds = 20;
  }

(* A silent sink so injected-failure warns do not spam the test log;
   returns the drained events for assertions. *)
let with_quiet_sink f =
  let sink, drain = Diag.memory_sink ~min_level:Diag.Debug () in
  let v = Diag.with_sinks [ sink ] f in
  (v, drain ())

(* ---------- plan syntax ---------- *)

let test_plan_syntax () =
  List.iter
    (fun spec ->
      let p = plan_of spec in
      Alcotest.(check string)
        (Printf.sprintf "round-trip %s" spec)
        spec (Fault.to_spec p))
    [
      "write@1+=enospc";
      "mut@7=abort";
      "write@2=torn:5";
      "any@3=eio,read@2=short:4,fsync@1=eintr";
      "rename@1=eagain";
      "unlink@2+=eio";
      "mkdir@1=enospc";
      "open@4=abort";
    ];
  (* whitespace-tolerant *)
  Alcotest.(check int) "spaces accepted" 2
    (List.length (plan_of "write@1=eio, read@2=short:4"));
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bogus plan %S accepted" bad)
    [
      "write@0=eio" (* sites are 1-based *);
      "write@1=ebadf" (* unknown action *);
      "bogus@1=eio" (* unknown selector *);
      "write@1" (* no action *);
      "write=eio" (* no site *);
      "write@1=short:0" (* short must make progress *);
      "write@1=short:x";
    ]

(* ---------- EINTR and short transfers are absorbed ---------- *)

let test_eintr_and_short_transfers () =
  in_fresh_dir (fun _d ->
      Cache.reset_stats ();
      let value = List.init 200 (fun i -> i * i) in
      let plan =
        plan_of "write@1=eintr,write@2=short:3,read@1=eintr,read@2=short:4"
      in
      let (), _ =
        with_quiet_sink (fun () ->
            Fault.with_plan plan (fun () ->
                (match Cache.store ~kind:"test" ~key:"eintr-short" value with
                | Ok () -> ()
                | Error e ->
                    Alcotest.failf "store under EINTR/short failed: %s"
                      (Diag.Error.to_string e));
                match
                  (Cache.load ~kind:"test" ~key:"eintr-short"
                    : (int list option, Diag.Error.t) result)
                with
                | Ok (Some v) ->
                    Alcotest.(check bool) "value round-trips" true (v = value)
                | Ok None -> Alcotest.fail "entry missing after store"
                | Error e ->
                    Alcotest.failf "load under EINTR/short failed: %s"
                      (Diag.Error.to_string e)))
      in
      (* EINTR restarts and short-transfer continuations are not
         retries: the loops absorb them silently. *)
      Alcotest.(check int) "no retry counted" 0 (Cache.stats ()).Cache.retried)

(* ---------- bounded deterministic retry ---------- *)

let test_transient_retry_recovers () =
  in_fresh_dir (fun _d ->
      Cache.reset_stats ();
      let (), evs =
        with_quiet_sink (fun () ->
            Fault.with_plan (plan_of "write@1=eio") (fun () ->
                match Cache.store ~kind:"test" ~key:"one-eio" [ 1; 2; 3 ] with
                | Ok () -> ()
                | Error e ->
                    Alcotest.failf "single transient EIO not absorbed: %s"
                      (Diag.Error.to_string e)))
      in
      Alcotest.(check int) "one retry counted" 1 (Cache.stats ()).Cache.retried;
      (match List.assoc_opt "test" (Cache.stats_by_kind ()) with
      | Some s -> Alcotest.(check int) "per-kind retry" 1 s.Cache.retried
      | None -> Alcotest.fail "no per-kind stats");
      Alcotest.(check bool) "cache.retry event emitted" true
        (List.exists (fun ev -> ev.Diag.ev_name = "cache.retry") evs);
      match
        (Cache.load ~kind:"test" ~key:"one-eio"
          : (int list option, Diag.Error.t) result)
      with
      | Ok (Some v) -> Alcotest.(check bool) "published" true (v = [ 1; 2; 3 ])
      | _ -> Alcotest.fail "entry not readable after retried publish")

let test_sticky_enospc_surfaces_store_io () =
  in_fresh_dir (fun d ->
      Cache.reset_stats ();
      let r, _ =
        with_quiet_sink (fun () ->
            Fault.with_plan (plan_of "write@1+=enospc") (fun () ->
                Cache.store ~kind:"test" ~key:"nospace" [ 9; 9; 9 ]))
      in
      (match r with
      | Error (Diag.Error.Store_io { detail; _ }) ->
          Alcotest.(check bool) "detail names the errno" true
            (contains ~sub:"space" (String.lowercase_ascii detail))
      | Error e ->
          Alcotest.failf "expected Store_io, got %s" (Diag.Error.to_string e)
      | Ok () -> Alcotest.fail "sticky ENOSPC store succeeded");
      (* 3 attempts = 2 retries, deterministic *)
      Alcotest.(check int) "retry budget spent" 2
        (Cache.stats ()).Cache.retried;
      (* nothing published, no temp litter (the failed attempts clean
         their own temps) *)
      Alcotest.(check (list string)) "no files left" []
        (Array.to_list (Sys.readdir d));
      match
        (Cache.load ~kind:"test" ~key:"nospace"
          : (int list option, Diag.Error.t) result)
      with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "phantom entry after failed store"
      | Error e -> Alcotest.failf "load failed: %s" (Diag.Error.to_string e))

(* A torn write (crash mid-write model) must never publish: the entry
   either does not exist or validates — never garbage. *)
let test_torn_write_never_publishes () =
  in_fresh_dir (fun d ->
      let r, _ =
        with_quiet_sink (fun () ->
            Fault.with_plan (plan_of "write@1+=torn:5") (fun () ->
                Cache.store ~kind:"test" ~key:"torn" (Array.make 64 3.14)))
      in
      (match r with
      | Error (Diag.Error.Store_io _) -> ()
      | Error e ->
          Alcotest.failf "expected Store_io, got %s" (Diag.Error.to_string e)
      | Ok () -> Alcotest.fail "torn store reported success");
      Alcotest.(check (list string)) "no published or temp file" []
        (Array.to_list (Sys.readdir d)))

(* ---------- mutating-site census ---------- *)

let test_mut_census_is_stable () =
  let census () =
    in_fresh_dir (fun _d ->
        Fault.with_plan [] (fun () ->
            (match Cache.store ~kind:"test" ~key:"census" [ 42 ] with
            | Ok () -> ()
            | Error e ->
                Alcotest.failf "store failed: %s" (Diag.Error.to_string e));
            Fault.mut_sites ()))
  in
  let a = census () in
  Alcotest.(check bool) "publish exposes kill-points" true (a >= 4);
  Alcotest.(check int) "census is deterministic" a (census ());
  Alcotest.(check int) "no plan, no census" 0 (Fault.mut_sites ())

(* ---------- stale temp reaping ---------- *)

let test_stale_temps_reaped_on_first_touch () =
  in_fresh_dir (fun d ->
      let dead = Filename.concat d "key-a.tmp-999999-0" in
      let own =
        Filename.concat d
          (Printf.sprintf "key-b.tmp-%d-7" (Unix.getpid ()))
      in
      let aged = Filename.concat d "key-c.tmp-x-1" in
      List.iter (fun p -> write_file p "leftover") [ dead; own; aged ];
      (* unparseable pid: age decides; make it ancient *)
      Unix.utimes aged 1.0 1.0;
      let (), evs =
        with_quiet_sink (fun () ->
            match Cache.store ~kind:"test" ~key:"trigger" [ 1 ] with
            | Ok () -> ()
            | Error e ->
                Alcotest.failf "store failed: %s" (Diag.Error.to_string e))
      in
      Alcotest.(check bool) "dead writer's temp reaped" false
        (Sys.file_exists dead);
      Alcotest.(check bool) "ancient temp reaped" false (Sys.file_exists aged);
      Alcotest.(check bool) "own live temp kept" true (Sys.file_exists own);
      Alcotest.(check int) "one reap event per file" 2
        (List.length
           (List.filter (fun ev -> ev.Diag.ev_name = "cache.reap-temp") evs)))

(* ---------- fsck ---------- *)

let fsck_ok ?repair ?max_age () =
  match Cache.fsck ?repair ?max_age () with
  | Ok r -> r
  | Error e -> Alcotest.failf "fsck failed: %s" (Diag.Error.to_string e)

let test_fsck_validates_and_quarantines () =
  in_fresh_dir (fun d ->
      (match Cache.store ~kind:"test" ~key:"good-entry" [ 1; 2; 3 ] with
      | Ok () -> ()
      | Error e -> Alcotest.failf "store failed: %s" (Diag.Error.to_string e));
      let good = Cache.path_of_key "good-entry" in
      (* a bit-flipped copy and a valid entry parked under a wrong name:
         both must be flagged against the embedded key *)
      let flipped = Filename.concat d "bad-entry" in
      let b = Bytes.of_string (read_file good) in
      Bytes.set b
        (Bytes.length b - 1)
        (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 1));
      write_file flipped (Bytes.to_string b);
      let misnamed = Filename.concat d "wrong-name" in
      write_file misnamed (read_file good);
      let r, _ = with_quiet_sink (fun () -> fsck_ok ()) in
      Alcotest.(check int) "three entries scanned" 3 r.Cache.fk_scanned;
      Alcotest.(check int) "one valid" 1 r.Cache.fk_valid;
      Alcotest.(check bool) "flipped and misnamed quarantined" true
        (List.map fst r.Cache.fk_quarantined = [ flipped; misnamed ]);
      Alcotest.(check bool) "reasons are specific" true
        (List.exists
           (fun (_, reason) -> contains ~sub:"checksum" reason)
           r.Cache.fk_quarantined
        && List.exists
             (fun (_, reason) -> contains ~sub:"does not match" reason)
             r.Cache.fk_quarantined);
      Alcotest.(check bool) "not clean" false (Cache.fsck_clean r);
      Alcotest.(check bool) "good entry untouched" true (Sys.file_exists good);
      Alcotest.(check bool) "bad files moved aside" true
        ((not (Sys.file_exists flipped)) && not (Sys.file_exists misnamed));
      (* quarantining already happened, so a re-scan is clean *)
      let r2, _ = with_quiet_sink (fun () -> fsck_ok ()) in
      Alcotest.(check bool) "second scan clean" true (Cache.fsck_clean r2);
      Alcotest.(check int) "good entry still valid" 1 r2.Cache.fk_valid)

let test_fsck_repair_reaps () =
  in_fresh_dir (fun d ->
      let stale = Filename.concat d "k.tmp-999999-0" in
      let corpse = Filename.concat d "k.corrupt-999999-0" in
      write_file stale "x";
      write_file corpse "y";
      Unix.utimes corpse 1.0 1.0;
      (* scan without repair: reported, kept *)
      let r, _ = with_quiet_sink (fun () -> fsck_ok ()) in
      Alcotest.(check (list string)) "stale temp reported" [ stale ]
        r.Cache.fk_stale_temps;
      Alcotest.(check (list string)) "aged quarantine reported" [ corpse ]
        r.Cache.fk_aged_corrupt;
      Alcotest.(check int) "nothing reaped without --repair" 0
        r.Cache.fk_reaped;
      Alcotest.(check bool) "files kept" true
        (Sys.file_exists stale && Sys.file_exists corpse);
      (* fresh .corrupt- files survive repair (post-mortem window) *)
      let young = Filename.concat d "k2.corrupt-999999-1" in
      write_file young "z";
      let r, _ = with_quiet_sink (fun () -> fsck_ok ~repair:true ()) in
      Alcotest.(check int) "stale temp + aged corpse reaped" 2
        r.Cache.fk_reaped;
      Alcotest.(check bool) "reaped from disk" true
        ((not (Sys.file_exists stale)) && not (Sys.file_exists corpse));
      Alcotest.(check bool) "young quarantine kept" true
        (Sys.file_exists young))

(* ---------- warm reports publish failures ---------- *)

let all_store_io errs =
  List.for_all
    (fun (_, e) ->
      match e with Diag.Error.Store_io _ -> true | _ -> false)
    errs

let test_warm_reports_enospc () =
  in_fresh_dir (fun _d ->
      Rlibm.Constraints.clear_memory_cache ();
      let r, _ =
        with_quiet_sink (fun () ->
            Fault.with_plan (plan_of "write@1+=enospc") (fun () ->
                Pipeline.warm ~through:Pipeline.Oracle
                  [ (Oracle.Exp2, tiny_cfg) ]))
      in
      match r with
      | Error e -> Alcotest.failf "warm errored: %s" (Diag.Error.to_string e)
      | Ok report ->
          Alcotest.(check int) "warm completes in memory" 1
            (List.length report.Pipeline.wm_entries);
          Alcotest.(check bool) "publish failure reported" true
            (report.Pipeline.wm_store_failed <> []);
          Alcotest.(check bool) "all failures are Store_io" true
            (all_store_io report.Pipeline.wm_store_failed))

let test_warm_reports_shard_publish_failures () =
  in_fresh_dir (fun _d ->
      Rlibm.Constraints.clear_memory_cache ();
      let r, _ =
        with_quiet_sink (fun () ->
            Fault.with_plan (plan_of "write@1+=enospc") (fun () ->
                Pipeline.warm ~through:Pipeline.Oracle ~shards:2
                  [ (Oracle.Exp2, tiny_cfg) ]))
      in
      match r with
      | Error e -> Alcotest.failf "warm errored: %s" (Diag.Error.to_string e)
      | Ok report ->
          (* two shard publishes plus the whole-table republish *)
          Alcotest.(check bool) "every failed publish reported" true
            (List.length report.Pipeline.wm_store_failed >= 3);
          Alcotest.(check bool) "all failures are Store_io" true
            (all_store_io report.Pipeline.wm_store_failed))

(* Root ignores permission bits, so a chmod-based read-only directory is
   not reliable in CI containers; a path component that is a regular
   file (ENOTDIR) fails for every uid. *)
let test_warm_reports_unwritable_store () =
  let saved = Cache.dir () in
  let blocker = fresh_dir_name () in
  write_file blocker "not a directory";
  Cache.set_dir (Filename.concat blocker "store");
  Fun.protect
    ~finally:(fun () -> Cache.set_dir saved)
    (fun () ->
      Rlibm.Constraints.clear_memory_cache ();
      let r, _ =
        with_quiet_sink (fun () ->
            Pipeline.warm ~through:Pipeline.Oracle [ (Oracle.Exp2, tiny_cfg) ])
      in
      match r with
      | Error e -> Alcotest.failf "warm errored: %s" (Diag.Error.to_string e)
      | Ok report ->
          Alcotest.(check bool) "unwritable store reported" true
            (report.Pipeline.wm_store_failed <> []);
          Alcotest.(check bool) "all failures are Store_io" true
            (all_store_io report.Pipeline.wm_store_failed))

(* ---------- kill-point sweep ---------- *)

(* [Unix.fork] is forbidden once any domain has ever been spawned in
   this process, so children are launched through [Sys.command] against
   the built CLI (the test_pipeline pattern). *)
let rlibm_gen_exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "rlibm_gen.exe")

(* One warm child against store [dir]; logs land next to (not inside)
   the store so they never pollute store fingerprints or fsck scans. *)
let run_child ?fault ~jobs dir =
  let log = dir ^ ".log" in
  let cmd =
    Printf.sprintf
      "%s%s warm --func exp2 --through oracle --shards 2 --ebits 4 --prec 7 \
       --table-bits 3 -j %d --cache-dir %s > %s 2>&1"
      (match fault with
      | Some plan -> Printf.sprintf "RLIBM_FAULT_PLAN=%s " (Filename.quote plan)
      | None -> "")
      (Filename.quote rlibm_gen_exe) jobs (Filename.quote dir)
      (Filename.quote log)
  in
  Sys.command cmd

let dump_child_log dir =
  let log = dir ^ ".log" in
  if Sys.file_exists log then prerr_string (read_file log)

(* The store's observable content: every published entry's name and
   bytes, sorted.  Temps and quarantine files are crash debris, not
   content. *)
let store_fingerprint dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun name ->
         if contains ~sub:".tmp-" name || contains ~sub:".corrupt-" name then
           None
         else
           Some (name, Digest.to_hex (Digest.string (read_file (Filename.concat dir name)))))

let test_kill_point_sweep () =
  if not (Sys.file_exists rlibm_gen_exe) then
    Alcotest.failf "rlibm_gen binary not found at %s" rlibm_gen_exe;
  (* The uninterrupted control run. *)
  let control = fresh_dir_name () in
  (try Sys.mkdir control 0o755 with Sys_error _ -> ());
  let rc = run_child ~jobs:1 control in
  if rc <> 0 then begin
    dump_child_log control;
    Alcotest.failf "control run exited %d" rc
  end;
  let control_fp = store_fingerprint control in
  Alcotest.(check bool) "control run published artifacts" true
    (control_fp <> []);
  (* Abort at every mutating site until a site number past the end of
     the run (the child then exits 0 and the sweep is exhaustive). *)
  let rec sweep site aborted =
    if site > 64 then
      Alcotest.failf "sweep did not terminate after %d sites" (site - 1)
    else begin
      let d = fresh_dir_name () in
      (try Sys.mkdir d 0o755 with Sys_error _ -> ());
      let rc =
        run_child ~fault:(Printf.sprintf "mut@%d=abort" site) ~jobs:1 d
      in
      if rc = Fault.abort_exit_code then begin
        (* The interrupted store must be repairable with nothing
           quarantined: atomic publish means a kill can orphan temps
           but never expose a torn entry. *)
        let saved = Cache.dir () in
        Cache.set_dir d;
        let r, _ =
          Fun.protect
            ~finally:(fun () -> Cache.set_dir saved)
            (fun () -> with_quiet_sink (fun () -> fsck_ok ~repair:true ()))
        in
        Alcotest.(check (list (pair string string)))
          (Printf.sprintf "site %d: no torn published entry" site)
          [] r.Cache.fk_quarantined;
        (* Resume without faults, alternating job counts across sites. *)
        let jobs = if site mod 2 = 0 then 4 else 1 in
        let rc2 = run_child ~jobs d in
        if rc2 <> 0 then begin
          dump_child_log d;
          Alcotest.failf "site %d: resume at -j %d exited %d" site jobs rc2
        end;
        Alcotest.(check (list (pair string string)))
          (Printf.sprintf "site %d: resumed store = uninterrupted store" site)
          control_fp (store_fingerprint d);
        sweep (site + 1) (aborted + 1)
      end
      else if rc = 0 then begin
        (* Past the last mutating site: the fault never fired. *)
        Alcotest.(check bool)
          (Printf.sprintf "swept a real publish path (%d kill-points)" aborted)
          true (aborted >= 6);
        Alcotest.(check (list (pair string string)))
          "unfaulted sweep run matches control" control_fp
          (store_fingerprint d)
      end
      else begin
        dump_child_log d;
        Alcotest.failf "site %d: child exited %d (want %d or 0)" site rc
          Fault.abort_exit_code
      end
    end
  in
  sweep 1 0

let suite =
  [
    ("plan syntax round-trip and rejection", `Quick, test_plan_syntax);
    ("EINTR and short transfers absorbed", `Quick,
     test_eintr_and_short_transfers);
    ("single transient failure retried", `Quick, test_transient_retry_recovers);
    ("sticky ENOSPC surfaces Store_io after bounded retry", `Quick,
     test_sticky_enospc_surfaces_store_io);
    ("torn write never publishes", `Quick, test_torn_write_never_publishes);
    ("mutating-site census stable", `Quick, test_mut_census_is_stable);
    ("stale temps reaped on first store touch", `Quick,
     test_stale_temps_reaped_on_first_touch);
    ("fsck validates entries against embedded keys", `Quick,
     test_fsck_validates_and_quarantines);
    ("fsck --repair reaps temps and aged quarantine", `Quick,
     test_fsck_repair_reaps);
    ("warm reports ENOSPC publish failures", `Slow, test_warm_reports_enospc);
    ("warm reports shard publish failures", `Slow,
     test_warm_reports_shard_publish_failures);
    ("warm reports unwritable store", `Slow, test_warm_reports_unwritable_store);
    ("kill-point sweep: store survives abort at every publish site", `Slow,
     test_kill_point_sweep);
  ]
