(* Tests for the parameterized software floating point formats, including
   the round-to-odd mode and the double-rounding property that RLibm-All
   relies on. *)

open Softfp

let b16 = binary16

let test_format_parameters () =
  Alcotest.(check int) "binary32 width" 32 (width binary32);
  Alcotest.(check int) "fp34 width" 34 (width fp34);
  Alcotest.(check int) "fp34 prec" 26 fp34.prec;
  Alcotest.(check int) "binary32 emax" 127 (emax binary32);
  Alcotest.(check int) "binary32 emin" (-126) (emin binary32);
  Alcotest.(check int) "b16 emax" 15 (emax b16);
  Alcotest.(check int) "bfloat16 width" 16 (width bfloat16);
  Alcotest.(check int) "widen" 26 (with_extra_prec binary32 2).prec;
  Alcotest.check_raises "width > 63"
    (Invalid_argument "Softfp.make_fmt: width > 63") (fun () ->
      ignore (make_fmt ~ebits:11 ~prec:53))

let test_classify () =
  Alcotest.(check bool) "zero" true (classify b16 (zero_bits b16) = Zero);
  Alcotest.(check bool) "neg zero" true
    (classify b16 (neg_zero_bits b16) = Zero);
  Alcotest.(check bool) "inf" true (classify b16 (inf_bits b16 ~neg:false) = Inf);
  Alcotest.(check bool) "nan" true (classify b16 (nan_bits b16) = NaN);
  Alcotest.(check bool) "min sub" true
    (classify b16 (min_subnormal_bits b16 ~neg:false) = Subnormal);
  Alcotest.(check bool) "max finite" true
    (classify b16 (max_finite_bits b16 ~neg:false) = Normal)

let test_decode_known_binary16 () =
  (* Known binary16 patterns. *)
  let check name bits expect =
    Alcotest.(check (float 0.0)) name expect (to_float b16 (Int64.of_int bits))
  in
  check "one" 0x3C00 1.0;
  check "two" 0x4000 2.0;
  check "neg one" 0xBC00 (-1.0);
  check "1.5" 0x3E00 1.5;
  check "max" 0x7BFF 65504.0;
  check "min sub" 0x0001 (Float.ldexp 1.0 (-24));
  check "min normal" 0x0400 (Float.ldexp 1.0 (-14))

let test_encode_matches_native_binary32 () =
  (* The binary32 encoder must agree with the hardware float cast (RNE). *)
  let cases =
    [ 0.1; 1.0; -1.0; 3.14159; 1.0e38; -1.0e38; 1.0e-38; 1.0e-45;
      65504.1; Float.ldexp 1.0 (-126); Float.ldexp 1.0 (-149) ]
  in
  List.iter
    (fun x ->
      let native =
        Int64.logand (Int64.of_int32 (Int32.bits_of_float x)) 0xFFFFFFFFL
      in
      let soft = of_rat binary32 RNE (Rat.of_float x) in
      Alcotest.(check int64) (Printf.sprintf "%h" x) native soft)
    cases

let test_round_to_odd_semantics () =
  (* Exactly representable values stay put (even or odd pattern). *)
  let one = of_rat b16 RTO Rat.one in
  Alcotest.(check (float 0.0)) "exact 1" 1.0 (to_float b16 one);
  (* An inexact value must round to an adjacent value with odd pattern. *)
  let q = Rat.of_ints 1 3 in
  let b = of_rat b16 RTO q in
  Alcotest.(check bool) "odd pattern" true (frac_odd b16 b);
  let v = to_rat b16 b in
  let dist = Rat.abs (Rat.sub v q) in
  (* within one ulp of 1/3 (~2^-12 at this scale) *)
  Alcotest.(check bool) "adjacent" true
    (Rat.compare dist (Rat.mul_pow2 Rat.one (-11)) < 0)

let test_rounding_modes_quarter () =
  (* 1 + 1/4 ulp in binary16: prec 11, ulp of 1.0 is 2^-10. *)
  let x = Rat.add Rat.one (Rat.mul_pow2 Rat.one (-12)) in
  let as_f m = to_float b16 (of_rat b16 m x) in
  Alcotest.(check (float 0.0)) "RNE down" 1.0 (as_f RNE);
  Alcotest.(check (float 0.0)) "RNA down" 1.0 (as_f RNA);
  Alcotest.(check (float 0.0)) "RTZ down" 1.0 (as_f RTZ);
  Alcotest.(check (float 0.0)) "RTD down" 1.0 (as_f RTD);
  let up = 1.0 +. Float.ldexp 1.0 (-10) in
  Alcotest.(check (float 0.0)) "RTU up" up (as_f RTU);
  Alcotest.(check (float 0.0)) "RTO odd" up (as_f RTO);
  (* negative mirror *)
  let nx = Rat.neg x in
  let as_f m = to_float b16 (of_rat b16 m nx) in
  Alcotest.(check (float 0.0)) "neg RTU" (-1.0) (as_f RTU);
  Alcotest.(check (float 0.0)) "neg RTD" (-.up) (as_f RTD);
  Alcotest.(check (float 0.0)) "neg RTZ" (-1.0) (as_f RTZ)

let test_ties () =
  (* exactly halfway between 1 and 1 + ulp: 1 + 2^-11 *)
  let x = Rat.add Rat.one (Rat.mul_pow2 Rat.one (-11)) in
  let up = 1.0 +. Float.ldexp 1.0 (-10) in
  Alcotest.(check (float 0.0)) "RNE tie -> even" 1.0
    (to_float b16 (of_rat b16 RNE x));
  Alcotest.(check (float 0.0)) "RNA tie -> away" up
    (to_float b16 (of_rat b16 RNA x));
  (* halfway between 1 + ulp and 1 + 2ulp: rounds up to even under RNE *)
  let x2 = Rat.add Rat.one (Rat.mul_pow2 (Rat.of_int 3) (-11)) in
  Alcotest.(check (float 0.0)) "RNE tie -> even (up)" (1.0 +. Float.ldexp 1.0 (-9))
    (to_float b16 (of_rat b16 RNE x2))

let test_overflow_modes () =
  let huge = Rat.mul_pow2 Rat.one 100 in
  let check name mode expect_cls neg =
    let b = of_rat b16 mode (if neg then Rat.neg huge else huge) in
    Alcotest.(check bool) name true (classify b16 b = expect_cls)
  in
  check "RNE -> inf" RNE Inf false;
  check "RNA -> inf" RNA Inf false;
  check "RTZ -> max" RTZ Normal false;
  check "RTO -> max (odd)" RTO Normal false;
  check "RTU pos -> inf" RTU Inf false;
  check "RTU neg -> -max" RTU Normal true;
  check "RTD neg -> -inf" RTD Inf true;
  check "RTD pos -> max" RTD Normal false;
  (* RTO overflow result must be the odd-patterned max finite *)
  let b = of_rat b16 RTO huge in
  Alcotest.(check int64) "RTO max finite" (max_finite_bits b16 ~neg:false) b;
  Alcotest.(check bool) "max finite pattern odd" true (frac_odd b16 b)

let test_underflow_modes () =
  let tiny = Rat.mul_pow2 Rat.one (-80) in
  let ms = min_subnormal_bits b16 ~neg:false in
  Alcotest.(check int64) "RNE -> 0" (zero_bits b16) (of_rat b16 RNE tiny);
  Alcotest.(check int64) "RTZ -> 0" (zero_bits b16) (of_rat b16 RTZ tiny);
  Alcotest.(check int64) "RTU -> minsub" ms (of_rat b16 RTU tiny);
  Alcotest.(check int64) "RTO -> minsub (odd)" ms (of_rat b16 RTO tiny);
  Alcotest.(check int64) "neg RTD -> -minsub"
    (min_subnormal_bits b16 ~neg:true)
    (of_rat b16 RTD (Rat.neg tiny));
  Alcotest.(check int64) "neg RTU -> -0" (neg_zero_bits b16)
    (of_rat b16 RTU (Rat.neg tiny))

let test_succ_pred () =
  let one = of_rat b16 RNE Rat.one in
  let s = succ b16 one in
  Alcotest.(check (float 0.0)) "succ 1" (1.0 +. Float.ldexp 1.0 (-10))
    (to_float b16 s);
  Alcotest.(check int64) "pred succ = id" one (pred b16 s);
  (* crossing zero *)
  let pz = zero_bits b16 and nz = neg_zero_bits b16 in
  Alcotest.(check int64) "succ +0 = minsub" (min_subnormal_bits b16 ~neg:false)
    (succ b16 pz);
  Alcotest.(check int64) "succ -0 = +0" pz (succ b16 nz);
  Alcotest.(check int64) "pred +0 = -0" nz (pred b16 pz);
  Alcotest.(check int64) "pred -0 = -minsub" (min_subnormal_bits b16 ~neg:true)
    (pred b16 nz);
  (* into infinity *)
  Alcotest.(check bool) "succ max = inf" true
    (classify b16 (succ b16 (max_finite_bits b16 ~neg:false)) = Inf)

let test_iter_finite_count () =
  let small = make_fmt ~ebits:3 ~prec:3 in
  let n = ref 0 in
  iter_finite small (fun _ -> incr n);
  Alcotest.(check int) "count matches" (count_finite small) !n;
  Alcotest.(check int) "count formula" (2 * 7 * 4) !n

(* ---------- property tests ---------- *)

let arb_rat_small =
  QCheck2.Gen.(
    let* n = int_range (-2_000_000) 2_000_000 in
    let* d = int_range 1 2_000_000 in
    let* s = int_range (-20) 20 in
    return (Rat.mul_pow2 (Rat.of_ints n d) s))

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:400 ~name gen f)

let decode_ok fmt bits = is_finite fmt bits

let props =
  [
    prop "rounding is monotone (RNE, b16)"
      (QCheck2.Gen.pair arb_rat_small arb_rat_small) (fun (a, b) ->
        let a, b = if Rat.compare a b <= 0 then (a, b) else (b, a) in
        let fa = of_rat b16 RNE a and fb = of_rat b16 RNE b in
        (not (decode_ok b16 fa && decode_ok b16 fb))
        || ordinal b16 fa <= ordinal b16 fb);
    prop "RTD <= RNE <= RTU (b16)" arb_rat_small (fun a ->
        let d = of_rat b16 RTD a and n = of_rat b16 RNE a and u = of_rat b16 RTU a in
        (not (decode_ok b16 d && decode_ok b16 n && decode_ok b16 u))
        || (ordinal b16 d <= ordinal b16 n && ordinal b16 n <= ordinal b16 u));
    prop "idempotent re-rounding (all modes)" arb_rat_small (fun a ->
        List.for_all
          (fun m ->
            let b = of_rat b16 m a in
            (* zero results are excluded: Rat cannot carry the sign of
               zero, so -0 legitimately re-rounds to +0 *)
            (not (decode_ok b16 b))
            || classify b16 b = Zero
            || Int64.equal b (of_rat b16 m (to_rat b16 b)))
          (RTO :: all_standard_modes));
    prop "RTO inexact results are odd" arb_rat_small (fun a ->
        let b = of_rat b16 RTO a in
        (not (decode_ok b16 b))
        || Rat.equal (to_rat b16 b) a
        || frac_odd b16 b);
    prop "round-to-odd double rounding = direct rounding"
      (QCheck2.Gen.pair arb_rat_small (QCheck2.Gen.int_range 7 11))
      (fun (a, k) ->
        (* wide = (11+2)-sig-bit format, narrow = k bits total with 5 ebits *)
        let wide = make_fmt ~ebits:5 ~prec:13 in
        let narrow_fmt = make_fmt ~ebits:5 ~prec:(k - 5) in
        let wide_ro = of_rat wide RTO a in
        List.for_all
          (fun m ->
            Int64.equal
              (of_rat narrow_fmt m a)
              (narrow ~src:wide ~dst:narrow_fmt m wide_ro))
          all_standard_modes);
    prop "ordinal respects value order" (QCheck2.Gen.pair arb_rat_small arb_rat_small)
      (fun (a, b) ->
        let fa = of_rat b16 RNE a and fb = of_rat b16 RNE b in
        (not (decode_ok b16 fa && decode_ok b16 fb))
        || (Rat.compare (to_rat b16 fa) (to_rat b16 fb) < 0)
           = (ordinal b16 fa < ordinal b16 fb
             && not (Rat.equal (to_rat b16 fa) (to_rat b16 fb))));
  ]

let suite =
  [
    ("format parameters", `Quick, test_format_parameters);
    ("classification", `Quick, test_classify);
    ("binary16 decode known", `Quick, test_decode_known_binary16);
    ("binary32 encode = native cast", `Quick, test_encode_matches_native_binary32);
    ("round-to-odd semantics", `Quick, test_round_to_odd_semantics);
    ("directed modes", `Quick, test_rounding_modes_quarter);
    ("nearest ties", `Quick, test_ties);
    ("overflow per mode", `Quick, test_overflow_modes);
    ("underflow per mode", `Quick, test_underflow_modes);
    ("succ/pred navigation", `Quick, test_succ_pred);
    ("finite enumeration", `Quick, test_iter_finite_count);
  ]
  @ props
