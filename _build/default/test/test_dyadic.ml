(* Tests for dyadic multi-precision numbers and outward-rounded interval
   arithmetic. *)

module D = Dyadic

let dq = D.to_rat

let check_rat msg want got =
  Alcotest.(check string) msg (Rat.to_string want) (Rat.to_string got)

let test_normalization () =
  let d = D.make (Bigint.of_int 12) 0 in
  Alcotest.(check string) "mantissa odd" "3" (Bigint.to_string (D.mantissa d));
  Alcotest.(check int) "exponent" 2 (D.exponent d);
  Alcotest.(check bool) "zero" true (D.is_zero (D.make Bigint.zero 5));
  Alcotest.(check int) "zero exp" 0 (D.exponent (D.make Bigint.zero 5))

let test_exact_ops () =
  let a = D.of_rat D.Down ~prec:60 (Rat.of_ints 3 4) in
  let b = D.of_rat D.Down ~prec:60 (Rat.of_ints 5 8) in
  check_rat "add" (Rat.of_ints 11 8) (dq (D.add a b));
  check_rat "sub" (Rat.of_ints 1 8) (dq (D.sub a b));
  check_rat "mul" (Rat.of_ints 15 32) (dq (D.mul a b));
  check_rat "mul_2exp" (Rat.of_ints 3 1) (dq (D.mul_2exp a 2))

let test_round_directed () =
  (* 0b1.0110011 = 179/128; round to 4 bits *)
  let d = D.make (Bigint.of_int 179) (-7) in
  let down = D.round D.Down ~prec:4 d in
  let up = D.round D.Up ~prec:4 d in
  Alcotest.(check bool) "down <= x" true (D.compare down d <= 0);
  Alcotest.(check bool) "x <= up" true (D.compare d up <= 0);
  Alcotest.(check bool) "tight" true
    (Rat.compare
       (Rat.sub (dq up) (dq down))
       (Rat.mul_pow2 Rat.one (-7 + 4)) (* one ulp at 4 bits *)
    <= 0);
  (* negative value: Down increases magnitude *)
  let nd = D.neg d in
  Alcotest.(check bool) "neg down" true
    (D.compare (D.round D.Down ~prec:4 nd) nd <= 0);
  Alcotest.(check bool) "neg up" true
    (D.compare nd (D.round D.Up ~prec:4 nd) <= 0)

let test_div () =
  let one = D.one and three = D.of_int 3 in
  let lo = D.div D.Down ~prec:50 one three in
  let hi = D.div D.Up ~prec:50 one three in
  let third = Rat.of_ints 1 3 in
  Alcotest.(check bool) "lo < 1/3" true (Rat.compare (dq lo) third < 0);
  Alcotest.(check bool) "1/3 < hi" true (Rat.compare third (dq hi) < 0);
  Alcotest.(check bool) "tight" true
    (Rat.compare (Rat.sub (dq hi) (dq lo)) (Rat.mul_pow2 Rat.one (-48)) < 0);
  (* exact division *)
  let six = D.of_int 6 in
  check_rat "6/3 exact" Rat.two (dq (D.div D.Down ~prec:10 six three));
  Alcotest.check_raises "div zero" Division_by_zero (fun () ->
      ignore (D.div D.Down ~prec:10 one D.zero))

let test_log2_floor () =
  Alcotest.(check int) "8" 3 (D.log2_floor (D.of_int 8));
  Alcotest.(check int) "7" 2 (D.log2_floor (D.of_int 7));
  Alcotest.(check int) "1/4" (-2) (D.log2_floor (D.pow2 (-2)));
  Alcotest.(check int) "neg" 3 (D.log2_floor (D.of_int (-8)))

(* ---------- interval tests ---------- *)

let test_ival_basics () =
  let iv = Ival.of_rat ~prec:40 (Rat.of_ints 1 3) in
  let lo, hi = Ival.to_rats iv in
  Alcotest.(check bool) "contains" true
    (Rat.compare lo (Rat.of_ints 1 3) <= 0
    && Rat.compare (Rat.of_ints 1 3) hi <= 0);
  Alcotest.check_raises "bad make" (Invalid_argument "Ival.make: lo > hi")
    (fun () -> ignore (Ival.make D.one D.zero))

let test_ival_mul_signs () =
  (* Interval multiplication must be correct across sign combinations. *)
  let mk a b = Ival.make (D.of_int a) (D.of_int b) in
  let check name a b expect_lo expect_hi =
    let p = Ival.mul ~prec:60 a b in
    let lo, hi = Ival.to_rats p in
    Alcotest.(check string) (name ^ " lo") (string_of_int expect_lo)
      (Rat.to_string lo);
    Alcotest.(check string) (name ^ " hi") (string_of_int expect_hi)
      (Rat.to_string hi)
  in
  check "pos*pos" (mk 2 3) (mk 5 7) 10 21;
  check "mixed" (mk (-2) 3) (mk 5 7) (-14) 21;
  check "neg*neg" (mk (-3) (-2)) (mk (-7) (-5)) 10 21;
  check "spanning" (mk (-2) 3) (mk (-5) 7) (-15) 21

let test_ival_enclosure_property () =
  (* Random interval ops keep exact rational arithmetic enclosed. *)
  let gen =
    QCheck2.Gen.(
      let* n = int_range (-10000) 10000 in
      let* d = int_range 1 10000 in
      return (Rat.of_ints n d))
  in
  let test =
    QCheck2.Test.make ~count:300 ~name:"interval ops enclose exact values"
      QCheck2.Gen.(quad gen gen gen gen)
      (fun (a, b, c, d) ->
        let prec = 30 in
        let ia = Ival.of_rat ~prec a and ib = Ival.of_rat ~prec b in
        let ic = Ival.of_rat ~prec c and id_ = Ival.of_rat ~prec d in
        let sum = Ival.add ~prec (Ival.mul ~prec ia ib) (Ival.mul ~prec ic id_) in
        let exact = Rat.add (Rat.mul a b) (Rat.mul c d) in
        let lo, hi = Ival.to_rats sum in
        Rat.compare lo exact <= 0 && Rat.compare exact hi <= 0)
  in
  QCheck_alcotest.to_alcotest test

let test_ival_div_guard () =
  Alcotest.check_raises "spanning divisor" Division_by_zero (fun () ->
      ignore
        (Ival.div ~prec:20
           (Ival.of_int 1)
           (Ival.make (D.of_int (-1)) (D.of_int 1))))

let test_widen () =
  let iv = Ival.of_int 5 in
  let w = Ival.widen iv (D.pow2 (-10)) in
  let lo, hi = Ival.to_rats w in
  Alcotest.(check bool) "wider" true
    (Rat.compare lo (Rat.of_int 5) < 0 && Rat.compare (Rat.of_int 5) hi < 0);
  Alcotest.check_raises "negative widen"
    (Invalid_argument "Ival.widen: negative error") (fun () ->
      ignore (Ival.widen iv (D.of_int (-1))))

let prop_round_enclosure =
  let gen =
    QCheck2.Gen.(
      let* n = int_range (-1_000_000_000) 1_000_000_000 in
      let* d = int_range 1 1_000_000_000 in
      let* p = int_range 2 80 in
      return (Rat.of_ints n d, p))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:400 ~name:"of_rat directed brackets" gen
       (fun (q, prec) ->
         let lo = D.of_rat D.Down ~prec q and hi = D.of_rat D.Up ~prec q in
         Rat.compare (dq lo) q <= 0
         && Rat.compare q (dq hi) <= 0
         && D.numbits lo <= prec
         && D.numbits hi <= prec))

let suite =
  [
    ("normalization", `Quick, test_normalization);
    ("exact operations", `Quick, test_exact_ops);
    ("directed rounding", `Quick, test_round_directed);
    ("division", `Quick, test_div);
    ("log2_floor", `Quick, test_log2_floor);
    ("interval basics", `Quick, test_ival_basics);
    ("interval mul signs", `Quick, test_ival_mul_signs);
    ("interval div guard", `Quick, test_ival_div_guard);
    ("interval widen", `Quick, test_widen);
    prop_round_enclosure;
    test_ival_enclosure_property ();
  ]
