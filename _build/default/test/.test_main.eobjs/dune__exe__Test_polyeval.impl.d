test/test_polyeval.ml: Alcotest Array Cubic Expr Float Fun Int64 List Lp Polyeval Printf QCheck2 QCheck_alcotest Rat
