test/test_rat.ml: Alcotest Bigint Float Int64 List QCheck2 QCheck_alcotest Rat
