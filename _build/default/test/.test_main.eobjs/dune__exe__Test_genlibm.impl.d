test/test_genlibm.ml: Alcotest Array Codegen Float Genlibm Hashtbl Int64 Lazy List Oracle Polyeval Printf Rat Rlibm Softfp String
