test/test_rlibm.ml: Alcotest Array Float Int64 List Oracle Printf Rat Rlibm Softfp
