test/test_dyadic.ml: Alcotest Bigint Dyadic Ival QCheck2 QCheck_alcotest Rat
