test/test_bigint.ml: Alcotest Bigint Float List QCheck2 QCheck_alcotest String
