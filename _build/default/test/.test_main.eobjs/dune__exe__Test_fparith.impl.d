test/test_fparith.ml: Alcotest Float Fparith Int32 Int64 List Printf QCheck2 QCheck_alcotest Random Rat Softfp
