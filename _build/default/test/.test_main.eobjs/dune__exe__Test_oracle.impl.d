test/test_oracle.ml: Alcotest Float Int64 Ival List Oracle Printf QCheck2 QCheck_alcotest Random Rat Softfp
