test/test_softfp.ml: Alcotest Float Int32 Int64 List Printf QCheck2 QCheck_alcotest Rat Softfp
