test/test_main.ml: Alcotest Test_bigint Test_dyadic Test_fparith Test_genlibm Test_lp Test_oracle Test_polyeval Test_rat Test_rlibm Test_softfp
