test/test_lp.ml: Alcotest Array List Lp QCheck2 QCheck_alcotest Random Rat
