(* Tests for correctly rounded in-format arithmetic, including the
   fma-vs-mul+add double-rounding comparison that motivates the paper's
   use of fused operations. *)

open Softfp

let b16 = binary16

let enc x = of_rat b16 RNE (Rat.of_float x)
let dec b = to_float b16 b

let test_basic_ops () =
  let check name got expect =
    Alcotest.(check (float 0.0)) name expect (dec got)
  in
  check "1+2" (Fparith.add b16 RNE (enc 1.0) (enc 2.0)) 3.0;
  check "3*7" (Fparith.mul b16 RNE (enc 3.0) (enc 7.0)) 21.0;
  check "1/4" (Fparith.div b16 RNE (enc 1.0) (enc 4.0)) 0.25;
  check "5-8" (Fparith.sub b16 RNE (enc 5.0) (enc 8.0)) (-3.0);
  check "fma 2*3+4" (Fparith.fma b16 RNE (enc 2.0) (enc 3.0) (enc 4.0)) 10.0

let test_against_native_binary32 () =
  (* binary32 soft ops must agree bit-for-bit with hardware float32 ops
     (which are correctly rounded RNE). *)
  let f32 = binary32 in
  let st = Random.State.make [| 99 |] in
  for i = 1 to 300 do
    (* For mul, the double intermediate is exact (24+24 <= 53 bits), so the
       double->float32 cast is the correctly rounded product.  For add the
       intermediate can be inexact, so operands are drawn with aligned
       exponents (sum fits 25 bits) to keep the reference exact. *)
    let fa, fb =
      if i land 1 = 0 then
        ( Int32.float_of_bits (Int32.of_int (Random.State.full_int st 0x7F7F_FFFF)),
          Int32.float_of_bits (Int32.of_int (Random.State.full_int st 0x7F7F_FFFF)) )
      else
        ( float_of_int (Random.State.int st 0x0100_0000 - 0x80_0000) /. 1024.0,
          float_of_int (Random.State.int st 0x0100_0000 - 0x80_0000) /. 1024.0 )
    in
    if Float.is_finite fa && Float.is_finite fb then begin
      let do_add = i land 1 = 1 in
      let ba = bits_of_float32 fa and bb = bits_of_float32 fb in
      let native op = Int32.bits_of_float (op fa fb) in
      let check name soft nat =
        if Float.is_finite (Int32.float_of_bits nat) then
          Alcotest.(check int64)
            (Printf.sprintf "%s %h %h" name fa fb)
            (Int64.logand (Int64.of_int32 nat) 0xFFFFFFFFL)
            soft
      in
      if do_add then
        check "add" (Fparith.add f32 RNE ba bb)
          (native (fun x y ->
               Int32.float_of_bits (Int32.bits_of_float (x +. y))))
      else
        check "mul" (Fparith.mul f32 RNE ba bb)
          (native (fun x y ->
               Int32.float_of_bits (Int32.bits_of_float (x *. y))))
    end
  done

let test_specials () =
  let inf = inf_bits b16 ~neg:false and ninf = inf_bits b16 ~neg:true in
  let nan = nan_bits b16 in
  Alcotest.(check bool) "inf - inf = nan" true
    (is_nan b16 (Fparith.add b16 RNE inf ninf));
  Alcotest.(check bool) "0 * inf = nan" true
    (is_nan b16 (Fparith.mul b16 RNE (zero_bits b16) inf));
  Alcotest.(check bool) "0/0 = nan" true
    (is_nan b16 (Fparith.div b16 RNE (zero_bits b16) (zero_bits b16)));
  Alcotest.(check bool) "nan propagates" true
    (is_nan b16 (Fparith.fma b16 RNE nan (enc 1.0) (enc 1.0)));
  Alcotest.(check int64) "x/inf = 0" (zero_bits b16)
    (Fparith.div b16 RNE (enc 3.0) inf);
  Alcotest.(check int64) "-x/inf = -0" (neg_zero_bits b16)
    (Fparith.div b16 RNE (enc (-3.0)) inf);
  Alcotest.(check int64) "1/0 = inf" inf
    (Fparith.div b16 RNE (enc 1.0) (zero_bits b16));
  Alcotest.(check bool) "inf*inf + -inf = nan" true
    (is_nan b16 (Fparith.fma b16 RNE inf inf ninf))

let test_zero_signs () =
  let p0 = zero_bits b16 and n0 = neg_zero_bits b16 in
  Alcotest.(check int64) "3 + -3 = +0 (RNE)" p0
    (Fparith.add b16 RNE (enc 3.0) (enc (-3.0)));
  Alcotest.(check int64) "3 + -3 = -0 (RTD)" n0
    (Fparith.add b16 RTD (enc 3.0) (enc (-3.0)));
  Alcotest.(check int64) "-0 + -0 = -0" n0 (Fparith.add b16 RNE n0 n0);
  Alcotest.(check int64) "+0 * -5 stays +(-0)" n0
    (Fparith.mul b16 RTD p0 (enc (-5.0)));
  Alcotest.(check int64) "-0 * -5 = +0 even under RTD" p0
    (Fparith.mul b16 RTD n0 (enc (-5.0)))

let test_fma_single_rounding () =
  (* A classic double-rounding witness: with p = 11 bits (binary16), pick
     a, b, c so that a*b has exactly one bit beyond the format and the
     intermediate rounding of mul+add flips the final result. *)
  let found = ref 0 and diff = ref 0 in
  let st = Random.State.make [| 4242 |] in
  for _ = 1 to 20_000 do
    let r () = enc (float_of_int (1 + Random.State.int st 2000) /. 64.0) in
    let a = r () and b = r () in
    let c =
      let v = r () in
      if Random.State.bool st then of_rat b16 RNE (Rat.neg (to_rat b16 v)) else v
    in
    let fused = Fparith.fma b16 RNE a b c in
    let unfused = Fparith.mul_add b16 RNE a b c in
    if is_finite b16 fused && is_finite b16 unfused then begin
      incr found;
      if not (Int64.equal fused unfused) then begin
        incr diff;
        (* when they differ, fma must be the correctly rounded one *)
        let exact =
          Rat.add (Rat.mul (to_rat b16 a) (to_rat b16 b)) (to_rat b16 c)
        in
        Alcotest.(check int64) "fma is correctly rounded"
          (of_rat b16 RNE exact) fused
      end
    end
  done;
  Alcotest.(check bool) "found cases" true (!found > 10_000);
  (* double rounding must actually bite sometimes, else the test is vacuous *)
  Alcotest.(check bool)
    (Printf.sprintf "fma differs from mul+add on %d cases" !diff)
    true (!diff > 0)

let prop_fma_correct =
  let gen =
    QCheck2.Gen.(
      let* a = int_range (-4000) 4000 in
      let* b = int_range (-4000) 4000 in
      let* c = int_range (-4000) 4000 in
      let* s = int_range (-6) 6 in
      return
        ( Rat.mul_pow2 (Rat.of_int a) s,
          Rat.mul_pow2 (Rat.of_int b) (-3),
          Rat.mul_pow2 (Rat.of_int c) (-2) ))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"fma = round(exact a*b+c), all modes"
       gen
       (fun (qa, qb, qc) ->
         List.for_all
           (fun mode ->
             let a = of_rat b16 mode qa
             and b = of_rat b16 mode qb
             and c = of_rat b16 mode qc in
             if is_finite b16 a && is_finite b16 b && is_finite b16 c then begin
               let exact =
                 Rat.add (Rat.mul (to_rat b16 a) (to_rat b16 b)) (to_rat b16 c)
               in
               let want = of_rat b16 mode exact in
               let got = Fparith.fma b16 mode a b c in
               (* zero results may differ in sign conventions; compare
                  values *)
               (Rat.is_zero exact && classify b16 got = Zero)
               || Int64.equal want got
             end
             else true)
           (RTO :: all_standard_modes)))

let suite =
  [
    ("basic operations", `Quick, test_basic_ops);
    ("binary32 vs hardware", `Quick, test_against_native_binary32);
    ("IEEE specials", `Quick, test_specials);
    ("zero signs", `Quick, test_zero_signs);
    ("fma beats mul+add (double rounding)", `Quick, test_fma_single_rounding);
    prop_fma_correct;
  ]
