(* Unit and property tests for exact rationals, with emphasis on the
   correctly rounded conversions to binary64 that the pipeline depends
   on. *)

let q = Rat.of_string
let qi = Rat.of_int

let check_q msg want got = Alcotest.(check string) msg want (Rat.to_string got)

(* ---------- unit tests ---------- *)

let test_canonical_form () =
  check_q "reduce" "1/2" (Rat.of_ints 2 4);
  check_q "sign in num" "-1/2" (Rat.of_ints 1 (-2));
  check_q "double neg" "1/2" (Rat.of_ints (-1) (-2));
  check_q "zero" "0" (Rat.of_ints 0 17);
  Alcotest.check_raises "zero den" Division_by_zero (fun () ->
      ignore (Rat.of_ints 1 0))

let test_parsing () =
  check_q "fraction" "22/7" (q "22/7");
  check_q "decimal" "-1/800" (q "-1.25e-3");
  check_q "sci" "1500" (q "1.5e3");
  check_q "plain" "42" (q "42");
  check_q "cap E" "250" (q "2.5E2")

let test_arith () =
  check_q "thirds" "1/2" (Rat.add (Rat.of_ints 1 3) (Rat.of_ints 1 6));
  check_q "mul cancel" "1" (Rat.mul (Rat.of_ints 3 7) (Rat.of_ints 7 3));
  check_q "div" "9/4" (Rat.div (Rat.of_ints 3 2) (Rat.of_ints 2 3));
  check_q "pow neg" "9/4" (Rat.pow (Rat.of_ints 2 3) (-2));
  check_q "mul_pow2 up" "12" (Rat.mul_pow2 (qi 3) 2);
  check_q "mul_pow2 down" "3/4" (Rat.mul_pow2 (qi 3) (-2));
  check_q "mul_pow2 cancel" "3" (Rat.mul_pow2 (Rat.of_ints 3 4) 2)

let test_floor_ceil () =
  let f x = Bigint.to_string (Rat.floor (q x)) in
  let c x = Bigint.to_string (Rat.ceil (q x)) in
  let t x = Bigint.to_string (Rat.trunc (q x)) in
  Alcotest.(check string) "floor 7/2" "3" (f "7/2");
  Alcotest.(check string) "floor -7/2" "-4" (f "-7/2");
  Alcotest.(check string) "ceil 7/2" "4" (c "7/2");
  Alcotest.(check string) "ceil -7/2" "-3" (c "-7/2");
  Alcotest.(check string) "trunc -7/2" "-3" (t "-7/2")

let test_decimal_string () =
  Alcotest.(check string) "third" "0.3333333333"
    (Rat.to_decimal_string ~digits:10 (Rat.of_ints 1 3));
  Alcotest.(check string) "neg" "-0.50"
    (Rat.to_decimal_string ~digits:2 (Rat.of_ints (-1) 2));
  Alcotest.(check string) "int" "7" (Rat.to_decimal_string ~digits:0 (qi 7))

let test_of_float_exact () =
  List.iter
    (fun (x, expect) -> check_q (string_of_float x) expect (Rat.of_float x))
    [
      (0.5, "1/2");
      (-0.75, "-3/4");
      (3.0, "3");
      (0.1, "3602879701896397/36028797018963968");
      (Float.min_float, "1/44942328371557897693232629769725618340449424473557664318357520289433168951375240783177119330601884005280028469967848339414697442203604155623211857659868531094441973356216371319075554900311523529863270738021251442209537670585615720368478277635206809290837627671146574559986811484619929076208839082406056034304");
    ];
  Alcotest.check_raises "nan" (Invalid_argument "Rat.of_float: not finite")
    (fun () -> ignore (Rat.of_float Float.nan));
  Alcotest.check_raises "inf" (Invalid_argument "Rat.of_float: not finite")
    (fun () -> ignore (Rat.of_float Float.infinity))

let test_to_float_directed () =
  let third = Rat.of_ints 1 3 in
  let lo = Rat.to_float_dir Rat.Down third in
  let hi = Rat.to_float_dir Rat.Up third in
  Alcotest.(check bool) "adjacent" true (Float.succ lo = hi);
  Alcotest.(check bool) "brackets" true
    (Rat.compare (Rat.of_float lo) third < 0
    && Rat.compare third (Rat.of_float hi) < 0);
  Alcotest.(check (float 0.0)) "nearest is one of them" (1.0 /. 3.0)
    (Rat.to_float third);
  (* negative: Down goes more negative *)
  let nthird = Rat.neg third in
  Alcotest.(check bool) "neg ordering" true
    (Rat.to_float_dir Rat.Down nthird < Rat.to_float_dir Rat.Up nthird);
  Alcotest.(check (float 0.0)) "zero toward zero" (-0.3333333333333333)
    (Rat.to_float_dir Rat.Zero nthird)

let test_to_float_subnormal_overflow () =
  let open Rat.Infix in
  let min_sub = Int64.float_of_bits 1L in
  (* below half the smallest subnormal: RNE to 0, Up to min subnormal *)
  let tiny = Rat.mul_pow2 (Rat.of_ints 1 3) (-1080) in
  Alcotest.(check (float 0.0)) "tiny nearest" 0.0 (Rat.to_float tiny);
  Alcotest.(check (float 0.0)) "tiny up" min_sub (Rat.to_float_dir Rat.Up tiny);
  Alcotest.(check (float 0.0)) "tiny down" 0.0 (Rat.to_float_dir Rat.Down tiny);
  (* exactly half the smallest subnormal: tie to even = 0 *)
  let half_min = Rat.mul_pow2 Rat.one (-1075) in
  Alcotest.(check (float 0.0)) "half-min tie" 0.0 (Rat.to_float half_min);
  (* just above the tie rounds up *)
  let above = half_min + Rat.mul_pow2 Rat.one (-1200) in
  Alcotest.(check (float 0.0)) "above tie" min_sub (Rat.to_float above);
  (* overflow behaviour *)
  let huge = Rat.mul_pow2 Rat.one 1025 in
  Alcotest.(check (float 0.0)) "overflow nearest" Float.infinity
    (Rat.to_float huge);
  Alcotest.(check (float 0.0)) "overflow down" Float.max_float
    (Rat.to_float_dir Rat.Down huge);
  Alcotest.(check (float 0.0)) "neg overflow up" (-.Float.max_float)
    (Rat.to_float_dir Rat.Up (Rat.neg huge));
  (* the RNE overflow threshold is 2^1024 - 2^970 *)
  let threshold = Rat.mul_pow2 Rat.one 1024 - Rat.mul_pow2 Rat.one 970 in
  Alcotest.(check (float 0.0)) "at threshold" Float.infinity
    (Rat.to_float threshold);
  let below = threshold - Rat.mul_pow2 Rat.one 900 in
  Alcotest.(check (float 0.0)) "below threshold" Float.max_float
    (Rat.to_float below)

let test_approx () =
  let m, e, exact = Rat.approx (qi 12) ~bits:3 in
  Alcotest.(check string) "approx m" "6" (Bigint.to_string m);
  Alcotest.(check int) "approx e" 1 e;
  Alcotest.(check bool) "approx exact" true exact;
  let m, e, exact = Rat.approx (Rat.of_ints 1 3) ~bits:4 in
  (* 1/3 = 0.0101010101...b: 4 significant bits floor = 1010b = 10, e = -5 *)
  Alcotest.(check string) "third m" "10" (Bigint.to_string m);
  Alcotest.(check int) "third e" (-5) e;
  Alcotest.(check bool) "third inexact" false exact

(* ---------- property tests ---------- *)

let arb_rat =
  QCheck2.Gen.(
    let* n = int_range (-1_000_000_000) 1_000_000_000 in
    let* d = int_range 1 1_000_000_000 in
    let* scale = int_range (-60) 60 in
    return (Rat.mul_pow2 (Rat.of_ints n d) scale))

let arb_finite_float =
  QCheck2.Gen.(
    let* bits = int64 in
    let x = Int64.float_of_bits bits in
    if Float.is_finite x then return x else return 1.5)

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen f)

let props =
  let req = Rat.equal in
  [
    prop "field: a + (-a) = 0" arb_rat (fun a -> req (Rat.sub a a) Rat.zero);
    prop "field: a * inv a = 1" arb_rat (fun a ->
        Rat.is_zero a || req (Rat.div a a) Rat.one);
    prop "add assoc" (QCheck2.Gen.triple arb_rat arb_rat arb_rat)
      (fun (a, b, c) -> req (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c)));
    prop "mul distributes" (QCheck2.Gen.triple arb_rat arb_rat arb_rat)
      (fun (a, b, c) ->
        req (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)));
    prop "of_float exact round-trip" arb_finite_float (fun x ->
        Rat.to_float (Rat.of_float x) = x);
    prop "to_float_dir brackets" arb_rat (fun a ->
        let lo = Rat.to_float_dir Rat.Down a and hi = Rat.to_float_dir Rat.Up a in
        lo <= hi
        && (not (Float.is_finite lo) || Rat.compare (Rat.of_float lo) a <= 0)
        && (not (Float.is_finite hi) || Rat.compare a (Rat.of_float hi) <= 0));
    prop "to_float is Down or Up" arb_rat (fun a ->
        let n = Rat.to_float a in
        n = Rat.to_float_dir Rat.Down a || n = Rat.to_float_dir Rat.Up a);
    prop "native ops are correctly rounded (cross-check)"
      (QCheck2.Gen.pair arb_finite_float arb_finite_float) (fun (x, y) ->
        let s = x +. y in
        (not (Float.is_finite s))
        || Rat.to_float (Rat.add (Rat.of_float x) (Rat.of_float y)) = s);
    prop "mul_pow2 exactness" (QCheck2.Gen.pair arb_rat (QCheck2.Gen.int_range (-80) 80))
      (fun (a, k) -> req (Rat.mul_pow2 (Rat.mul_pow2 a k) (-k)) a);
    prop "floor <= x < floor+1" arb_rat (fun a ->
        let f = Rat.of_bigint (Rat.floor a) in
        Rat.compare f a <= 0 && Rat.compare a (Rat.add f Rat.one) < 0);
    prop "approx contract" (QCheck2.Gen.pair arb_rat (QCheck2.Gen.int_range 1 80))
      (fun (a, bits) ->
        Rat.is_zero a
        ||
        let m, e, exact = Rat.approx a ~bits in
        let lo = Rat.mul_pow2 (Rat.of_bigint m) e in
        let hi = Rat.mul_pow2 (Rat.of_bigint (Bigint.succ m)) e in
        Bigint.numbits m = bits
        && Rat.compare lo (Rat.abs a) <= 0
        && Rat.compare (Rat.abs a) hi < 0
        && exact = Rat.equal lo (Rat.abs a));
  ]

let suite =
  [
    ("canonical form", `Quick, test_canonical_form);
    ("parsing", `Quick, test_parsing);
    ("arithmetic", `Quick, test_arith);
    ("floor/ceil/trunc", `Quick, test_floor_ceil);
    ("decimal strings", `Quick, test_decimal_string);
    ("of_float exact", `Quick, test_of_float_exact);
    ("to_float directed", `Quick, test_to_float_directed);
    ("to_float subnormal/overflow", `Quick, test_to_float_subnormal_overflow);
    ("approx primitive", `Quick, test_approx);
  ]
  @ props
