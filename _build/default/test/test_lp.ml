(* Tests for the exact-rational simplex and the interval-system driver. *)

let r = Rat.of_int
let rr = Rat.of_ints

let opt_value = function
  | Lp.Optimal (_, v) -> v
  | Lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_basic_max () =
  (* max x + y s.t. x <= 3, y <= 4, x + y <= 5 *)
  let v =
    opt_value
      (Lp.maximize ~obj:[| r 1; r 1 |]
         ~rows:
           [|
             ([| r 1; r 0 |], r 3); ([| r 0; r 1 |], r 4); ([| r 1; r 1 |], r 5);
           |])
  in
  Alcotest.(check string) "objective" "5" (Rat.to_string v)

let test_infeasible () =
  match
    Lp.maximize ~obj:[| r 1 |] ~rows:[| ([| r 1 |], r 1); ([| r (-1) |], r (-2)) |]
  with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "should be infeasible"

let test_unbounded () =
  match Lp.maximize ~obj:[| r 1 |] ~rows:[| ([| r (-1) |], r 0) |] with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "should be unbounded"

let test_free_variables () =
  (* max -x s.t. -x <= 10: optimum at x = -10 *)
  match Lp.maximize ~obj:[| r (-1) |] ~rows:[| ([| r (-1) |], r 10) |] with
  | Lp.Optimal (sol, v) ->
      Alcotest.(check string) "value" "10" (Rat.to_string v);
      Alcotest.(check string) "solution" "-10" (Rat.to_string sol.(0))
  | _ -> Alcotest.fail "should be optimal"

let test_phase1_degenerate () =
  (* equality-like: x + y <= 2, x >= 1, y >= 1 pins x = y = 1 *)
  match
    Lp.maximize ~obj:[| r 1; r 2 |]
      ~rows:
        [|
          ([| r 1; r 1 |], r 2);
          ([| r (-1); r 0 |], r (-1));
          ([| r 0; r (-1) |], r (-1));
        |]
  with
  | Lp.Optimal (sol, v) ->
      Alcotest.(check string) "obj" "3" (Rat.to_string v);
      Alcotest.(check string) "x" "1" (Rat.to_string sol.(0));
      Alcotest.(check string) "y" "1" (Rat.to_string sol.(1))
  | _ -> Alcotest.fail "should be optimal"

let test_exact_rational_vertex () =
  (* Vertex with non-integer rational coordinates must come out exact:
     max x + y s.t. 2x + 3y <= 7, 3x + 2y <= 7 -> x = y = 7/5. *)
  match
    Lp.maximize ~obj:[| r 1; r 1 |]
      ~rows:[| ([| r 2; r 3 |], r 7); ([| r 3; r 2 |], r 7) |]
  with
  | Lp.Optimal (sol, v) ->
      Alcotest.(check string) "x" "7/5" (Rat.to_string sol.(0));
      Alcotest.(check string) "y" "7/5" (Rat.to_string sol.(1));
      Alcotest.(check string) "obj" "14/5" (Rat.to_string v)
  | _ -> Alcotest.fail "should be optimal"

let test_interval_cubic_fit () =
  let powers = [| 0; 1; 2; 3 |] in
  let truth x = Rat.(add (sub (pow x 3) (mul (of_int 2) x)) one) in
  let points =
    Array.init 400 (fun i ->
        let x = rr (i - 200) 80 in
        let v = truth x in
        let eps = rr 1 1000 in
        { Lp.x; lo = Rat.sub v eps; hi = Rat.add v eps })
  in
  match Lp.solve_interval_system ~powers points with
  | Lp.Sat (coeffs, _) ->
      Array.iter
        (fun pt ->
          let v = Lp.eval_poly ~powers coeffs pt.Lp.x in
          Alcotest.(check bool) "in window" true
            (Rat.compare pt.Lp.lo v <= 0 && Rat.compare v pt.Lp.hi <= 0))
        points
  | Lp.Unsat -> Alcotest.fail "cubic fit should be satisfiable"

let test_interval_infeasible () =
  let mk x v =
    { Lp.x = r x; lo = Rat.sub (r v) (rr 1 100); hi = Rat.add (r v) (rr 1 100) }
  in
  match
    Lp.solve_interval_system ~powers:[| 0; 1 |] [| mk 0 0; mk 1 1; mk 2 0 |]
  with
  | Lp.Unsat -> ()
  | Lp.Sat _ -> Alcotest.fail "line through 3 non-collinear windows"

let test_interval_degenerate_point () =
  (* A degenerate window [v,v] forces exact interpolation. *)
  let pts =
    [|
      { Lp.x = r 0; lo = r 1; hi = r 1 };
      { Lp.x = r 1; lo = rr 19 10; hi = rr 21 10 };
    |]
  in
  match Lp.solve_interval_system ~powers:[| 0; 1 |] pts with
  | Lp.Sat (coeffs, _) ->
      Alcotest.(check string) "c0 pinned" "1" (Rat.to_string coeffs.(0))
  | Lp.Unsat -> Alcotest.fail "degenerate point is satisfiable"

let test_warm_start () =
  let powers = [| 0; 1; 2 |] in
  let truth x = Rat.(add (mul x x) one) in
  let points =
    Array.init 200 (fun i ->
        let x = rr (i - 100) 40 in
        let v = truth x in
        { Lp.x; lo = Rat.sub v (rr 1 50); hi = Rat.add v (rr 1 50) })
  in
  match Lp.solve_interval_system ~powers points with
  | Lp.Unsat -> Alcotest.fail "should fit"
  | Lp.Sat (_, working) -> (
      (* re-solving with the warm start must also succeed *)
      match Lp.solve_interval_system ~initial_working:working ~powers points with
      | Lp.Sat (coeffs, _) ->
          Array.iter
            (fun pt ->
              let v = Lp.eval_poly ~powers coeffs pt.Lp.x in
              Alcotest.(check bool) "warm in window" true
                (Rat.compare pt.Lp.lo v <= 0 && Rat.compare v pt.Lp.hi <= 0))
            points
      | Lp.Unsat -> Alcotest.fail "warm start lost feasibility")


let test_tilt_changes_vertex () =
  (* With a box of feasible polynomials, different tilts should be able to
     reach different optima while staying feasible. *)
  let powers = [| 0; 1 |] in
  let points =
    Array.init 50 (fun i ->
        let x = rr i 50 in
        { Lp.x; lo = r 0; hi = r 1 })
  in
  let solve tilt =
    match Lp.solve_interval_system ?tilt ~powers points with
    | Lp.Sat (coeffs, _) ->
        Array.iter
          (fun pt ->
            let v = Lp.eval_poly ~powers coeffs pt.Lp.x in
            Alcotest.(check bool) "feasible under tilt" true
              (Rat.compare pt.Lp.lo v <= 0 && Rat.compare v pt.Lp.hi <= 0))
          points;
        coeffs
    | Lp.Unsat -> Alcotest.fail "box system is satisfiable"
  in
  let base = solve None in
  let up = solve (Some [| rr 1 1000; Rat.zero |]) in
  let down = solve (Some [| rr (-1) 1000; Rat.zero |]) in
  (* tilting c0 up vs down must order the constant terms *)
  Alcotest.(check bool) "tilt direction respected" true
    (Rat.compare down.(0) up.(0) <= 0);
  ignore base

let test_mono_bits_still_feasible () =
  (* Rounded monomials must not break feasibility verdicts on a system
     with comfortable windows. *)
  let powers = [| 0; 1; 2; 3; 4; 5 |] in
  let points =
    Array.init 300 (fun i ->
        (* x with a full 53-bit mantissa *)
        let x = Rat.of_float (0.001 +. (float_of_int i *. 0.00333)) in
        let v = Rat.of_float (exp (Rat.to_float x)) in
        { Lp.x; lo = Rat.sub v (rr 1 10000); hi = Rat.add v (rr 1 10000) })
  in
  match Lp.solve_interval_system ~mono_bits:64 ~powers points with
  | Lp.Sat (coeffs, _) ->
      (* check against the EXACT monomials: the solution may exceed the
         window only by the monomial perturbation, which is far below the
         window width here *)
      Array.iter
        (fun pt ->
          let v = Lp.eval_poly ~powers coeffs pt.Lp.x in
          let slack = rr 1 100000 in
          Alcotest.(check bool) "within widened window" true
            (Rat.compare (Rat.sub pt.Lp.lo slack) v <= 0
            && Rat.compare v (Rat.add pt.Lp.hi slack) <= 0))
        points
  | Lp.Unsat -> Alcotest.fail "smooth degree-5 fit must be satisfiable"

let test_degenerate_with_tilt () =
  (* A degenerate window must pin the polynomial exactly even under
     tilt. *)
  let pts =
    [|
      { Lp.x = r 0; lo = r 1; hi = r 1 };
      { Lp.x = r 1; lo = rr 19 10; hi = rr 21 10 };
    |]
  in
  match
    Lp.solve_interval_system ~tilt:[| rr 1 64; rr (-1) 64 |] ~powers:[| 0; 1 |]
      pts
  with
  | Lp.Sat (coeffs, _) ->
      Alcotest.(check string) "c0 pinned under tilt" "1"
        (Rat.to_string coeffs.(0))
  | Lp.Unsat -> Alcotest.fail "satisfiable"

(* Random LP property: simplex result is feasible, and no better feasible
   point exists among random samples (soundness of optimality). *)
let prop_simplex_sound =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 3 in
      let* m = int_range 1 6 in
      let* entries = list_size (return (m * n)) (int_range (-5) 5) in
      let* rhs = list_size (return m) (int_range 0 10) in
      let* obj = list_size (return n) (int_range (-3) 3) in
      return (n, m, entries, rhs, obj))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"simplex optimum dominates samples" gen
       (fun (n, m, entries, rhs, obj) ->
         let a = Array.of_list (List.map r entries) in
         let rows =
           Array.init m (fun i ->
               (Array.init n (fun j -> a.((i * n) + j)), r (List.nth rhs i)))
         in
         let objv = Array.of_list (List.map r obj) in
         match Lp.maximize ~obj:objv ~rows with
         | Lp.Infeasible -> true (* rhs >= 0 makes 0 feasible: impossible *)
         | Lp.Unbounded -> true
         | Lp.Optimal (sol, v) ->
             (* solution satisfies all rows *)
             let feasible x =
               Array.for_all
                 (fun (row, b) ->
                   let dot = ref Rat.zero in
                   Array.iteri
                     (fun j c -> dot := Rat.add !dot (Rat.mul c x.(j)))
                     row;
                   Rat.compare !dot b <= 0)
                 rows
             in
             let objective x =
               let acc = ref Rat.zero in
               Array.iteri (fun j c -> acc := Rat.add !acc (Rat.mul objv.(j) c)) x;
               !acc
             in
             feasible sol
             && Rat.equal (objective sol) v
             &&
             (* random feasible samples never beat the optimum *)
             let st = Random.State.make [| 7 |] in
             let ok = ref true in
             for _ = 1 to 30 do
               let x =
                 Array.init n (fun _ ->
                     rr (Random.State.int st 21 - 10) (1 + Random.State.int st 4))
               in
               if feasible x && Rat.compare (objective x) v > 0 then ok := false
             done;
             !ok))

let suite =
  [
    ("basic maximization", `Quick, test_basic_max);
    ("infeasibility", `Quick, test_infeasible);
    ("unboundedness", `Quick, test_unbounded);
    ("free variables", `Quick, test_free_variables);
    ("phase-1 degenerate", `Quick, test_phase1_degenerate);
    ("exact rational vertex", `Quick, test_exact_rational_vertex);
    ("interval cubic fit", `Quick, test_interval_cubic_fit);
    ("interval infeasible", `Quick, test_interval_infeasible);
    ("degenerate window", `Quick, test_interval_degenerate_point);
    ("warm start", `Quick, test_warm_start);
    ("objective tilt", `Quick, test_tilt_changes_vertex);
    ("rounded monomials", `Quick, test_mono_bits_still_feasible);
    ("degenerate window under tilt", `Quick, test_degenerate_with_tilt);
    prop_simplex_sound;
  ]
