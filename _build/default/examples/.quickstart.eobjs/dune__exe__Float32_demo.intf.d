examples/float32_demo.mli:
