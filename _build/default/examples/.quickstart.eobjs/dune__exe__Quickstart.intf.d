examples/quickstart.mli:
