examples/quickstart.ml: Array Expr Float Format Genlibm List Oracle Polyeval Printf Rat Rlibm Softfp
