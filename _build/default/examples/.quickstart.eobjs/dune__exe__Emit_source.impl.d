examples/emit_source.ml: Array Codegen Filename Genlibm Option Oracle Polyeval Printf Rlibm String Sys
