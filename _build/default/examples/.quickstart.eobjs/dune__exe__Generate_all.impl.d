examples/generate_all.ml: Array Format Genlibm List Oracle Polyeval Printf Rlibm String Unix
