examples/float32_demo.ml: Array Expr Float Format Genlibm List Oracle Polyeval Printf Rlibm Sys Unix
