examples/multi_rounding.mli:
