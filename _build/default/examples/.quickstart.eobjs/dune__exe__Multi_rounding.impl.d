examples/multi_rounding.ml: Array Format Genlibm Int64 List Oracle Polyeval Printf Rlibm Softfp
