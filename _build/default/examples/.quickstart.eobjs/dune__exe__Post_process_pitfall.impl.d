examples/post_process_pitfall.ml: Array Genlibm Hashtbl Int64 List Option Oracle Polyeval Printf Rlibm Softfp
