examples/generate_all.mli:
