examples/emit_source.mli:
