examples/post_process_pitfall.mli:
