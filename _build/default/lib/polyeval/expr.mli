(** Tiny expression DAGs describing a polynomial evaluation scheme.

    One DAG per (scheme, degree) is the single source of truth for three
    things: the double-precision semantics (every [Add]/[Mul]/[Fma] is one
    IEEE operation, i.e. one rounding), the exact algebraic value (used by
    tests to check that Knuth's adaptation really is an identity), and the
    static cost model — operation counts and critical-path depth, the
    quantity instruction-level parallelism exploits (§4 of the paper).

    Sharing is physical: building [let y = Mul (x, x) in Add (y, y)] counts
    [y] once, exactly like common-subexpression reuse in the generated C
    of the artifact. *)

type t =
  | Var                  (** the evaluation point [x] *)
  | Const of int         (** index into the constant table *)
  | Add of t * t
  | Mul of t * t
  | Fma of t * t * t     (** [Fma (a, b, c)] is [a*b + c] with one rounding *)

(** [eval_float e ~data x]: IEEE double evaluation ([Fma] uses
    [Float.fma]). *)
val eval_float : t -> data:float array -> float -> float

(** [eval_rat e ~data x]: exact rational evaluation (no rounding at all);
    constants are the exact values of the doubles in [data]. *)
val eval_rat : t -> data:float array -> Rat.t -> Rat.t

type cost = {
  mults : int;
  adds : int;
  fmas : int;
  depth : int;  (** critical path length in operations, with perfect ILP *)
}

(** Unique-node operation counts and critical-path depth of the DAG. *)
val cost : t -> cost

val pp_cost : Format.formatter -> cost -> unit
