(** Real-root extraction for cubics in double precision — the "external
    cubic solver" Knuth's degree-5/6 coefficient adaptation needs (§3.2,
    §3.3 of the paper).  A cubic with real coefficients always has a real
    root; we find one with a sign-safe bisection inside the Cauchy root
    bound followed by Newton polishing. *)

(** [real_root ~c3 ~c2 ~c1 ~c0] is a real root of
    [c3 x^3 + c2 x^2 + c1 x + c0].
    @raise Invalid_argument when [c3 = 0] or any coefficient is not
    finite. *)
val real_root : c3:float -> c2:float -> c1:float -> c0:float -> float

(** [eval ~c3 ~c2 ~c1 ~c0 x]: Horner evaluation of the cubic, exposed for
    tests. *)
val eval : c3:float -> c2:float -> c1:float -> c0:float -> float -> float
