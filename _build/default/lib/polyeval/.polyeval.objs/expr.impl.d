lib/polyeval/expr.ml: Array Float Format List Obj Rat Stdlib
