lib/polyeval/cubic.mli:
