lib/polyeval/expr.mli: Format Rat
