lib/polyeval/cubic.ml: Float
