lib/polyeval/polyeval.ml: Array Cubic Expr Float
