lib/polyeval/polyeval.mli: Expr Rat
