(* Robust real root of a cubic: bisection within the Cauchy bound, then a
   few guarded Newton steps.  Bisection on a sign change is immune to the
   flat regions and inflection points that can derail pure Newton. *)

let eval ~c3 ~c2 ~c1 ~c0 x = ((((c3 *. x) +. c2) *. x) +. c1) *. x +. c0

let real_root ~c3 ~c2 ~c1 ~c0 =
  if c3 = 0.0 then invalid_arg "Cubic.real_root: degree < 3";
  if not
       (Float.is_finite c3 && Float.is_finite c2 && Float.is_finite c1
       && Float.is_finite c0)
  then invalid_arg "Cubic.real_root: non-finite coefficient";
  let p = eval ~c3 ~c2 ~c1 ~c0 in
  (* Cauchy bound: all real roots lie in [-m, m]. *)
  let m =
    1.0 +. (Float.max (Float.abs c2) (Float.max (Float.abs c1) (Float.abs c0))
            /. Float.abs c3)
  in
  (* Orient so that p lo <= 0 <= p hi. *)
  let lo, hi = if c3 > 0.0 then (-.m, m) else (m, -.m) in
  let lo = ref lo and hi = ref hi in
  for _ = 1 to 120 do
    let mid = 0.5 *. (!lo +. !hi) in
    if p mid < 0.0 then lo := mid else hi := mid
  done;
  let x = 0.5 *. (!lo +. !hi) in
  (* Newton polish, keeping the iterate inside the bracket. *)
  let inside y =
    let a = Float.min !lo !hi and b = Float.max !lo !hi in
    y >= a && y <= b
  in
  let rec polish x n =
    if n = 0 then x
    else begin
      let d = (((3.0 *. c3 *. x) +. (2.0 *. c2)) *. x) +. c1 in
      if d = 0.0 then x
      else begin
        let x' = x -. (p x /. d) in
        if Float.is_finite x' && inside x' && x' <> x then polish x' (n - 1)
        else x
      end
    end
  in
  polish x 4
