type t =
  | Var
  | Const of int
  | Add of t * t
  | Mul of t * t
  | Fma of t * t * t

let rec eval_float e ~data x =
  match e with
  | Var -> x
  | Const i -> data.(i)
  | Add (a, b) -> eval_float a ~data x +. eval_float b ~data x
  | Mul (a, b) -> eval_float a ~data x *. eval_float b ~data x
  | Fma (a, b, c) ->
      Float.fma (eval_float a ~data x) (eval_float b ~data x)
        (eval_float c ~data x)

let eval_rat e ~data x =
  let consts = Array.map Rat.of_float data in
  let rec go = function
    | Var -> x
    | Const i -> consts.(i)
    | Add (a, b) -> Rat.add (go a) (go b)
    | Mul (a, b) -> Rat.mul (go a) (go b)
    | Fma (a, b, c) -> Rat.add (Rat.mul (go a) (go b)) (go c)
  in
  go e

type cost = { mults : int; adds : int; fmas : int; depth : int }

(* Physical identity gives DAG sharing; node counts are small, so a linear
   scan of visited nodes is fine. *)
let cost e =
  let visited : (Obj.t * int) list ref = ref [] in
  let mults = ref 0 and adds = ref 0 and fmas = ref 0 in
  let rec depth e =
    let key = Obj.repr e in
    match List.assq_opt key !visited with
    | Some d -> d
    | None ->
        let d =
          match e with
          | Var | Const _ -> 0
          | Add (a, b) ->
              incr adds;
              1 + Stdlib.max (depth a) (depth b)
          | Mul (a, b) ->
              incr mults;
              1 + Stdlib.max (depth a) (depth b)
          | Fma (a, b, c) ->
              incr fmas;
              1 + Stdlib.max (depth a) (Stdlib.max (depth b) (depth c))
        in
        visited := (key, d) :: !visited;
        d
  in
  let d = depth e in
  { mults = !mults; adds = !adds; fmas = !fmas; depth = d }

let pp_cost fmt c =
  Format.fprintf fmt "%d mul, %d add, %d fma, depth %d" c.mults c.adds c.fmas
    c.depth
