(** Exact-rational linear programming.

    Substitute for SoPlex (used by the RLibm artifact): a dense two-phase
    primal simplex over {!Rat} with Bland's anti-cycling rule, so
    feasibility verdicts are exact and termination is guaranteed.  On top
    of it, {!solve_interval_system} implements RLibm's low-dimension /
    many-constraint strategy: solve on a small working set of constraints
    and repeatedly add violated ones — the workhorse of polynomial
    generation. *)

(** {1 General simplex} *)

type status =
  | Optimal of Rat.t array * Rat.t
      (** primal solution (free variables) and objective value *)
  | Infeasible
  | Unbounded

(** [maximize ~obj ~rows] solves

    {v max obj . x   s.t.   a_i . x <= b_i  for (a_i, b_i) in rows v}

    over free (sign-unrestricted) variables [x].  Every [a_i] must have
    the same length as [obj]. *)
val maximize : obj:Rat.t array -> rows:(Rat.t array * Rat.t) array -> status

(** {1 RLibm-style interval systems} *)

(** A single polynomial-output constraint: the polynomial evaluated (in
    exact arithmetic) at [x] must land in [[lo, hi]]. *)
type point = { x : Rat.t; lo : Rat.t; hi : Rat.t }

type system_result =
  | Sat of Rat.t array * int list
      (** coefficients (in the order of [powers]) and the final working-set
          indices — feed them back through [initial_working] to warm-start
          the next solve after a small perturbation of the system *)
  | Unsat

(** [solve_interval_system ~powers points] finds coefficients [c] such
    that for every point, [lo <= sum_k c_k * x^powers_k <= hi], using
    constraint generation: an initial working subset is solved with a
    maximize-the-minimum-slack objective, all points are checked against
    the exact rational solution, the most violated ones are added, and the
    loop repeats until everything is satisfied or the working set becomes
    infeasible (which, because constraints only ever accumulate, proves
    the full system infeasible).

    [powers] lists the monomial exponents, e.g. [[|0;1;2;3|]] for a cubic
    with all terms.  [max_added_per_round] (default 64) bounds how many
    violated constraints join the working set per iteration (the batch
    grows geometrically when many rounds are needed, so infeasibility of
    large systems is detected quickly).  [initial_working] warm-starts the
    working set, typically from a previous [Sat]. *)
val solve_interval_system :
  ?max_added_per_round:int ->
  ?log:(string -> unit) ->
  ?initial_working:int list ->
  ?tilt:Rat.t array ->
  ?mono_bits:int ->
  powers:int array ->
  point array ->
  system_result

(** [mono_bits] rounds each monomial [x^k] to that many significant bits
    before building the LP (default: exact).  This keeps exact-rational
    tableau entries small when [x] has a long mantissa; the RLibm pipeline
    can afford it because candidate acceptance is decided by empirical
    double evaluation, never by the LP itself. *)

(** [tilt] (same length as [powers]) adds a tiny linear term over the
    coefficients to the maximize-delta objective, selecting different
    near-optimal vertices; the generation loop randomizes it to search for
    candidates whose double-precision evaluation satisfies constraints the
    default vertex misses. *)

(** [eval_poly ~powers coeffs x] is the exact rational value
    [sum_k coeffs_k * x^powers_k]. *)
val eval_poly : powers:int array -> Rat.t array -> Rat.t -> Rat.t
