(** Generation configuration and presets. *)

type t = {
  tin : Softfp.fmt;  (** largest input representation to support *)
  extra_bits : int;
      (** extra precision of the round-to-odd target (paper: 2) *)
  pieces : int;  (** sub-domains of the reduced domain *)
  table_bits : int;  (** logarithm reduction table size: 2^table_bits *)
  min_degree : int;  (** degree search lower bound *)
  max_degree : int;  (** degree search upper bound (paper: 6) *)
  max_rounds : int;  (** bound N of Algorithm 2's loop *)
  max_specials : int;  (** special-case input budget per piece *)
}

(** The round-to-odd target: same exponent range as [tin] with
    [extra_bits] more precision (the RLibm-All construction). *)
val tout : t -> Softfp.fmt

(** The reduced-width input family used by the exhaustive experiments:
    13 bits total with 5 exponent bits (7936 finite values).  Results are
    correct for all representations of 7..13 bits under all five standard
    rounding modes. *)
val mini_tin : Softfp.fmt

val default_mini : t

(** Per-function presets over {!mini_tin}. *)
val mini_for : Oracle.func -> t

(** binary32 presets (sampled generation; see DESIGN.md on scale). *)
val float32_for : Oracle.func -> t
