(* Rounding intervals for round-to-odd targets (Section 2 of the paper).

   Given the oracle's round-to-odd result y in the (n+2)-bit target T', the
   rounding interval is the set of double-precision values v such that
   rounding v to T' with round-to-odd yields y:

   - y with an odd bit pattern is never exact, so the interval is the open
     interval between its two (even) neighbours;
   - y with an even pattern can only come from an exactly representable
     real, so the interval degenerates to the single point y.

   Endpoints are returned as the extreme *double* values inside the set,
   which is what the LP layer consumes (H = binary64). *)

type t = { lo : float; hi : float }

let contains iv v = iv.lo <= v && v <= iv.hi

let is_degenerate iv = iv.lo = iv.hi

(* [of_round_to_odd tout y] — [y] must be finite in [tout]. *)
let of_round_to_odd tout y =
  if not (Softfp.is_finite tout y) then
    invalid_arg "Intervals.of_round_to_odd: not finite";
  let v = Softfp.to_float tout y in
  if Softfp.frac_odd tout y then begin
    let below =
      let p = Softfp.pred tout y in
      if Softfp.is_finite tout p then Softfp.to_float tout p
      else -.Float.max_float *. 2.0 (* unreachable for our functions *)
    in
    let above =
      let s = Softfp.succ tout y in
      if Softfp.is_finite tout s then Softfp.to_float tout s
      else Float.infinity
    in
    (* Strictly inside the open interval, as doubles. *)
    let lo = Float.succ below in
    let hi = if above = Float.infinity then Float.max_float else Float.pred above in
    { lo; hi }
  end
  else { lo = v; hi = v }
