(** Rounding intervals for round-to-odd targets (§2 of the paper).

    Given the oracle's round-to-odd result [y] in the widened
    representation T', the rounding interval is the set of values of
    H = binary64 that round to [y] under round-to-odd:

    - an odd-patterned [y] is never the image of an exactly representable
      real, so its interval is the open interval between its two (even)
      neighbours;
    - an even-patterned [y] only arises from the exactly representable
      real equal to [y], so its interval degenerates to that point.

    Intervals are materialized as their extreme {e double} members, which
    is what the LP layer consumes. *)

type t = { lo : float; hi : float }

(** Set membership, as doubles. *)
val contains : t -> float -> bool

(** True for the single-point intervals of exactly representable
    results — the origin of the paper's "special case inputs". *)
val is_degenerate : t -> bool

(** [of_round_to_odd tout y] is the rounding interval of the finite
    pattern [y] of format [tout].
    @raise Invalid_argument when [y] is infinite or NaN. *)
val of_round_to_odd : Softfp.fmt -> Softfp.bits -> t
