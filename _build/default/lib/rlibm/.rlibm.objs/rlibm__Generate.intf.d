lib/rlibm/generate.mli: Config Constraints Hashtbl Oracle Polyeval Reduction
