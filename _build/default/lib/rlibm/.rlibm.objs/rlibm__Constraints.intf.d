lib/rlibm/constraints.mli: Config Hashtbl Intervals Reduction
