lib/rlibm/generate.ml: Array Config Constraints Float Fun Hashtbl List Lp Oracle Polyeval Printf Random Rat Reduction Softfp Stdlib
