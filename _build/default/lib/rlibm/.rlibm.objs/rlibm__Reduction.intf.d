lib/rlibm/reduction.mli: Oracle Rat Softfp
