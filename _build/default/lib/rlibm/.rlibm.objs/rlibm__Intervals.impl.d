lib/rlibm/intervals.ml: Float Softfp
