lib/rlibm/config.mli: Oracle Softfp
