lib/rlibm/intervals.mli: Softfp
