lib/rlibm/constraints.ml: Array Config Filename Float Hashtbl Int64 Intervals Marshal Oracle Printf Rat Reduction Softfp Sys
