lib/rlibm/reduction.ml: Array Float Hashtbl Oracle Rat Softfp Stdlib
