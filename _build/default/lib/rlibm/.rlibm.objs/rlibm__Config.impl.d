lib/rlibm/config.ml: Oracle Softfp
