(** Algorithm 2 of the paper: the generate / adapt / validate / constrain
    loop with fast polynomial evaluation integrated into generation.

    Per piece and degree, {!solve_piece} iterates: solve the LP over the
    current reduced intervals; round the rational coefficients to doubles
    and compile them for the requested scheme (for Knuth this runs the
    coefficient adaptation); evaluate the compiled scheme — the exact
    sequence of double operations that ships — on every reduced input;
    shrink the violated side of failing constraints by one double ulp and
    re-solve.  Constraints that cannot be satisfied become special-case
    inputs; the loop keeps the candidate with the fewest violated inputs
    (the cheap analogue of the artifact's minimal-specials search, helped
    by a random objective tilt that walks near-optimal LP vertices).
    {!run} drives the per-piece degree escalation. *)

type piece_outcome =
  | Done of {
      compiled : Polyeval.compiled;
      specials : int64 list;  (** inputs the polynomial cannot serve *)
      rounds : int;
    }
  | Scheme_na  (** scheme undefined at this degree (Knuth outside 4–6) *)
  | Unsat

val solve_piece :
  ?log:(string -> unit) ->
  scheme:Polyeval.scheme ->
  degree:int ->
  max_rounds:int ->
  max_specials:int ->
  Constraints.point array ->
  piece_outcome

type generated = {
  cfg : Config.t;
  family : Reduction.t;
  scheme : Polyeval.scheme;
  pieces : Polyeval.compiled array;  (** one compiled evaluator per piece *)
  specials : (int64, float) Hashtbl.t;
      (** input bits -> stored double result (decoded oracle value) *)
  oracle : (int64, int64) Hashtbl.t;
      (** oracle round-to-odd results collected during generation; shared
          with verification *)
  degrees : int array;  (** per piece *)
  rounds : int array;  (** generation rounds used, per piece *)
  n_constraints : int array;  (** merged constraint points, per piece *)
}

(** Number of special-case inputs (the Table 1 column). *)
val n_specials : generated -> int

(** [run ~cfg ~scheme ~func ~inputs ()] generates the full piecewise
    approximation for [func] over the given input patterns.  [Error]
    carries a description of the piece that could not be satisfied within
    [cfg]'s degree/round/special budgets. *)
val run :
  ?log:(string -> unit) ->
  cfg:Config.t ->
  scheme:Polyeval.scheme ->
  func:Oracle.func ->
  inputs:int64 array ->
  unit ->
  (generated, string) result
