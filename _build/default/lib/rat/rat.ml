(* Exact rationals in canonical form: den > 0, gcd(num, den) = 1. *)

module B = Bigint

type t = { num : B.t; den : B.t }

let is_pow2 n = B.sign n > 0 && B.numbits n - 1 = B.trailing_zeros n

let canon num den =
  let s = B.sign den in
  if s = 0 then raise Division_by_zero;
  let num, den = if s < 0 then (B.neg num, B.neg den) else (num, den) in
  if B.is_zero num then { num = B.zero; den = B.one }
  else if B.is_one den then { num; den }
  else if is_pow2 den then begin
    (* Dyadic fast path: gcd with 2^k needs only trailing-zero counts.
       Most values flowing through the pipeline (doubles, monomials of
       dyadic reduced inputs) hit this case. *)
    let k = B.numbits den - 1 in
    let t = Stdlib.min k (B.trailing_zeros num) in
    if t = 0 then { num; den }
    else { num = B.shift_right num t; den = B.shift_right den t }
  end
  else
    let g = B.gcd num den in
    if B.is_one g then { num; den }
    else { num = B.div num g; den = B.div den g }

let make num den = canon num den
let of_bigint n = { num = n; den = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints a b = canon (B.of_int a) (B.of_int b)

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let half = of_ints 1 2
let minus_one = of_int (-1)

let num q = q.num
let den q = q.den
let sign q = B.sign q.num
let is_zero q = B.is_zero q.num
let is_integer q = B.is_one q.den

let equal a b = B.equal a.num b.num && B.equal a.den b.den

let compare a b =
  let sa = sign a and sb = sign b in
  if sa <> sb then Stdlib.compare sa sb
  else B.compare (B.mul a.num b.den) (B.mul b.num a.den)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg q = { q with num = B.neg q.num }
let abs q = if sign q < 0 then neg q else q

let add a b =
  if B.equal a.den b.den then canon (B.add a.num b.num) a.den
  else canon (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b =
  (* Cross-reduce before multiplying to keep intermediates small. *)
  let g1 = B.gcd a.num b.den and g2 = B.gcd b.num a.den in
  let n1 = if B.is_one g1 then a.num else B.div a.num g1 in
  let d2 = if B.is_one g1 then b.den else B.div b.den g1 in
  let n2 = if B.is_one g2 then b.num else B.div b.num g2 in
  let d1 = if B.is_one g2 then a.den else B.div a.den g2 in
  let num = B.mul n1 n2 and den = B.mul d1 d2 in
  if B.is_zero num then zero else { num; den }

let inv q =
  if is_zero q then raise Division_by_zero;
  if B.sign q.num < 0 then { num = B.neg q.den; den = B.neg q.num }
  else { num = q.den; den = q.num }

let div a b = mul a (inv b)

let pow q n =
  let p k = { num = B.pow q.num k; den = B.pow q.den k } in
  if n >= 0 then p n else inv (p (-n))

let mul_pow2 q k =
  if is_zero q || k = 0 then q
  else if k > 0 then begin
    (* den is odd after removing its factor of 2^t. *)
    let t = if B.is_even q.den then B.trailing_zeros q.den else 0 in
    let cancel = Stdlib.min t k in
    { num = B.shift_left q.num (k - cancel); den = B.shift_right q.den cancel }
  end
  else begin
    let k = -k in
    let t = if B.is_even q.num then B.trailing_zeros q.num else 0 in
    let cancel = Stdlib.min t k in
    { num = B.shift_right q.num cancel; den = B.shift_left q.den (k - cancel) }
  end

let floor q = B.fdiv q.num q.den
let ceil q = B.cdiv q.num q.den
let trunc q = B.div q.num q.den

(* ---------- conversion with doubles ---------- *)

let of_float x =
  if not (Float.is_finite x) then invalid_arg "Rat.of_float: not finite";
  if x = 0.0 then zero
  else begin
    let m, e = Float.frexp x in
    (* m in [0.5, 1); m * 2^53 is an exact integer. *)
    let mi = Int64.of_float (Float.ldexp m 53) in
    mul_pow2 (of_bigint (B.of_string (Int64.to_string mi))) (e - 53)
  end

(* [approx q ~bits]: floor of |q| scaled to exactly [bits] significant bits,
   plus exactness flag.  See the interface for the contract. *)
let approx q ~bits =
  if is_zero q then invalid_arg "Rat.approx: zero";
  if bits <= 0 then invalid_arg "Rat.approx: bits <= 0";
  let n = B.abs q.num and d = q.den in
  let k = B.numbits n - B.numbits d in
  (* 2^(k-1) <= |q| < 2^(k+1); target m in [2^(bits-1), 2^bits). *)
  let attempt e =
    let m =
      if e >= 0 then B.fdiv n (B.shift_left d e)
      else B.fdiv (B.shift_left n (-e)) d
    in
    (m, e)
  in
  let m, e =
    let m, e = attempt (k - bits) in
    if B.numbits m > bits then attempt (k - bits + 1)
    else if B.numbits m < bits then attempt (k - bits - 1)
    else (m, e)
  in
  assert (B.numbits m = bits);
  let exact =
    let back = mul_pow2 (of_bigint m) e in
    equal back (abs q)
  in
  (m, e, exact)

type round_dir = Down | Up | Nearest | Zero

(* Correctly rounded conversion to IEEE binary64 (any direction), with
   gradual underflow and overflow handling. *)
let to_float_dir dir q =
  if is_zero q then 0.0
  else begin
    let neg = sign q < 0 in
    let qa = abs q in
    (* Direction relative to the magnitude. *)
    let mag_dir =
      match dir with
      | Nearest -> `Nearest
      | Zero -> `Down
      | Down -> if neg then `Up else `Down
      | Up -> if neg then `Down else `Up
    in
    let m, e, exact = approx qa ~bits:54 in
    (* Value = (m + eps) * 2^e with 0 <= eps < 1, eps > 0 iff not exact.
       The exponent of the value is e + 53 (since 2^53 <= m < 2^54). *)
    let value_exp = e + 53 in
    (* Available precision: 53 bits for normal values, fewer inside the
       subnormal range.  [prec] may go negative for values far below the
       smallest subnormal; the arithmetic below still yields the fixed
       quantum 2^-1074 because e + drop = -1074 whenever prec < 53. *)
    let prec = if value_exp < -1022 then 53 - (-1022 - value_exp) else 53 in
    let drop = 54 - prec in
    let kept = B.shift_right m drop in
    (* [low_zero k] tells whether bits [0, k) of m are all zero. *)
    let low_zero k =
      k <= 0 || B.equal (B.shift_left (B.shift_right m k) k) m
    in
    let rounded =
      match mag_dir with
      | `Down -> kept
      | `Up -> if exact && low_zero drop then kept else B.succ kept
      | `Nearest ->
          let rbit = drop <= B.numbits m && B.testbit m (drop - 1) in
          let sticky = (not exact) || not (low_zero (drop - 1)) in
          if rbit && (sticky || B.is_odd kept) then B.succ kept else kept
    in
    let result_mag = Float.ldexp (B.to_float rounded) (e + drop) in
    (* ldexp overflows to infinity exactly when the rounded magnitude is
       >= 2^1024; for the directed-down case the correct answer is the
       largest finite double. *)
    let result_mag =
      if result_mag = Float.infinity && mag_dir = `Down then Float.max_float
      else result_mag
    in
    if neg then -.result_mag else result_mag
  end

let to_float q = to_float_dir Nearest q

(* ---------- strings ---------- *)

let to_string q =
  if is_integer q then B.to_string q.num
  else B.to_string q.num ^ "/" ^ B.to_string q.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
      let n = B.of_string (String.sub s 0 i) in
      let d = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make n d
  | None -> (
      (* Integer or decimal/scientific literal. *)
      let mantissa, exp10 =
        match String.index_opt s 'e' with
        | Some i -> (String.sub s 0 i, int_of_string (String.sub s (i + 1) (String.length s - i - 1)))
        | None -> (
            match String.index_opt s 'E' with
            | Some i ->
                (String.sub s 0 i, int_of_string (String.sub s (i + 1) (String.length s - i - 1)))
            | None -> (s, 0))
      in
      match String.index_opt mantissa '.' with
      | None ->
          mul (of_bigint (B.of_string mantissa)) (pow (of_int 10) exp10)
      | Some i ->
          let int_part = String.sub mantissa 0 i in
          let frac = String.sub mantissa (i + 1) (String.length mantissa - i - 1) in
          let digits = String.length frac in
          let whole = B.of_string (int_part ^ frac) in
          mul (of_bigint whole) (pow (of_int 10) (exp10 - digits)))

let to_decimal_string ~digits q =
  let neg = sign q < 0 in
  let qa = abs q in
  let ip = B.fdiv qa.num qa.den in
  let frac = sub qa (of_bigint ip) in
  let scaled = trunc (mul frac (pow (of_int 10) digits)) in
  let fs = B.to_string scaled in
  let fs = String.make (Stdlib.max 0 (digits - String.length fs)) '0' ^ fs in
  let body =
    if digits = 0 then B.to_string ip else B.to_string ip ^ "." ^ fs
  in
  if neg && not (is_zero q) then "-" ^ body else body

let pp fmt q = Format.pp_print_string fmt (to_string q)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
  let ( <> ) a b = not (equal a b)
end
