(** Exact rational arithmetic over {!Bigint}.

    Replacement for GMP's [mpq] layer.  Values are kept in canonical form:
    the denominator is positive and coprime with the numerator; zero is
    [0/1].  Every finite IEEE double converts exactly ({!of_float}), and
    {!to_float} rounds correctly in all five standard directions, which is
    what the interval-inference and LP layers of the RLibm pipeline rely
    on. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val half : t
val minus_one : t

(** {1 Construction} *)

(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val of_bigint : Bigint.t -> t
val of_int : int -> t

(** [of_ints num den] is [num/den]. *)
val of_ints : int -> int -> t

(** [of_float x] is the exact rational value of the finite double [x].
    @raise Invalid_argument on NaN or infinities. *)
val of_float : float -> t

(** [of_string s] parses ["p/q"], an integer, or a decimal/scientific
    literal such as ["-1.25e-3"]. *)
val of_string : string -> t

(** [mul_pow2 q k] is [q * 2]{^ k} (k may be negative); always exact. *)
val mul_pow2 : t -> int -> t

(** {1 Accessors} *)

val num : t -> Bigint.t
val den : t -> Bigint.t

(** {1 Predicates and comparison} *)

val sign : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t
val is_integer : t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero when the divisor is zero. *)
val div : t -> t -> t

(** [inv q] is [1/q].  @raise Division_by_zero on zero. *)
val inv : t -> t

(** [pow q n] is [q]{^ n}; [n] may be negative (then [q] must be nonzero). *)
val pow : t -> int -> t

(** {1 Rounding to integers} *)

val floor : t -> Bigint.t
val ceil : t -> Bigint.t

(** [trunc q] rounds toward zero. *)
val trunc : t -> Bigint.t

(** {1 Conversion to binary floating point} *)

type round_dir = Down | Up | Nearest | Zero

(** [to_float q] is the round-to-nearest-even double closest to [q],
    with overflow to infinity and gradual underflow handled as IEEE
    binary64 does. *)
val to_float : t -> float

(** [to_float_dir dir q] rounds toward the requested direction. *)
val to_float_dir : round_dir -> t -> float

(** [approx q ~bits] for [q <> 0] is [(m, e, exact)] with
    [m * 2^e <= |q| < (m + 1) * 2^e], where [m] has exactly [bits] bits;
    [exact] reports whether [|q| = m * 2^e].  This is the primitive from
    which all rounding modes are derived (floor + sticky).
    @raise Invalid_argument on zero or [bits <= 0]. *)
val approx : t -> bits:int -> Bigint.t * int * bool

(** {1 Printing} *)

(** ["p/q"] (or just ["p"] for integers). *)
val to_string : t -> string

(** Decimal expansion with [digits] fractional digits, truncated toward
    zero, e.g. [to_decimal_string ~digits:10 (of_ints 1 3) = "0.3333333333"]. *)
val to_decimal_string : digits:int -> t -> string

val pp : Format.formatter -> t -> unit

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
end
