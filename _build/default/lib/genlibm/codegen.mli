(** Source-code emission for generated functions.

    The paper's artifact ships its results as 24 standalone C
    implementations; this module produces the same kind of artifact from a
    {!Rlibm.Generate.generated} value: a self-contained C (or OCaml)
    function computing the double-precision result whose rounding is
    correct for every supported representation and rounding mode.

    Polynomial evaluation is emitted from the scheme's {!Expr} DAG, so the
    generated source performs exactly the operation sequence that was
    validated during generation (shared subexpressions become named
    temporaries; [Fma] becomes C [fma]/OCaml [Float.fma]). *)

(** [to_c g ~name] is a complete C translation unit defining
    [double name(double x)] (plus a static special-input table and, for
    the logarithm family, the lookup table). *)
val to_c : Rlibm.Generate.generated -> name:string -> string

(** [to_ocaml g ~name] is an OCaml module body defining
    [val name : float -> float]. *)
val to_ocaml : Rlibm.Generate.generated -> name:string -> string
