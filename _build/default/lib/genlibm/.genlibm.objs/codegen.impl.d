lib/genlibm/codegen.ml: Array Buffer Expr Float Hashtbl List Obj Oracle Polyeval Printf Rlibm Softfp
