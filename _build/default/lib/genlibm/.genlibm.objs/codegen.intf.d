lib/genlibm/codegen.mli: Rlibm
