lib/genlibm/genlibm.mli: Format Oracle Polyeval Rlibm Softfp
