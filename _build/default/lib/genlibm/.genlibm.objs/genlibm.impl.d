lib/genlibm/genlibm.ml: Array Float Format Hashtbl Int64 List Oracle Polyeval Random Rat Rlibm Softfp String
