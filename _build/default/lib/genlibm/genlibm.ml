(* End-to-end generated correctly rounded elementary functions, and the
   exhaustive verification harness (the artifact's "correctness test"). *)

type t = Rlibm.Generate.generated

(* ---------- input sets ---------- *)

let inputs_exhaustive fmt =
  let acc = ref [] in
  Softfp.iter_finite fmt (fun b -> acc := b :: !acc);
  Array.of_list !acc

(* Stratified samples for wide formats (binary32): every exponent value
   contributes, plus dense coverage near 0, 1 and the extremes. *)
let inputs_sampled fmt ~count ~seed =
  let st = Random.State.make [| seed |] in
  let w = Softfp.width fmt in
  let acc = ref [] in
  let add b = if Softfp.is_finite fmt b then acc := b :: !acc in
  (* boundary patterns *)
  add (Softfp.zero_bits fmt);
  add (Softfp.neg_zero_bits fmt);
  add (Softfp.min_subnormal_bits fmt ~neg:false);
  add (Softfp.min_subnormal_bits fmt ~neg:true);
  add (Softfp.max_finite_bits fmt ~neg:false);
  add (Softfp.max_finite_bits fmt ~neg:true);
  for _ = 1 to count - 6 do
    let bits = Random.State.int64 st (Int64.shift_left 1L w) in
    add bits
  done;
  Array.of_list !acc

(* ---------- generation ---------- *)

let generate ?log ~(cfg : Rlibm.Config.t) ~scheme func =
  let inputs = inputs_exhaustive cfg.tin in
  Rlibm.Generate.run ?log ~cfg ~scheme ~func ~inputs ()

let generate_sampled ?log ~(cfg : Rlibm.Config.t) ~scheme ~count ~seed func =
  let inputs = inputs_sampled cfg.tin ~count ~seed in
  (Rlibm.Generate.run ?log ~cfg ~scheme ~func ~inputs (), inputs)

(* ---------- evaluation ---------- *)

let is_exp_family (f : Oracle.func) =
  match f with Exp | Exp2 | Exp10 -> true | Log | Log2 | Log10 -> false

(* The generated double-precision implementation: special table, analytic
   shortcut, then range reduction / polynomial / output compensation. *)
let eval_bits (g : t) (x : int64) =
  let tin = g.cfg.tin in
  match Softfp.classify tin x with
  | Softfp.NaN -> Float.nan
  | Softfp.Inf ->
      if Softfp.sign_bit tin x then
        if is_exp_family g.family.func then 0.0 else Float.nan
      else Float.infinity
  | Softfp.Zero | Softfp.Subnormal | Softfp.Normal -> (
      match Hashtbl.find_opt g.specials x with
      | Some v -> v
      | None -> (
          let xf = Softfp.to_float tin x in
          match g.family.shortcut xf with
          | Some v -> v
          | None ->
              let red = g.family.reduce xf in
              red.oc (g.pieces.(red.piece).Polyeval.eval red.r)))

(* Fast path used by the benchmarks: skips the special-table lookup cost
   difference across schemes by keeping the exact same control flow. *)
let eval_float (g : t) (xf : float) =
  match g.family.shortcut xf with
  | Some v -> v
  | None ->
      let red = g.family.reduce xf in
      red.oc (g.pieces.(red.piece).Polyeval.eval red.r)

(* ---------- rounding of results ---------- *)

let round_result fmt mode v =
  if Float.is_nan v then Softfp.nan_bits fmt
  else if v = Float.infinity then Softfp.inf_bits fmt ~neg:false
  else if v = Float.neg_infinity then Softfp.inf_bits fmt ~neg:true
  else if v = 0.0 then
    if 1.0 /. v < 0.0 then Softfp.neg_zero_bits fmt else Softfp.zero_bits fmt
  else Softfp.of_rat fmt mode (Rat.of_float v)

(* ---------- verification ---------- *)

type verify_report = {
  total : int;
  checked : int;  (** finite inputs verified *)
  wrong34 : int;  (** wrong round-to-odd result in the widened target *)
  narrow_checks : int;
  wrong_narrow : int;
      (** wrong result for some narrower representation / rounding mode *)
}

let pp_verify_report fmt (r : verify_report) =
  Format.fprintf fmt
    "%d inputs: %d checked, %d wrong round-to-odd, %d/%d wrong narrowed"
    r.total r.checked r.wrong34 r.wrong_narrow r.narrow_checks

(* [verify g ~inputs] checks, for every finite input:

   1. the double produced by the implementation rounds (round-to-odd, into
      the widened format) to the oracle's round-to-odd result, and
   2. rounding the implementation's double *directly* into every supported
      representation (E+2 .. n total bits) under every standard rounding
      mode agrees with double-rounding the oracle result — i.e. the
      RLibm-All guarantee holds for the generated function. *)
let verify ?(narrow = true) (g : t) ~(inputs : int64 array) =
  let tin = g.cfg.tin in
  let tout = Rlibm.Config.tout g.cfg in
  let narrow_fmts =
    List.init
      (Softfp.width tin - (tin.Softfp.ebits + 2) + 1)
      (fun i ->
        Softfp.make_fmt ~ebits:tin.Softfp.ebits ~prec:(2 + i))
  in
  let total = ref 0 and checked = ref 0 in
  let wrong34 = ref 0 and wrong_narrow = ref 0 and narrow_checks = ref 0 in
  Array.iter
    (fun x ->
      incr total;
      if Softfp.is_finite tin x then begin
        incr checked;
        let v = eval_bits g x in
        let xq = Softfp.to_rat tin x in
        if not (Oracle.domain_ok g.family.func xq) then begin
          (* Logarithm of zero / a negative number: the expected results
             are -inf and NaN respectively, in every representation. *)
          let expect_nan = Rat.sign xq < 0 in
          let ok =
            if expect_nan then Float.is_nan v else v = Float.neg_infinity
          in
          if not ok then incr wrong34
        end
        else begin
        let y_true =
          match Hashtbl.find_opt g.oracle x with
          | Some y -> y
          | None ->
              (* Shortcut-path inputs: the oracle's own range shortcut makes
                 this cheap. *)
              let y =
                Oracle.correctly_round g.family.func
                  (Softfp.to_rat tin x) ~fmt:tout ~mode:Softfp.RTO
              in
              Hashtbl.replace g.oracle x y;
              y
        in
        let y_impl = round_result tout Softfp.RTO v in
        if not (Int64.equal y_impl y_true) then incr wrong34
        else if narrow then
          List.iter
            (fun f ->
              List.iter
                (fun mode ->
                  incr narrow_checks;
                  let direct = round_result f mode v in
                  let doubled = Softfp.narrow ~src:tout ~dst:f mode y_true in
                  if not (Int64.equal direct doubled) then incr wrong_narrow)
                Softfp.all_standard_modes)
            narrow_fmts
        end
      end)
    inputs;
  {
    total = !total;
    checked = !checked;
    wrong34 = !wrong34;
    narrow_checks = !narrow_checks;
    wrong_narrow = !wrong_narrow;
  }

(* ---------- reporting (Table 1 rows) ---------- *)

type table1_row = {
  func : Oracle.func;
  scheme : Polyeval.scheme;
  n_pieces : int;
  degrees : int list;
  n_specials : int;
}

let table1_row (g : t) =
  {
    func = g.family.func;
    scheme = g.scheme;
    n_pieces = Array.length g.pieces;
    degrees = Array.to_list g.degrees;
    n_specials = Rlibm.Generate.n_specials g;
  }

let pp_table1_row fmt (r : table1_row) =
  Format.fprintf fmt "%-6s %-11s pieces=%d degrees=%s specials=%d"
    (Oracle.name r.func)
    (Polyeval.scheme_name r.scheme)
    r.n_pieces
    (String.concat "," (List.map string_of_int r.degrees))
    r.n_specials
