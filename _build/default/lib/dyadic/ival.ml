(* Outward-rounded dyadic intervals. *)

module D = Dyadic

type t = { lo : D.t; hi : D.t }

let make lo hi =
  if D.compare lo hi > 0 then invalid_arg "Ival.make: lo > hi";
  { lo; hi }

let point d = { lo = d; hi = d }
let of_int n = point (D.of_int n)

let of_rat ~prec q =
  { lo = D.of_rat D.Down ~prec q; hi = D.of_rat D.Up ~prec q }

let to_rats iv = (D.to_rat iv.lo, D.to_rat iv.hi)
let lo iv = iv.lo
let hi iv = iv.hi

let neg iv = { lo = D.neg iv.hi; hi = D.neg iv.lo }

let add ~prec a b =
  { lo = D.round D.Down ~prec (D.add a.lo b.lo);
    hi = D.round D.Up ~prec (D.add a.hi b.hi) }

let sub ~prec a b = add ~prec a (neg b)

let mul ~prec a b =
  let products = [ D.mul a.lo b.lo; D.mul a.lo b.hi; D.mul a.hi b.lo; D.mul a.hi b.hi ] in
  let lo = List.fold_left D.min (List.hd products) (List.tl products) in
  let hi = List.fold_left D.max (List.hd products) (List.tl products) in
  { lo = D.round D.Down ~prec lo; hi = D.round D.Up ~prec hi }

let div ~prec a b =
  if D.sign b.lo <= 0 && D.sign b.hi >= 0 then raise Division_by_zero;
  let q lo_dir x y = D.div lo_dir ~prec x y in
  let candidates_lo =
    [ q D.Down a.lo b.lo; q D.Down a.lo b.hi; q D.Down a.hi b.lo; q D.Down a.hi b.hi ]
  in
  let candidates_hi =
    [ q D.Up a.lo b.lo; q D.Up a.lo b.hi; q D.Up a.hi b.lo; q D.Up a.hi b.hi ]
  in
  { lo = List.fold_left D.min (List.hd candidates_lo) (List.tl candidates_lo);
    hi = List.fold_left D.max (List.hd candidates_hi) (List.tl candidates_hi) }

let mul_2exp iv k = { lo = D.mul_2exp iv.lo k; hi = D.mul_2exp iv.hi k }

let widen iv err =
  if D.sign err < 0 then invalid_arg "Ival.widen: negative error";
  { lo = D.sub iv.lo err; hi = D.add iv.hi err }

let contains iv d = D.compare iv.lo d <= 0 && D.compare d iv.hi <= 0

let mag_hi iv = D.max (D.abs iv.lo) (D.abs iv.hi)

let width iv = D.sub iv.hi iv.lo

let pp fmt iv = Format.fprintf fmt "[%a, %a]" D.pp iv.lo D.pp iv.hi
