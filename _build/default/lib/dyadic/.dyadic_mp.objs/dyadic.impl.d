lib/dyadic/dyadic.ml: Bigint Format Printf Rat Stdlib
