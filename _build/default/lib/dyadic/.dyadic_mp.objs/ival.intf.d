lib/dyadic/ival.mli: Dyadic Format Rat
