lib/dyadic/ival.ml: Dyadic Format List
