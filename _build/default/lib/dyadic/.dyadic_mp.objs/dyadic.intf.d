lib/dyadic/dyadic.mli: Bigint Format Rat
