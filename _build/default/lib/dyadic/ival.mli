(** Outward-rounded interval arithmetic over {!Dyadic} numbers.

    Every operation takes the working precision [prec] and returns an
    interval guaranteed to contain the exact mathematical result: lower
    endpoints round toward -infinity, upper endpoints toward +infinity.
    This gives the oracle rigorous enclosures without error-term
    bookkeeping. *)

type t = private { lo : Dyadic.t; hi : Dyadic.t }

(** [make lo hi] requires [lo <= hi]. *)
val make : Dyadic.t -> Dyadic.t -> t

(** Degenerate (exact) interval. *)
val point : Dyadic.t -> t

val of_int : int -> t

(** [of_rat ~prec q] encloses the rational [q] within one ulp at [prec]. *)
val of_rat : prec:int -> Rat.t -> t

(** Exact rational endpoints. *)
val to_rats : t -> Rat.t * Rat.t

val lo : t -> Dyadic.t
val hi : t -> Dyadic.t

val neg : t -> t
val add : prec:int -> t -> t -> t
val sub : prec:int -> t -> t -> t
val mul : prec:int -> t -> t -> t

(** @raise Division_by_zero when the divisor interval contains zero. *)
val div : prec:int -> t -> t -> t

(** Exact scaling by a power of two. *)
val mul_2exp : t -> int -> t

(** [widen iv err] grows the interval by the absolute error bound [err >= 0]
    on both sides. *)
val widen : t -> Dyadic.t -> t

(** [contains iv d]: membership of an exact dyadic. *)
val contains : t -> Dyadic.t -> bool

(** Upper bound of [|x|] over the interval. *)
val mag_hi : t -> Dyadic.t

(** Exact width [hi - lo]. *)
val width : t -> Dyadic.t

val pp : Format.formatter -> t -> unit
