(** Dyadic (binary) multi-precision numbers [m * 2^e].

    This is the computational engine behind the oracle (the stand-in for
    MPFR): addition, subtraction and multiplication are exact; results are
    explicitly re-rounded to a working precision with a chosen direction,
    which is what the outward-rounded interval layer ({!Ival}) builds on. *)

type t

type dir = Down | Up
(** Rounding directions toward -infinity / +infinity. *)

val zero : t
val one : t

val of_int : int -> t
val of_bigint : Bigint.t -> t

(** [make m e] is [m * 2^e]. *)
val make : Bigint.t -> int -> t

(** [mantissa d], [exponent d]: the normalized components ([mantissa] is
    odd unless the value is zero, in which case [exponent] is 0). *)
val mantissa : t -> Bigint.t

val exponent : t -> int

(** [of_rat dir ~prec q] is the dyadic with at most [prec] significant bits
    nearest [q] in direction [dir]; exact when [q] is dyadic and fits. *)
val of_rat : dir -> prec:int -> Rat.t -> t

(** Exact conversion; never loses information. *)
val to_rat : t -> Rat.t

(** Round-to-nearest double (may overflow to infinity). *)
val to_float : t -> float

val is_zero : t -> bool
val sign : t -> int
val neg : t -> t
val abs : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** Exact operations (the result may grow arbitrarily wide). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_2exp : t -> int -> t

(** [round dir ~prec d] keeps at most [prec] significant bits, rounding in
    direction [dir]. *)
val round : dir -> prec:int -> t -> t

(** [div dir ~prec a b] is [a / b] with [prec] significant bits, rounded in
    direction [dir].
    @raise Division_by_zero when [b] is zero. *)
val div : dir -> prec:int -> t -> t -> t

(** [pow2 k] is the dyadic [2^k]. *)
val pow2 : int -> t

(** Number of significant bits of the mantissa (0 for zero). *)
val numbits : t -> int

(** [log2_floor d] for [d <> 0] is [⌊log2 |d|⌋]. *)
val log2_floor : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
