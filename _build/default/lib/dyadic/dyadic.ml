(* Dyadic numbers m * 2^e, normalized so that m is odd (or zero). *)

module B = Bigint

type t = { m : B.t; e : int }

type dir = Down | Up

let normalize m e =
  if B.is_zero m then { m = B.zero; e = 0 }
  else begin
    let tz = B.trailing_zeros m in
    if tz = 0 then { m; e } else { m = B.shift_right m tz; e = e + tz }
  end

let zero = { m = B.zero; e = 0 }
let one = { m = B.one; e = 0 }

let make m e = normalize m e
let of_bigint m = normalize m 0
let of_int n = of_bigint (B.of_int n)
let pow2 k = { m = B.one; e = k }

let mantissa d = d.m
let exponent d = d.e

let is_zero d = B.is_zero d.m
let sign d = B.sign d.m
let neg d = { d with m = B.neg d.m }
let abs d = { d with m = B.abs d.m }

let to_rat d = Rat.mul_pow2 (Rat.of_bigint d.m) d.e

let numbits d = B.numbits d.m
let log2_floor d =
  if is_zero d then invalid_arg "Dyadic.log2_floor: zero";
  numbits d - 1 + d.e

let compare a b =
  let sa = sign a and sb = sign b in
  if sa <> sb then Stdlib.compare sa sb
  else if sa = 0 then 0
  else begin
    (* Same nonzero sign: compare magnitudes via exponents first. *)
    let la = log2_floor a and lb = log2_floor b in
    if la <> lb then if Stdlib.compare la lb > 0 = (sa > 0) then 1 else -1
    else begin
      (* Align and compare exactly. *)
      let shift = a.e - b.e in
      if shift >= 0 then B.compare (B.shift_left a.m shift) b.m
      else B.compare a.m (B.shift_left b.m (-shift))
    end
  end

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let add a b =
  if is_zero a then b
  else if is_zero b then a
  else begin
    let e = Stdlib.min a.e b.e in
    let ma = B.shift_left a.m (a.e - e) in
    let mb = B.shift_left b.m (b.e - e) in
    normalize (B.add ma mb) e
  end

let sub a b = add a (neg b)

let mul a b = normalize (B.mul a.m b.m) (a.e + b.e)
let mul_2exp d k = if is_zero d then d else { d with e = d.e + k }

(* Directed rounding to [prec] significant bits.  Down is toward -infinity,
   Up toward +infinity, on the signed value. *)
let round dir ~prec d =
  if prec <= 0 then invalid_arg "Dyadic.round: prec <= 0";
  let nb = numbits d in
  if nb <= prec then d
  else begin
    let dropbits = nb - prec in
    let mag = B.abs d.m in
    let kept = B.shift_right mag dropbits in
    let exact = B.equal (B.shift_left kept dropbits) mag in
    let bump =
      (* Increase magnitude when rounding away from zero is requested. *)
      match (dir, B.sign d.m > 0) with
      | Down, true -> false
      | Down, false -> not exact
      | Up, true -> not exact
      | Up, false -> false
    in
    let kept = if bump then B.succ kept else kept in
    let m = if B.sign d.m > 0 then kept else B.neg kept in
    normalize m (d.e + dropbits)
  end

let of_rat dir ~prec q =
  if Rat.is_zero q then zero
  else if Bigint.is_one (Rat.den q) then round dir ~prec (of_bigint (Rat.num q))
  else begin
    let m, e, exact = Rat.approx q ~bits:prec in
    (* m * 2^e <= |q| < (m+1) * 2^e *)
    let neg = Rat.sign q < 0 in
    let bump =
      (not exact)
      && (match (dir, neg) with
         | Down, true -> true
         | Down, false -> false
         | Up, true -> false
         | Up, false -> true)
    in
    let m = if bump then B.succ m else m in
    normalize (if neg then B.neg m else m) e
  end

let div dir ~prec a b =
  if is_zero b then raise Division_by_zero;
  if is_zero a then zero
  else begin
    let neg = sign a * sign b < 0 in
    let ma = B.abs a.m and mb = B.abs b.m in
    (* Scale the dividend so the magnitude quotient has > prec bits. *)
    let k = prec + B.numbits mb - B.numbits ma + 2 in
    let k = Stdlib.max k 0 in
    let q, r = B.divmod (B.shift_left ma k) mb in
    let exact = B.is_zero r in
    let bump =
      (not exact)
      && (match (dir, neg) with
         | Down, true -> true
         | Down, false -> false
         | Up, true -> false
         | Up, false -> true)
    in
    let q = if bump then B.succ q else q in
    let d = normalize (if neg then B.neg q else q) (a.e - b.e - k) in
    (* The quotient may carry one bit beyond prec; trim with the same
       direction (safe: rounding twice in one direction is monotone). *)
    round dir ~prec d
  end

let to_float d = Rat.to_float (to_rat d)

let to_string d = Printf.sprintf "%s*2^%d" (B.to_string d.m) d.e
let pp fmt d = Format.pp_print_string fmt (to_string d)
