(** Arbitrary-precision signed integers.

    This module is a from-scratch replacement for GMP's [mpz] layer (the
    sealed build environment provides no [zarith]).  Values are immutable
    sign-magnitude numbers stored as little-endian arrays of 30-bit limbs.

    All operations are total unless documented otherwise; division by zero
    raises [Division_by_zero]. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t
val ten : t

(** {1 Conversions} *)

(** [of_int n] is the big integer equal to the native integer [n]. *)
val of_int : int -> t

(** [to_int x] is [Some n] when [x] fits in a native [int]. *)
val to_int : t -> int option

(** [to_int_exn x] is [x] as a native [int].
    @raise Failure when [x] does not fit. *)
val to_int_exn : t -> int

(** [of_string s] parses an optionally signed decimal literal.  Underscores
    are permitted between digits.  A ["0x"]/["0X"] prefix selects
    hexadecimal.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

(** [to_string x] is the decimal representation of [x]. *)
val to_string : t -> string

(** [to_float x] is the correctly rounded (round-to-nearest-even) double
    nearest to [x]. *)
val to_float : t -> float

(** {1 Predicates and comparisons} *)

val sign : t -> int
val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool
val is_odd : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

(** [add_int x n] is [add x (of_int n)] without the intermediate allocation
    for small [n]. *)
val add_int : t -> int -> t

val mul_int : t -> int -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [q] truncated toward zero
    and [sign r = sign a] (or [r = 0]).  Matches C99 / OCaml [( / )] and
    [(mod)] semantics.
    @raise Division_by_zero when [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [fdiv a b] is the floor division [⌊a / b⌋]. *)
val fdiv : t -> t -> t

(** [cdiv a b] is the ceiling division [⌈a / b⌉]. *)
val cdiv : t -> t -> t

(** [fdivmod a b] is [(q, r)] with [q = fdiv a b] and [r = a - q*b]
    (so [0 <= r < |b|] when [b > 0]). *)
val fdivmod : t -> t -> t * t

(** [pow x n] is [x]{^ n} for [n >= 0].
    @raise Invalid_argument when [n < 0]. *)
val pow : t -> int -> t

(** [pow2 n] is 2{^ n} for [n >= 0]. *)
val pow2 : int -> t

val gcd : t -> t -> t

(** {1 Bit-level operations} *)

(** [shift_left x k] is [x * 2]{^ k}.  [k >= 0]. *)
val shift_left : t -> int -> t

(** [shift_right x k] is [⌊x / 2]{^ k}[⌋] (arithmetic shift: floors toward
    negative infinity).  [k >= 0]. *)
val shift_right : t -> int -> t

(** [numbits x] is the position of the highest set bit of [|x|] plus one;
    [numbits zero = 0]. *)
val numbits : t -> int

(** [testbit x k] is bit [k] of the magnitude [|x|]. *)
val testbit : t -> int -> bool

(** [trailing_zeros x] is the number of trailing zero bits of [|x|];
    raises [Invalid_argument] on zero. *)
val trailing_zeros : t -> int

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
end
