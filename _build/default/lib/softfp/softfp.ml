(* Parameterized software floating point on top of exact rationals.

   A pattern is stored in the low [width] bits of an int64 as
   [sign | biased exponent | fraction].  All arithmetic on the fields is
   done in native ints (width <= 63). *)

module B = Bigint

type fmt = { ebits : int; prec : int }

let make_fmt ~ebits ~prec =
  if ebits < 1 || ebits > 15 then invalid_arg "Softfp.make_fmt: ebits";
  if prec < 2 then invalid_arg "Softfp.make_fmt: prec";
  if 1 + ebits + prec - 1 > 63 then invalid_arg "Softfp.make_fmt: width > 63";
  { ebits; prec }

let binary16 = make_fmt ~ebits:5 ~prec:11
let bfloat16 = make_fmt ~ebits:8 ~prec:8
let tensorfloat32 = make_fmt ~ebits:8 ~prec:11
let binary32 = make_fmt ~ebits:8 ~prec:24
let fp34 = make_fmt ~ebits:8 ~prec:26

let with_extra_prec fmt k = make_fmt ~ebits:fmt.ebits ~prec:(fmt.prec + k)

let width fmt = 1 + fmt.ebits + fmt.prec - 1
let emax fmt = (1 lsl (fmt.ebits - 1)) - 1
let emin fmt = 1 - emax fmt
let bias fmt = emax fmt

type mode = RNE | RNA | RTZ | RTU | RTD | RTO

let all_standard_modes = [ RNE; RNA; RTZ; RTU; RTD ]

let mode_to_string = function
  | RNE -> "rn-even"
  | RNA -> "rn-away"
  | RTZ -> "rz"
  | RTU -> "ru"
  | RTD -> "rd"
  | RTO -> "ro"

type bits = int64

(* Field helpers, in native ints. *)
let fwidth fmt = fmt.prec - 1
let fmask fmt = (1 lsl fwidth fmt) - 1
let emask fmt = (1 lsl fmt.ebits) - 1

let to_fields fmt (b : bits) =
  let n = Int64.to_int b in
  let f = n land fmask fmt in
  let be = (n lsr fwidth fmt) land emask fmt in
  let s = (n lsr (width fmt - 1)) land 1 in
  (s, be, f)

let of_fields fmt s be f : bits =
  Int64.of_int ((s lsl (width fmt - 1)) lor (be lsl fwidth fmt) lor f)

let zero_bits _fmt : bits = 0L
let neg_zero_bits fmt = of_fields fmt 1 0 0
let inf_bits fmt ~neg = of_fields fmt (if neg then 1 else 0) (emask fmt) 0
let nan_bits fmt = of_fields fmt 0 (emask fmt) 1
let max_finite_bits fmt ~neg =
  of_fields fmt (if neg then 1 else 0) (emask fmt - 1) (fmask fmt)
let min_subnormal_bits fmt ~neg = of_fields fmt (if neg then 1 else 0) 0 1

type cls = Zero | Subnormal | Normal | Inf | NaN

let classify fmt b =
  let _, be, f = to_fields fmt b in
  if be = emask fmt then if f = 0 then Inf else NaN
  else if be = 0 then if f = 0 then Zero else Subnormal
  else Normal

let is_finite fmt b =
  match classify fmt b with Zero | Subnormal | Normal -> true | Inf | NaN -> false

let is_nan fmt b = classify fmt b = NaN
let sign_bit fmt b = let s, _, _ = to_fields fmt b in s = 1
let frac_odd _fmt (b : bits) = Int64.to_int b land 1 = 1

(* ---------- decode ---------- *)

let to_rat fmt b =
  match classify fmt b with
  | Inf | NaN -> invalid_arg "Softfp.to_rat: not finite"
  | Zero -> Rat.zero
  | Subnormal ->
      let s, _, f = to_fields fmt b in
      let v = Rat.mul_pow2 (Rat.of_int f) (emin fmt - fwidth fmt) in
      if s = 1 then Rat.neg v else v
  | Normal ->
      let s, be, f = to_fields fmt b in
      let mant = (1 lsl fwidth fmt) lor f in
      let v = Rat.mul_pow2 (Rat.of_int mant) (be - bias fmt - fwidth fmt) in
      if s = 1 then Rat.neg v else v

(* ---------- encode (correct rounding from an exact rational) ---------- *)

let overflow_bits fmt mode ~neg =
  match mode with
  | RNE | RNA -> inf_bits fmt ~neg
  | RTZ | RTO -> max_finite_bits fmt ~neg
  | RTU -> if neg then max_finite_bits fmt ~neg else inf_bits fmt ~neg
  | RTD -> if neg then inf_bits fmt ~neg else max_finite_bits fmt ~neg

let of_rat fmt mode q =
  if Rat.is_zero q then zero_bits fmt
  else begin
    let neg = Rat.sign q < 0 in
    let qa = Rat.abs q in
    let m, e, exact = Rat.approx qa ~bits:(fmt.prec + 1) in
    (* qa = (m + eps) * 2^e, 0 <= eps < 1; 2^prec <= m < 2^(prec+1). *)
    let value_exp = e + fmt.prec in
    let emin = emin fmt in
    let prec_avail =
      if value_exp < emin then fmt.prec - (emin - value_exp) else fmt.prec
    in
    let drop = fmt.prec + 1 - prec_avail in
    let kept = B.shift_right m drop in
    let low_zero k = k <= 0 || B.equal (B.shift_left (B.shift_right m k) k) m in
    let inexact = (not exact) || not (low_zero drop) in
    let rbit = drop >= 1 && drop <= B.numbits m && B.testbit m (drop - 1) in
    let sticky = (not exact) || not (low_zero (drop - 1)) in
    let incr =
      match mode with
      | RNE -> rbit && (sticky || B.is_odd kept)
      | RNA -> rbit
      | RTZ -> false
      | RTU -> inexact && not neg
      | RTD -> inexact && neg
      | RTO -> inexact && B.is_even kept
    in
    let kept = if incr then B.succ kept else kept in
    if B.is_zero kept then
      (if neg then neg_zero_bits fmt else zero_bits fmt)
    else begin
      let quantum = e + drop in
      let nb = B.numbits kept in
      let res_exp = nb + quantum - 1 in
      if res_exp > emax fmt then overflow_bits fmt mode ~neg
      else begin
        let s = if neg then 1 else 0 in
        let befrac =
          if res_exp < emin then
            (* Subnormal: quantum = emin - (prec-1) by construction, so the
               pattern's (exponent, fraction) group is just [kept]. *)
            B.to_int_exn kept
          else begin
            let shift = fmt.prec - nb in
            let mant =
              if shift >= 0 then B.shift_left kept shift
              else B.shift_right kept (-shift)
            in
            ((res_exp - emin) lsl fwidth fmt) + B.to_int_exn mant
          end
        in
        Int64.of_int ((s lsl (width fmt - 1)) lor befrac)
      end
    end
  end

let round_float fmt mode x =
  if Float.is_nan x then nan_bits fmt
  else if x = Float.infinity then inf_bits fmt ~neg:false
  else if x = Float.neg_infinity then inf_bits fmt ~neg:true
  else if x = 0.0 then
    if 1.0 /. x = Float.neg_infinity then neg_zero_bits fmt else zero_bits fmt
  else of_rat fmt mode (Rat.of_float x)

let to_float fmt b =
  match classify fmt b with
  | NaN -> Float.nan
  | Inf -> if sign_bit fmt b then Float.neg_infinity else Float.infinity
  | Zero -> if sign_bit fmt b then -0.0 else 0.0
  | Subnormal | Normal -> Rat.to_float (to_rat fmt b)

(* ---------- ordering and navigation ---------- *)

let ordinal fmt b =
  let n = Int64.to_int b in
  let mag = n land ((1 lsl (width fmt - 1)) - 1) in
  if n lsr (width fmt - 1) land 1 = 1 then -mag - 1 else mag

let of_ordinal fmt o =
  if o >= 0 then Int64.of_int o
  else Int64.of_int ((1 lsl (width fmt - 1)) lor (-o - 1))

let succ fmt b =
  (match classify fmt b with
  | NaN -> invalid_arg "Softfp.succ: nan"
  | Inf when not (sign_bit fmt b) -> invalid_arg "Softfp.succ: +inf"
  | _ -> ());
  of_ordinal fmt (ordinal fmt b + 1)

let pred fmt b =
  (match classify fmt b with
  | NaN -> invalid_arg "Softfp.pred: nan"
  | Inf when sign_bit fmt b -> invalid_arg "Softfp.pred: -inf"
  | _ -> ());
  of_ordinal fmt (ordinal fmt b - 1)

let count_finite fmt = 2 * ((emask fmt) * (1 lsl fwidth fmt))

let iter_finite fmt f =
  let max_befrac = (emask fmt) lsl fwidth fmt in
  for s = 0 to 1 do
    let hi = s lsl (width fmt - 1) in
    for befrac = 0 to max_befrac - 1 do
      f (Int64.of_int (hi lor befrac))
    done
  done

(* ---------- double rounding ---------- *)

let narrow ~src ~dst mode b =
  match classify src b with
  | NaN -> nan_bits dst
  | Inf -> inf_bits dst ~neg:(sign_bit src b)
  | Zero -> if sign_bit src b then neg_zero_bits dst else zero_bits dst
  | Subnormal | Normal -> of_rat dst mode (to_rat src b)

(* ---------- native bridges ---------- *)

let bits_of_float32 x =
  Int64.logand (Int64.of_int32 (Int32.bits_of_float x)) 0xFFFFFFFFL

let float32_of_bits b = Int32.float_of_bits (Int64.to_int32 b)

let pp_bits fmt ppf b =
  match classify fmt b with
  | NaN -> Format.fprintf ppf "nan"
  | Inf -> Format.fprintf ppf "%cinf" (if sign_bit fmt b then '-' else '+')
  | Zero -> Format.fprintf ppf "%c0" (if sign_bit fmt b then '-' else '+')
  | Subnormal | Normal ->
      Format.fprintf ppf "%h[0x%Lx]" (to_float fmt b) b
