lib/softfp/softfp.ml: Bigint Float Format Int32 Int64 Rat
