lib/softfp/fparith.mli: Softfp
