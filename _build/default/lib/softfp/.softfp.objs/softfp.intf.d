lib/softfp/softfp.mli: Format Rat
