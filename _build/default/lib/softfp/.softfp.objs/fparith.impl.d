lib/softfp/fparith.ml: Int64 Rat Softfp
