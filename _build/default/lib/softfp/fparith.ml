(* Correctly rounded in-format arithmetic: decode exactly, compute in
   rationals, round once. *)

module F = Softfp

(* Operand classification for the IEEE special-value rules. *)
type operand = Nan | Inf of bool (* negative? *) | Fin of Rat.t * bool
(* the bool on Fin is the sign bit, kept to implement signed-zero rules *)

let classify fmt b =
  match F.classify fmt b with
  | F.NaN -> Nan
  | F.Inf -> Inf (F.sign_bit fmt b)
  | F.Zero | F.Subnormal | F.Normal -> Fin (F.to_rat fmt b, F.sign_bit fmt b)

(* IEEE 754 §6.3 zero-sign rules.  For products/quotients the sign of an
   exact zero is the XOR of the operand signs in every mode; for sums the
   sign of an exact cancellation is +0 in all modes except
   round-toward-negative, while like-signed zero sums keep their sign. *)
let signed_zero fmt ~neg =
  if neg then F.neg_zero_bits fmt else F.zero_bits fmt

let round_product fmt mode q ~neg =
  if Rat.is_zero q then signed_zero fmt ~neg else F.of_rat fmt mode q

let round_sum fmt (mode : F.mode) q ~sa ~sb =
  if Rat.is_zero q then
    if sa = sb then signed_zero fmt ~neg:sa
    else signed_zero fmt ~neg:(mode = F.RTD)
  else F.of_rat fmt mode q

let add fmt mode a b =
  match (classify fmt a, classify fmt b) with
  | Nan, _ | _, Nan -> F.nan_bits fmt
  | Inf sa, Inf sb -> if sa = sb then a else F.nan_bits fmt
  | Inf s, Fin _ | Fin _, Inf s -> F.inf_bits fmt ~neg:s
  | Fin (qa, sa), Fin (qb, sb) -> round_sum fmt mode (Rat.add qa qb) ~sa ~sb

let sub fmt mode a b =
  (* x - y = x + (-y); flipping the sign bit covers NaN payloads too. *)
  let nb =
    Int64.logxor b (Int64.shift_left 1L (F.width fmt - 1))
  in
  add fmt mode a nb

let mul fmt mode a b =
  match (classify fmt a, classify fmt b) with
  | Nan, _ | _, Nan -> F.nan_bits fmt
  | Inf sa, Inf sb -> F.inf_bits fmt ~neg:(sa <> sb)
  | Inf s, Fin (q, sq) | Fin (q, sq), Inf s ->
      if Rat.is_zero q then F.nan_bits fmt (* 0 * inf *)
      else F.inf_bits fmt ~neg:(s <> sq)
  | Fin (qa, sa), Fin (qb, sb) ->
      round_product fmt mode (Rat.mul qa qb) ~neg:(sa <> sb)

let div fmt mode a b =
  match (classify fmt a, classify fmt b) with
  | Nan, _ | _, Nan -> F.nan_bits fmt
  | Inf _, Inf _ -> F.nan_bits fmt
  | Inf s, Fin (_, sq) -> F.inf_bits fmt ~neg:(s <> sq)
  | Fin (_, sq), Inf s -> ignore mode; signed_zero fmt ~neg:(sq <> s)
  | Fin (qa, sa), Fin (qb, sb) ->
      if Rat.is_zero qb then
        if Rat.is_zero qa then F.nan_bits fmt (* 0/0 *)
        else F.inf_bits fmt ~neg:(sa <> sb)
      else round_product fmt mode (Rat.div qa qb) ~neg:(sa <> sb)

let fma fmt mode a b c =
  match (classify fmt a, classify fmt b, classify fmt c) with
  | Nan, _, _ | _, Nan, _ | _, _, Nan -> F.nan_bits fmt
  | (Inf _ | Fin _), (Inf _ | Fin _), _ -> (
      (* resolve the product's class first *)
      let product =
        match (classify fmt a, classify fmt b) with
        | Inf sa, Inf sb -> `Inf (sa <> sb)
        | Inf s, Fin (q, sq) | Fin (q, sq), Inf s ->
            if Rat.is_zero q then `Nan else `Inf (s <> sq)
        | Fin (qa, sa), Fin (qb, sb) -> `Fin (Rat.mul qa qb, sa <> sb)
        | Nan, _ | _, Nan -> `Nan
      in
      match (product, classify fmt c) with
      | `Nan, _ -> F.nan_bits fmt
      | `Inf sp, Inf sc -> if sp = sc then F.inf_bits fmt ~neg:sp else F.nan_bits fmt
      | `Inf sp, Fin _ -> F.inf_bits fmt ~neg:sp
      | `Fin _, Inf sc -> F.inf_bits fmt ~neg:sc
      | `Fin (qp, sp), Fin (qc, sc) ->
          round_sum fmt mode (Rat.add qp qc) ~sa:sp ~sb:sc
      | _, Nan -> F.nan_bits fmt)

let mul_add fmt mode a b c = add fmt mode (mul fmt mode a b) c
