(** Software implementation of parameterized IEEE-754-style binary floating
    point formats.

    The RLibm-All construction needs to (a) decode/encode values of *every*
    representation from 10 bits up to 34 bits, (b) round exact rational
    values under all five standard rounding modes plus the non-standard
    {e round-to-odd} mode, and (c) enumerate small formats exhaustively.
    This module provides all of that on top of exact {!Rat} arithmetic.

    A format is a sign bit, [ebits] exponent bits and [prec - 1] fraction
    bits (so [prec] counts the hidden bit, as usual: binary32 is
    [ebits = 8, prec = 24]).  Values are immutable bit patterns stored in
    the low [width] bits of an [int64]. *)

type fmt = private { ebits : int; prec : int }

(** [make_fmt ~ebits ~prec] builds a format descriptor.
    @raise Invalid_argument unless [1 <= ebits <= 15], [2 <= prec] and the
    total width [1 + ebits + prec - 1] is at most 63. *)
val make_fmt : ebits:int -> prec:int -> fmt

val binary16 : fmt
val bfloat16 : fmt
val tensorfloat32 : fmt
val binary32 : fmt

(** The paper's 34-bit representation: binary32 plus two extra fraction
    bits ([ebits = 8], [prec = 26]). *)
val fp34 : fmt

(** [with_extra_prec fmt k] widens the fraction by [k] bits (the
    "(n+2)-bit representation" construction). *)
val with_extra_prec : fmt -> int -> fmt

(** Total bit width [1 + ebits + (prec - 1)]. *)
val width : fmt -> int

(** Largest normal exponent [2^(ebits-1) - 1]. *)
val emax : fmt -> int

(** Smallest normal exponent [1 - emax]. *)
val emin : fmt -> int

(** {1 Rounding modes} *)

type mode =
  | RNE  (** round to nearest, ties to even *)
  | RNA  (** round to nearest, ties away from zero *)
  | RTZ  (** round toward zero *)
  | RTU  (** round toward positive infinity *)
  | RTD  (** round toward negative infinity *)
  | RTO  (** round to odd: exact values stay, otherwise pick the adjacent
             value whose bit pattern is odd *)

val all_standard_modes : mode list
val mode_to_string : mode -> string

(** {1 Bit patterns} *)

type bits = int64

val zero_bits : fmt -> bits
val neg_zero_bits : fmt -> bits
val inf_bits : fmt -> neg:bool -> bits
val nan_bits : fmt -> bits
val max_finite_bits : fmt -> neg:bool -> bits
val min_subnormal_bits : fmt -> neg:bool -> bits

type cls = Zero | Subnormal | Normal | Inf | NaN

val classify : fmt -> bits -> cls
val is_finite : fmt -> bits -> bool
val is_nan : fmt -> bits -> bool
val sign_bit : fmt -> bits -> bool

(** [frac_odd fmt b] is true when the integer interpretation of the pattern
    is odd — the parity round-to-odd cares about. *)
val frac_odd : fmt -> bits -> bool

(** {1 Value conversions} *)

(** [to_rat fmt b] decodes a finite pattern to its exact rational value.
    @raise Invalid_argument on infinities and NaN. *)
val to_rat : fmt -> bits -> Rat.t

(** [of_rat fmt mode q] rounds the exact rational [q] into the format under
    the given mode, with IEEE gradual underflow and overflow semantics.
    Overflow under RTO goes to the largest finite value (whose pattern is
    odd), matching the double-rounding construction's needs. *)
val of_rat : fmt -> mode -> Rat.t -> bits

(** [round_float fmt mode x] rounds a finite double.  NaN maps to NaN and
    infinities to same-signed infinities. *)
val round_float : fmt -> mode -> float -> bits

(** [to_float fmt b] is the double nearest to the decoded value (exact
    whenever [prec <= 53] and the exponent range fits, which holds for all
    formats this library uses). *)
val to_float : fmt -> bits -> float

(** {1 Navigation and enumeration} *)

(** Total order on patterns matching the order of the represented values,
    with [-0 < +0] (used only to make the order total). *)
val ordinal : fmt -> bits -> int

val of_ordinal : fmt -> int -> bits

(** [succ fmt b] is the next pattern toward +infinity.
    @raise Invalid_argument when [b] is +infinity or NaN. *)
val succ : fmt -> bits -> bits

(** [pred fmt b] is the next pattern toward -infinity. *)
val pred : fmt -> bits -> bits

(** [iter_finite fmt f] applies [f] to every finite pattern of the format
    (including both zeros), in no particular order.  Intended for
    exhaustive verification of small formats. *)
val iter_finite : fmt -> (bits -> unit) -> unit

(** Number of finite patterns of the format. *)
val count_finite : fmt -> int

(** {1 Double rounding} *)

(** [narrow ~src ~dst mode b] re-rounds a value of format [src] into the
    (typically narrower) format [dst] — the "double rounding" step of
    RLibm-All.  Infinities and NaN map to their [dst] counterparts. *)
val narrow : src:fmt -> dst:fmt -> mode -> bits -> bits

(** {1 binary32/64 bridges} *)

val bits_of_float32 : float -> bits
val float32_of_bits : bits -> float

val pp_bits : fmt -> Format.formatter -> bits -> unit
