(** Correctly rounded arithmetic within a {!Softfp} format.

    Exact rational arithmetic on the decoded operands followed by one
    correctly rounded conversion — the textbook definition of IEEE-754
    operations, valid for every format and rounding mode this library
    models.  The headline item is {!fma}, which rounds [a*b + c] once;
    comparing it against {!mul} followed by {!add} exhibits precisely the
    double-rounding the paper eliminates by fusing operations (§1, §4).

    NaN/infinity semantics follow IEEE-754: any NaN operand produces NaN,
    [inf - inf], [0 * inf] and [inf * 0 + c] produce NaN, infinities
    otherwise propagate by sign.  The sign of an exact zero result follows
    the IEEE rules for the rounding direction. *)

val add : Softfp.fmt -> Softfp.mode -> Softfp.bits -> Softfp.bits -> Softfp.bits
val sub : Softfp.fmt -> Softfp.mode -> Softfp.bits -> Softfp.bits -> Softfp.bits
val mul : Softfp.fmt -> Softfp.mode -> Softfp.bits -> Softfp.bits -> Softfp.bits
val div : Softfp.fmt -> Softfp.mode -> Softfp.bits -> Softfp.bits -> Softfp.bits

(** [fma fmt mode a b c] is [a*b + c] with a single rounding. *)
val fma :
  Softfp.fmt -> Softfp.mode -> Softfp.bits -> Softfp.bits -> Softfp.bits ->
  Softfp.bits

(** [mul_add fmt mode a b c] is the unfused [round (round (a*b) + c)] —
    two roundings, for comparison against {!fma}. *)
val mul_add :
  Softfp.fmt -> Softfp.mode -> Softfp.bits -> Softfp.bits -> Softfp.bits ->
  Softfp.bits
