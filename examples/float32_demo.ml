(* The pipeline at the paper's actual width: binary32 inputs, 34-bit
   round-to-odd target (fp34), Estrin+FMA evaluation.

   Exhaustive float32 generation needs all 2^32 oracle results (the
   artifact ships them as 12 GB files); this demo instead generates from a
   stratified sample of inputs and verifies on a disjoint sample — the
   pipeline code is identical, only the input set differs (see DESIGN.md,
   "Scale substitutions").

   Run with:  dune exec examples/float32_demo.exe -- [sample-size]
   (default 40000 constraint inputs; the first run spends most of its time
   in the oracle and caches it for later runs). *)

let () =
  let sample =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 40_000
  in
  let func = Oracle.Exp2 in
  let cfg = Rlibm.Config.float32_for func in
  let tin = cfg.Rlibm.Config.tin in
  Printf.printf
    "Generating %s for binary32 from %d sampled inputs (fp34 round-to-odd \
     target)...\n%!"
    (Oracle.name func) sample;
  let t0 = Unix.gettimeofday () in
  let gen, gen_inputs =
    Genlibm.generate_sampled ~cfg ~scheme:Polyeval.EstrinFma ~count:sample
      ~seed:42 func
  in
  match gen with
  | Error msg ->
      Printf.printf "generation failed: %s\n" (Diag.Error.to_string msg);
      exit 1
  | Ok g ->
      Printf.printf "Generated in %.1fs: %s\n%!"
        (Unix.gettimeofday () -. t0)
        (Format.asprintf "%a" Genlibm.pp_table1_row (Genlibm.table1_row g));
      Array.iteri
        (fun i (p : Polyeval.compiled) ->
          Printf.printf "  piece %d: degree %d, %s\n" i p.Polyeval.degree
            (Format.asprintf "%a" Expr.pp_cost (Polyeval.cost p)))
        g.Rlibm.Generate.pieces;

      (* Sanity spot-check against the double libm. *)
      Printf.printf "\nSpot checks (vs glibc exp2, which is not always \
                     correctly rounded):\n";
      List.iter
        (fun x ->
          let v = Genlibm.eval_float g x in
          Printf.printf "  exp2(%10.5f) = %-22.17g glibc: %-22.17g\n" x v
            (Float.exp2 x))
        [ 0.5; -3.2; 17.125; 88.6; -126.0 ];

      (* Verify on the generation sample and on a disjoint sample. *)
      let check name inputs =
        let t1 = Unix.gettimeofday () in
        let rep = Genlibm.verify g ~inputs in
        Printf.printf "%s: %s [%.1fs]\n%!" name
          (Format.asprintf "%a" Genlibm.pp_verify_report rep)
          (Unix.gettimeofday () -. t1);
        rep.Genlibm.wrong34 + rep.Genlibm.wrong_narrow
      in
      let w1 = check "verify (generation sample)" gen_inputs in
      let fresh = Genlibm.inputs_sampled tin ~count:20_000 ~seed:2023 in
      let w2 = check "verify (fresh sample)     " fresh in
      if w1 > 0 then begin
        print_endline "\ngeneration-sample verification failed — pipeline bug";
        exit 1
      end;
      if w2 = 0 then
        print_endline
          "\nAll sampled binary32 results correctly rounded for all \
           representations\nof 10..32 bits and all 5 rounding modes. ✓"
      else
        Printf.printf
          "\nEvery *constrained* input is correctly rounded; the fresh \
           sample found %d\ninputs (%.3f%%) whose constraints the \
           generation sample missed.  This is\nthe expected limitation of \
           sampled generation — the artifact avoids it by\nconstraining \
           all 2^32 inputs from its precomputed oracle files (DESIGN.md,\n\
           \"Scale substitutions\").  A larger sample narrows the gap:\n  \
           dune exec examples/float32_demo.exe -- 200000\n"
          w2
          (100.0 *. float_of_int w2 /. float_of_int (Array.length fresh))
