(* Section 6.3 of the paper: why fast polynomial evaluation must live
   *inside* the generation loop.

   Taking the polynomial RLibm generated for Horner evaluation and merely
   re-evaluating it with adapted coefficients / Estrin / FMA as a
   post-process loses correctness: the rounding behaviour of the new
   operation schedule pushes some inputs outside their rounding intervals.
   The integrated loop (generate -> adapt -> validate -> constrain)
   recovers correctness with a handful of special-case inputs.

   This example quantifies both sides on the reduced-width universe, for
   every function and every fast evaluation scheme.

   Run with:  dune exec examples/post_process_pitfall.exe *)

let count_wrong_post_process g scheme inputs =
  (* Re-compile each piece of the Horner-generated function under [scheme]
     (for Knuth this adapts the coefficients as a post-process), then count
     inputs whose result leaves the round-to-odd rounding interval. *)
  let tin = g.Rlibm.Generate.cfg.Rlibm.Config.tin in
  let tout = Rlibm.Config.tout g.Rlibm.Generate.cfg in
  let adapted =
    Array.map
      (fun (piece : Polyeval.compiled) -> Polyeval.compile scheme piece.Polyeval.data)
      g.Rlibm.Generate.pieces
  in
  if Array.exists (fun c -> c = None) adapted then None
  else begin
    let adapted = Array.map Option.get adapted in
    let wrong = ref 0 in
    Array.iter
      (fun x ->
        if
          Softfp.is_finite tin x
          && not (Hashtbl.mem g.Rlibm.Generate.specials x)
        then begin
          let xf = Softfp.to_float tin x in
          match g.Rlibm.Generate.family.Rlibm.Reduction.shortcut xf with
          | Some _ -> ()
          | None -> (
              let red = g.Rlibm.Generate.family.Rlibm.Reduction.reduce xf in
              let v =
                red.Rlibm.Reduction.oc
                  (adapted.(red.Rlibm.Reduction.piece).Polyeval.eval
                     red.Rlibm.Reduction.r)
              in
              let y_impl = Genlibm.round_result tout Softfp.RTO v in
              match Hashtbl.find_opt g.Rlibm.Generate.oracle x with
              | Some y_true when not (Int64.equal y_impl y_true) -> incr wrong
              | _ -> ())
        end)
      inputs;
    Some !wrong
  end

let () =
  Printf.printf
    "Post-processing vs integrated fast polynomial evaluation (§6.3)\n\n";
  Printf.printf "%-7s %-11s %22s %22s\n" "f" "scheme" "post-process: #wrong"
    "integrated: #specials";
  List.iter
    (fun func ->
      let cfg = Rlibm.Config.mini_for func in
      let inputs = Genlibm.inputs_exhaustive cfg.Rlibm.Config.tin in
      match Genlibm.generate ~cfg ~scheme:Polyeval.Horner func with
      | Error msg ->
          Printf.printf "%-7s generation failed: %s\n" (Oracle.name func)
            (Diag.Error.to_string msg)
      | Ok horner_g ->
          List.iter
            (fun scheme ->
              let post = count_wrong_post_process horner_g scheme inputs in
              let integrated =
                match Genlibm.generate ~cfg ~scheme func with
                | Ok g ->
                    let rep = Genlibm.verify ~narrow:false g ~inputs in
                    if rep.Genlibm.wrong34 = 0 then
                      Printf.sprintf "%d (all correct)"
                        (Rlibm.Generate.n_specials g)
                    else Printf.sprintf "STILL WRONG: %d" rep.Genlibm.wrong34
                | Error _ -> "generation failed"
              in
              Printf.printf "%-7s %-11s %22s %22s\n%!" (Oracle.name func)
                (Polyeval.scheme_name scheme)
                (match post with
                | None -> "n/a"
                | Some w -> string_of_int w)
                integrated)
            [ Polyeval.Knuth; Polyeval.Estrin; Polyeval.EstrinFma ])
    [ Oracle.Exp2; Oracle.Exp10; Oracle.Log2 ];
  print_newline ();
  print_endline
    "Reading the table: a Horner-generated polynomial re-evaluated with a\n\
     fast scheme produces wrong results for the inputs in the third column\n\
     (the paper reports e.g. 10^x gaining 4 extra wrong inputs); the\n\
     integrated pipeline instead ships a polynomial plus the small special\n\
     table in the fourth column, and verifies correct for every input."
