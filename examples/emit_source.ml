(* Emit the generated functions as standalone C and OCaml source — the
   shape in which the paper's artifact ships its results (24 generated C
   implementations).

   Run with:  dune exec examples/emit_source.exe [-- <func> <scheme>]
   Writes <func>_<scheme>.c and <func>_<scheme>.ml into ./generated/. *)

let () =
  let func, scheme =
    if Array.length Sys.argv >= 3 then
      ( Option.get (Oracle.of_name Sys.argv.(1)),
        Option.get (Polyeval.scheme_of_name Sys.argv.(2)) )
    else (Oracle.Exp2, Polyeval.EstrinFma)
  in
  let cfg = Rlibm.Config.mini_for func in
  Printf.printf "generating %s / %s ...\n%!" (Oracle.name func)
    (Polyeval.scheme_name scheme);
  match Genlibm.generate ~cfg ~scheme func with
  | Error msg -> failwith (Diag.Error.to_string msg)
  | Ok g ->
      let base =
        Printf.sprintf "%s_%s" (Oracle.name func)
          (String.map (function '-' -> '_' | c -> c) (Polyeval.scheme_name scheme))
      in
      if not (Sys.file_exists "generated") then Sys.mkdir "generated" 0o755;
      let write path contents =
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)
      in
      write
        (Filename.concat "generated" (base ^ ".c"))
        (Codegen.to_c g ~name:("rlibm_" ^ base));
      write
        (Filename.concat "generated" (base ^ ".ml"))
        (Codegen.to_ocaml g ~name:("rlibm_" ^ base));
      print_endline "done."
