(* One polynomial, every representation, every rounding mode.

   This example demonstrates the RLibm-All property that the paper's
   generated functions inherit: a single polynomial approximation whose
   double result rounds to the round-to-odd value of the (n+2)-bit target
   produces correctly rounded results for *all* representations with
   E+2..n total bits and *all five* standard rounding modes.

   We generate log2 once, then check the full (width x mode) grid
   exhaustively and print a matrix of mismatch counts — all zeros.

   Run with:  dune exec examples/multi_rounding.exe *)

let () =
  let func = Oracle.Log2 in
  let cfg = Rlibm.Config.mini_for func in
  let tin = cfg.Rlibm.Config.tin in
  let tout = Rlibm.Config.tout cfg in
  Printf.printf
    "Generating one %s polynomial for the %d-bit round-to-odd target...\n%!"
    (Oracle.name func) (Softfp.width tout);
  let g =
    match Genlibm.generate ~cfg ~scheme:Polyeval.EstrinFma func with
    | Ok g -> g
    | Error msg -> failwith (Diag.Error.to_string msg)
  in
  Printf.printf "Generated: %s\n\n"
    (Format.asprintf "%a" Genlibm.pp_table1_row (Genlibm.table1_row g));

  let inputs = Genlibm.inputs_exhaustive tin in
  let widths =
    List.init
      (Softfp.width tin - (tin.Softfp.ebits + 2) + 1)
      (fun i -> tin.Softfp.ebits + 2 + i)
  in
  let modes = Softfp.all_standard_modes in
  Printf.printf "Checking %d finite inputs x %d widths x %d modes = %d results\n%!"
    (Array.length inputs) (List.length widths) (List.length modes)
    (Array.length inputs * List.length widths * List.length modes);
  Printf.printf "%-8s" "width";
  List.iter (fun m -> Printf.printf "%10s" (Softfp.mode_to_string m)) modes;
  print_newline ();
  (* One memoizing rounder per input: the enclosure of f(x) is computed
     once and reused for every (width, mode) cell. *)
  let rounders =
    Array.map
      (fun x ->
        if Softfp.is_finite tin x then begin
          let xq = Softfp.to_rat tin x in
          (* log2 of zero / a negative number has no polynomial path and no
             oracle value; the implementation's -inf / NaN is covered by the
             test suite, so the grid skips those inputs. *)
          if Oracle.domain_ok func xq then
            Some (x, Oracle.make_rounder func xq)
          else None
        end
        else None)
      inputs
  in
  let wrong = Array.make_matrix (List.length widths) (List.length modes) 0 in
  Array.iter
    (function
      | None -> ()
      | Some (x, rounder) ->
          let v = Genlibm.eval_bits g x in
          List.iteri
            (fun wi w ->
              let fmt_k =
                Softfp.make_fmt ~ebits:tin.Softfp.ebits ~prec:(w - tin.Softfp.ebits)
              in
              List.iteri
                (fun mi mode ->
                  (* round the implementation's double directly to the k-bit
                     format, and ask the oracle for the true k-bit result *)
                  let direct = Genlibm.round_result fmt_k mode v in
                  let truth = Oracle.round_with rounder ~fmt:fmt_k ~mode in
                  if not (Int64.equal direct truth) then
                    wrong.(wi).(mi) <- wrong.(wi).(mi) + 1)
                modes)
            widths)
    rounders;
  let any_wrong = ref false in
  List.iteri
    (fun wi w ->
      Printf.printf "%-8d" w;
      List.iteri
        (fun mi _ ->
          if wrong.(wi).(mi) > 0 then any_wrong := true;
          Printf.printf "%10d" wrong.(wi).(mi))
        modes;
      print_newline ())
    widths;
  print_newline ();
  if !any_wrong then begin
    print_endline "Some results were wrong!";
    exit 1
  end
  else
    Printf.printf
      "0 mismatches anywhere: one %d-bit round-to-odd polynomial serves all\n\
       %d representations and all 5 rounding modes. ✓\n"
      (Softfp.width tout) (List.length widths)
