(* Quickstart: generate a correctly rounded exp2 for a reduced-width float
   family with fast (Estrin + FMA) polynomial evaluation, inspect the
   result, and verify it exhaustively against the oracle.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick a configuration.  [Config.mini_for] describes a 13-bit input
     family with 5 exponent bits; the generated polynomial produces the
     round-to-odd result in a 15-bit target, which double-rounds correctly
     into every representation of 7..13 bits under all five standard
     rounding modes (the RLibm-All construction at reduced width). *)
  let func = Oracle.Exp2 in
  let cfg = Rlibm.Config.mini_for func in
  let tin = cfg.Rlibm.Config.tin in
  Printf.printf "Generating %s for %d-bit inputs (%d finite values)...\n%!"
    (Oracle.name func) (Softfp.width tin) (Softfp.count_finite tin);

  (* 2. Generate with the paper's best evaluation scheme integrated into
     the generation loop. *)
  let g =
    match Genlibm.generate ~cfg ~scheme:Polyeval.EstrinFma func with
    | Ok g -> g
    | Error msg -> failwith (Diag.Error.to_string msg)
  in
  Printf.printf "Generated: %s\n"
    (Format.asprintf "%a" Genlibm.pp_table1_row (Genlibm.table1_row g));
  Array.iteri
    (fun i piece ->
      Printf.printf "  piece %d coefficients (%s):\n" i
        (Polyeval.scheme_name piece.Polyeval.scheme);
      Array.iteri (fun k c -> Printf.printf "    c%d = %h\n" k c)
        piece.Polyeval.data;
      Printf.printf "  cost: %s\n"
        (Format.asprintf "%a" Expr.pp_cost (Polyeval.cost piece)))
    g.Rlibm.Generate.pieces;

  (* 3. Use it: evaluate a few inputs and compare with the real function. *)
  Printf.printf "\nSample evaluations (double output, then rounded to %d bits):\n"
    (Softfp.width tin);
  List.iter
    (fun x ->
      let bits = Softfp.of_rat tin Softfp.RNE (Rat.of_float x) in
      let v = Genlibm.eval_bits g bits in
      let rounded =
        Softfp.to_float tin
          (Genlibm.round_result tin Softfp.RNE v)
      in
      Printf.printf "  exp2(%8.4f) = %-22.17g (rounded: %.8g, libm: %.8g)\n"
        (Softfp.to_float tin bits) v rounded
        (Float.exp2 (Softfp.to_float tin bits)))
    [ 0.0; 0.5; 1.3; -2.7; 7.9; -11.25 ];

  (* 4. Verify every finite input, every representation width, and every
     standard rounding mode. *)
  Printf.printf "\nExhaustive verification...\n%!";
  let inputs = Genlibm.inputs_exhaustive tin in
  let report = Genlibm.verify g ~inputs in
  Printf.printf "%s\n"
    (Format.asprintf "%a" Genlibm.pp_verify_report report);
  if report.Genlibm.wrong34 = 0 && report.Genlibm.wrong_narrow = 0 then
    print_endline "All results correctly rounded. ✓"
  else begin
    print_endline "VERIFICATION FAILED";
    exit 1
  end
