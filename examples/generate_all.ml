(* Generate the full library: all six elementary functions, each in the
   four evaluation flavours of the paper (Table 1's grid), verify each one
   exhaustively, and print the resulting Table-1 analogue.

   Run with:  dune exec examples/generate_all.exe
   (First run computes and disk-caches the oracle tables; later runs are
   much faster.) *)

let () =
  let t0 = Unix.gettimeofday () in
  Printf.printf "%-7s %-11s %7s %-10s %9s %8s %6s %s\n" "f" "scheme" "pieces"
    "degrees" "specials" "rounds" "ok" "verify";
  let all_ok = ref true in
  List.iter
    (fun func ->
      let cfg = Rlibm.Config.mini_for func in
      let inputs = Genlibm.inputs_exhaustive cfg.Rlibm.Config.tin in
      List.iter
        (fun scheme ->
          match Genlibm.generate ~cfg ~scheme func with
          | Error msg ->
              all_ok := false;
              Printf.printf "%-7s %-11s  FAILED: %s\n%!" (Oracle.name func)
                (Polyeval.scheme_name scheme)
                (Diag.Error.to_string msg)
          | Ok g ->
              let row = Genlibm.table1_row g in
              let rep = Genlibm.verify g ~inputs in
              let ok =
                rep.Genlibm.wrong34 = 0 && rep.Genlibm.wrong_narrow = 0
              in
              if not ok then all_ok := false;
              Printf.printf "%-7s %-11s %7d %-10s %9d %8s %6s %s [%.0fs]\n%!"
                (Oracle.name func)
                (Polyeval.scheme_name scheme)
                row.Genlibm.n_pieces
                (String.concat "," (List.map string_of_int row.Genlibm.degrees))
                row.Genlibm.n_specials
                (String.concat ","
                   (List.map string_of_int
                      (Array.to_list g.Rlibm.Generate.rounds)))
                (if ok then "yes" else "NO")
                (Format.asprintf "%a" Genlibm.pp_verify_report rep)
                (Unix.gettimeofday () -. t0))
        Polyeval.paper_schemes)
    Oracle.all;
  Printf.printf "\nTotal time: %.1fs\n" (Unix.gettimeofday () -. t0);
  if not !all_ok then exit 1
