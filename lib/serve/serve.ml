(* Servable libm snapshot.  See serve.mli for the contract.

   The persisted payload is a list of closure-free stored entries: the
   request triple, the polynomial stage's solved record, and — for the
   logarithm family — the reduction table, so a warm load touches
   exactly one store entry and rebuilds everything else locally
   (Polyeval.of_data + Reduction.make over the pre-seeded table memo). *)

type entry = {
  e_func : Oracle.func;
  e_scheme : Polyeval.scheme;
  e_cfg : Rlibm.Config.t;
  e_impl : Genlibm.t;
}

type t = {
  t_key : string;
  t_entries : entry list;
  t_index : (string, entry) Hashtbl.t;
      (* Oracle.name -> first entry serving that function.  Built once at
         construction so [find] is a hash probe on a string key instead
         of a linear scan comparing whole entries with polymorphic
         equality (which walked the assembled implementations). *)
}

let mk key entries =
  let idx = Hashtbl.create (List.length entries * 2) in
  List.iter
    (fun e ->
      let name = Oracle.name e.e_func in
      if not (Hashtbl.mem idx name) then Hashtbl.add idx name e)
    entries;
  { t_key = key; t_entries = entries; t_index = idx }

(* Marshal-stable stored form.  Every field is scalar data: the func and
   scheme are constant constructors, the config a record of ints and
   formats, the solved record float/int arrays, the table a float
   array.  Bump [snapshot_version] whenever this layout changes. *)
type stored_entry = {
  se_func : Oracle.func;
  se_scheme : Polyeval.scheme;
  se_cfg : Rlibm.Config.t;
  se_solved : Rlibm.Generate.solved;
  se_table : float array option;  (* log-family reduction table *)
}

let snapshot_version = 1

let snapshot_key specs =
  let polys =
    List.map (fun (f, scheme, cfg) -> Pipeline.poly_key ~cfg ~scheme f) specs
  in
  (* MD5 of the joined per-entry poly keys: those keys already pin every
     upstream knob and stage-layout version, and the digest keeps the
     store filename bounded for large snapshots. *)
  Printf.sprintf "snapshot-%de-%s-v%d" (List.length specs)
    (Digest.to_hex (Digest.string (String.concat "\n" polys)))
    snapshot_version

let key t = t.t_key
let entries t = t.t_entries
let find t func = Hashtbl.find_opt t.t_index (Oracle.name func)

(* Canonical closure-free form of an assembled implementation.  The
   specials are sorted by input bits: the hash table they rebuild into
   is order-insensitive, and sorting makes the stored blob a pure
   function of the entry's content. *)
let solved_of_generated (g : Rlibm.Generate.generated) : Rlibm.Generate.solved
    =
  let specials =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) g.Rlibm.Generate.specials []
    |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)
  in
  {
    Rlibm.Generate.sv_data =
      Array.map
        (fun (p : Polyeval.compiled) -> p.Polyeval.data)
        g.Rlibm.Generate.pieces;
    sv_degrees = g.Rlibm.Generate.degrees;
    sv_rounds = g.Rlibm.Generate.rounds;
    sv_n_constraints = g.Rlibm.Generate.n_constraints;
    sv_specials = specials;
  }

let table_of_generated (g : Rlibm.Generate.generated) =
  match g.Rlibm.Generate.family.Rlibm.Reduction.params with
  | Rlibm.Reduction.Exp_params _ -> None
  | Rlibm.Reduction.Log_params { table; _ } -> Some table

(* Rebuild the runnable entry from stored data only: pre-seed the
   reduction-table memo, then assemble.  The oracle table attached to
   the implementation is empty — serving never consults it (eval_bits
   reads the special table, the shortcut and the polynomial), and
   verification workflows go through the pipeline, not a snapshot.
   @raise Invalid_argument on foreign data (via Generate.assemble). *)
let assemble_stored (se : stored_entry) =
  (match se.se_table with
  | Some tbl ->
      Rlibm.Reduction.install_table se.se_func
        ~table_bits:se.se_cfg.Rlibm.Config.table_bits tbl
  | None -> ());
  let impl =
    Rlibm.Generate.assemble ~cfg:se.se_cfg ~scheme:se.se_scheme
      ~func:se.se_func ~oracle:(Hashtbl.create 1) se.se_solved
  in
  {
    e_func = se.se_func;
    e_scheme = se.se_scheme;
    e_cfg = se.se_cfg;
    e_impl = impl;
  }

(* A stored snapshot is only trusted when every entry matches its
   request exactly — a digest collision or a stale layout must fall
   back to a rebuild, never serve the wrong function. *)
let stored_matches specs stored =
  List.length specs = List.length stored
  && List.for_all2
       (fun (f, scheme, cfg) se ->
         se.se_func = f && se.se_scheme = scheme && se.se_cfg = cfg)
       specs stored

(* The name index is first-entry-wins, so a duplicate function in the
   spec list would silently shadow every later (func, scheme, cfg)
   behind the first: [find]/[eval_batch] would serve a different
   polynomial than the caller requested.  Reject the ambiguity up
   front. *)
let duplicate_func specs =
  let seen = Hashtbl.create 8 in
  List.find_opt
    (fun (f, _, _) ->
      let name = Oracle.name f in
      Hashtbl.mem seen name
      ||
      (Hashtbl.add seen name ();
       false))
    specs

let build ?log ?(strict = false) specs =
  match duplicate_func specs with
  | Some (f, _, _) ->
      Error
        (Diag.Error.Bad_config
           {
             what =
               Printf.sprintf
                 "duplicate function %s in snapshot spec (lookups are \
                  per-function, so later entries would be shadowed)"
                 (Oracle.name f);
           })
  | None -> (
      let key = snapshot_key specs in
      let logf s = match log with Some f -> f s | None -> () in
      let rebuild () =
        Diag.span "serve.build"
          (fun () ->
            [
              ("key", Diag.String key);
              ("entries", Diag.Int (List.length specs));
            ])
          (fun () ->
            let rec resolve acc = function
              | [] -> Ok (List.rev acc)
              | (f, scheme, cfg) :: rest -> (
                  match Pipeline.generate ?log ~cfg ~scheme f with
                  | Error _ as e -> e
                  | Ok g ->
                      let se =
                        {
                          se_func = f;
                          se_scheme = scheme;
                          se_cfg = cfg;
                          se_solved = solved_of_generated g;
                          se_table = table_of_generated g;
                        }
                      in
                      resolve (se :: acc) rest)
            in
            match resolve [] specs with
            | Error e -> Error e
            | Ok stored ->
                ignore (Cache.store ~kind:"snapshot" ~key stored);
                logf (Printf.sprintf "snapshot %s: resolved and persisted" key);
                Ok (mk key (List.map assemble_stored stored)))
      in
      match
        (Cache.load ~kind:"snapshot" ~key
          : (stored_entry list option, Diag.Error.t) result)
      with
      | Ok (Some stored) when stored_matches specs stored -> (
          try
            let t = mk key (List.map assemble_stored stored) in
            logf (Printf.sprintf "snapshot %s: loaded" key);
            Ok t
          with Invalid_argument _ ->
            logf
              (Printf.sprintf "snapshot %s: stale stored entry; rebuilding" key);
            rebuild ())
      | Ok (Some _) ->
          logf
            (Printf.sprintf "snapshot %s: stored entries mismatch; rebuilding"
               key);
          rebuild ()
      | Ok None -> rebuild ()
      | Error e when strict ->
          (* Strict mode: a snapshot that exists but fails validation is
             surfaced as the typed error rather than silently rebuilt.
             The store has already quarantined the file, so a retry
             rebuilds cleanly. *)
          logf
            (Printf.sprintf "snapshot %s: %s" key (Diag.Error.to_string e));
          Error e
      | Error e ->
          (* Graceful degradation (default): the corrupt or unreadable
             snapshot is already quarantined/warned by the store, and
             every upstream artifact is still reachable through the
             pipeline — so serving regenerates instead of going down.
             The warn event keeps the corruption loud for operators. *)
          Diag.event ~level:Diag.Warn "serve.degraded" (fun () ->
              [
                ("key", Diag.String key);
                ("error", Diag.String (Diag.Error.to_string e));
              ]);
          logf
            (Printf.sprintf "snapshot %s: %s; regenerating" key
               (Diag.Error.to_string e));
          rebuild ())

(* Both batch entry points drive the same chunked kernel sweep: the
   static Parallel chunk grid partitions [0, n), each chunk runs the
   zero-allocation Genlibm kernel over its disjoint slice of the
   buffers, and since Genlibm.eval_bits_into is bit-identical to
   eval_bits per element, the output is bit-identical to the scalar
   path at every job count. *)
let eval_entry_chunked (e : entry) ~src ~dst n =
  Diag.event ~level:Diag.Debug "serve.batch-eval" (fun () ->
      [ ("func", Diag.String (Oracle.name e.e_func)); ("n", Diag.Int n) ]);
  Parallel.iter_chunks n (fun lo hi ->
      Genlibm.eval_bits_into e.e_impl ~src ~dst ~lo ~hi)

let eval_batch_into t func ~src ~dst =
  match find t func with
  | None ->
      invalid_arg
        (Printf.sprintf "Serve.eval_batch_into: %s is not in this snapshot"
           (Oracle.name func))
  | Some e ->
      let n = Bigarray.Array1.dim src in
      if Bigarray.Array1.dim dst < n then
        invalid_arg "Serve.eval_batch_into: dst is shorter than src";
      eval_entry_chunked e ~src ~dst n

(* Compatibility wrapper over the kernel path: array in, array out. *)
let eval_batch t func inputs =
  match find t func with
  | None ->
      invalid_arg
        (Printf.sprintf "Serve.eval_batch: %s is not in this snapshot"
           (Oracle.name func))
  | Some e ->
      let n = Array.length inputs in
      let src = Genlibm.create_src n and dst = Genlibm.create_dst n in
      for i = 0 to n - 1 do
        Bigarray.Array1.unsafe_set src i (Array.unsafe_get inputs i)
      done;
      eval_entry_chunked e ~src ~dst n;
      Array.init n (fun i -> Bigarray.Array1.unsafe_get dst i)
