(** Servable libm snapshot: an immutable, persisted bundle of verified
    generated functions, loadable without touching the oracle, the LP
    solver, or even the per-stage artifacts.

    A snapshot is built from a list of [(func, scheme, cfg)] requests.
    Each request resolves through {!Pipeline.generate} — a warm artifact
    store satisfies it from the persisted polynomial stage (zero oracle
    evaluations, zero LP solves); a cold store runs the full staged
    pipeline once.  The resolved snapshot is then persisted through
    {!Cache} under kind ["snapshot"] as closure-free data
    ({!Rlibm.Generate.solved} records plus the logarithm reduction
    tables), keyed by a digest of every entry's polynomial-stage key —
    any knob change anywhere upstream changes the snapshot key.

    Loading a warm snapshot therefore reads exactly one store entry:
    the reduction tables ship inside the artifact and are pre-seeded
    with {!Rlibm.Reduction.install_table}, so assembly never consults
    the table store or the oracle.

    {!eval_batch_into} fans a batch of input bit patterns out over the
    {!Parallel} pool, each chunk running the zero-allocation batch
    kernel ({!Genlibm.eval_bits_into}) over its disjoint slice of the
    caller-owned buffers.  The kernel is bit-identical to
    {!Genlibm.eval_bits} per element and the {!Parallel} determinism
    contract applies, so results are bit-identical to the scalar path
    for every job count ([-j 1] is one sequential kernel sweep). *)

(** One served function: the request that produced it and the assembled
    runnable implementation. *)
type entry = {
  e_func : Oracle.func;
  e_scheme : Polyeval.scheme;
  e_cfg : Rlibm.Config.t;
  e_impl : Genlibm.t;
}

(** An immutable snapshot (a set of entries plus its store key). *)
type t

(** The store key a request list resolves to: a digest over every
    entry's {!Pipeline.poly_key}, so the key pins function set, order,
    schemes, formats, generation knobs and all upstream stage layout
    versions.  Exposed for tests and tooling (pair with
    {!Cache.path_of_key}). *)
val snapshot_key :
  (Oracle.func * Polyeval.scheme * Rlibm.Config.t) list -> string

(** [build specs] loads the persisted snapshot for [specs] if present
    (validating that every stored entry matches its request), otherwise
    resolves each request through {!Pipeline.generate} and persists the
    result.  Failures are typed: the first request whose generation
    failed propagates its {!Diag.Error.t} (nothing is persisted then),
    and a spec list naming the same function twice is rejected with
    [Bad_config] before any resolution (lookups — {!find}, the batch
    entry points — are per-function, so the later entry could never be
    served; it would be silently shadowed by the first).

    A stored snapshot that exists but fails store validation
    ([Corrupt_artifact]/[Key_mismatch]/[Store_io]) degrades gracefully
    by default: the store has already quarantined/warned, a
    [serve.degraded] Diag warn is emitted, and the snapshot regenerates
    through the pipeline — serving availability wins over a bad file.
    With [strict:true] (the [--strict-snapshot] CLI flag) the typed
    error surfaces instead — for deployments that would rather go down
    than spend an unbounded regeneration at startup; the quarantine
    makes an immediate retry rebuild cleanly. *)
val build :
  ?log:(string -> unit) ->
  ?strict:bool ->
  (Oracle.func * Polyeval.scheme * Rlibm.Config.t) list ->
  (t, Diag.Error.t) result

val key : t -> string

(** Entries in request order. *)
val entries : t -> entry list

(** The first entry serving [func], if any — a hash probe on the
    function name (the index is built at snapshot construction). *)
val find : t -> Oracle.func -> entry option

(** [eval_batch_into t func ~src ~dst] evaluates the served
    implementation of [func] on every pattern of [src], writing
    [dst.{i}] for each [i] in [\[0, dim src)].  The serving hot path:
    chunks of the batch run the zero-allocation kernel concurrently
    into disjoint slices of [dst]; results are bit-identical to
    {!Genlibm.eval_bits} at every job count.
    @raise Invalid_argument when the snapshot does not serve [func] or
    [dst] is shorter than [src]. *)
val eval_batch_into :
  t -> Oracle.func -> src:Genlibm.src_buf -> dst:Genlibm.dst_buf -> unit

(** [eval_batch t func inputs] is the array-in/array-out compatibility
    wrapper over {!eval_batch_into} (copies through kernel buffers).
    @raise Invalid_argument when the snapshot does not serve [func]. *)
val eval_batch : t -> Oracle.func -> int64 array -> float array
