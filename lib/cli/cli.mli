(** Command-line plumbing shared by [bin/rlibm_gen] and [bench/main]:
    the function / scheme / format converters, the [-j N] fan-out knob
    and the persistent-store knobs, defined once so the two entry points
    cannot drift apart. *)

(** {1 Cmdliner converters and terms} *)

val func_conv : Oracle.func Cmdliner.Arg.conv
(** Parses [exp], [exp2], [exp10], [log], [log2], [log10]. *)

val scheme_conv : Polyeval.scheme Cmdliner.Arg.conv
(** Parses [horner], [horner-fma], [knuth], [estrin], [estrin-fma]. *)

val func_arg : Oracle.func option Cmdliner.Term.t
(** [--func]/[-f], optional (commands that require it check themselves;
    commands like [warm] treat absence as "every function"). *)

val func_list_arg : Oracle.func list Cmdliner.Term.t
(** Repeatable [--func]/[-f]; the empty list means "every function"
    (commands decide — [serve] snapshots all six). *)

val scheme_arg : Polyeval.scheme Cmdliner.Term.t
(** [--scheme]/[-s], default {!Polyeval.EstrinFma}. *)

val ebits_arg : int Cmdliner.Term.t
(** [--ebits], default 5 (the reduced-width universe). *)

val prec_arg : int Cmdliner.Term.t
(** [--prec], default 8. *)

val jobs_arg : int option Cmdliner.Term.t
(** [-j]/[--jobs]; [None] falls back to {!Parallel.default_jobs}
    ([RLIBM_JOBS] if set and valid, else the core count) — the flag
    always wins over the environment. *)

val shards_arg : int option Cmdliner.Term.t
(** [--shards S]: split the oracle stage into [S] content-keyed shard
    artifacts; [None] means unsharded. *)

val shard_spec_conv : (int * int) Cmdliner.Arg.conv
(** Parses ["K/S"] with [0 <= K < S] into [(K, S)]. *)

val shard_arg : (int * int) option Cmdliner.Term.t
(** [--shard K/S]: warm exactly oracle shard [K] of [S] and stop. *)

val resolve_shards :
  shards:int option -> shard:(int * int) option -> int * int option
(** Reconcile [--shards] and [--shard K/S] into
    [(shard_count, only_shard)]: the spec's [S] implies the count and
    must not contradict an explicit [--shards]; exits with code 2 on a
    contradiction or a non-positive count. *)

val cache_dir_arg : string option Cmdliner.Term.t
(** [--cache-dir DIR]; overrides [RLIBM_CACHE_DIR]. *)

val cache_stats_arg : bool Cmdliner.Term.t
(** [--cache-stats]: report store counters on stderr after the run. *)

(** {1 Diagnostics} *)

val log_level_conv : Diag.level Cmdliner.Arg.conv
(** Parses [quiet], [error], [warn], [info], [debug]. *)

val log_level_arg : Diag.level Cmdliner.Term.t
(** [--log-level LEVEL], default {!Diag.Warn}: verbosity of the
    human-readable diagnostic stream on stderr. *)

val trace_arg : string option Cmdliner.Term.t
(** [--trace FILE]: also write every diagnostic event as JSON Lines to
    [FILE] (debug granularity, independent of [--log-level]). *)

val install_diag :
  ?jobs:int -> level:Diag.level -> trace:string option -> unit -> unit
(** Install the diag sinks an executable run asked for: a stderr sink at
    [level] (none for {!Diag.Quiet}) plus, when [trace] is set, a JSONL
    trace sink ([jobs] lands in the trace header, like the bench
    envelope).  An unopenable trace file exits via {!exit_error}. *)

val exit_error : Diag.Error.t -> 'a
(** The uniform executable-boundary rendering: ["rlibm: <message>"] on
    stderr, then [exit] with {!Diag.Error.exit_code} (bad spec / config /
    shard range → 2, store I/O → 3, corrupt artifact / key mismatch → 4,
    stage conflict → 5, LP infeasible / budget exhausted → 6,
    verification failure → 7). *)

(** {1 Effects} *)

val set_jobs : int option -> unit
(** Size the {!Parallel} pool ([None] = all cores). *)

val set_cache_dir : string option -> unit
(** Point {!Cache} at a directory ([None] = leave as configured). *)

val report_cache_stats : bool -> unit
(** When [true], print the global counters and the per-artifact-kind
    breakdown ({!Cache.pp_report}) to stderr. *)

(** {1 Bare-argv helpers}

    For [bench/main], which dispatches on raw [Sys.argv] flags rather
    than cmdliner. *)

val opt_value : string list -> string list -> string option
(** [opt_value names args]: the value following the first element of
    [args] that is listed in [names] (e.g.
    [opt_value ["-j"; "--jobs"] args]). *)

val parse_jobs : string list -> int
(** The [-j]/[--jobs] value of an argv list, defaulting to
    {!Parallel.default_jobs}; exits with code 2 on a malformed value. *)

val install_diag_argv : jobs:int -> string list -> unit
(** {!install_diag} driven by bare argv: honours [--log-level] (exit 2
    on a bad value) and [--trace]. *)
