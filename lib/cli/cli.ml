open Cmdliner

let func_conv =
  let parse s =
    (* Funcspec.resolve rather than of_name: an unknown name should
       carry its typo suggestion into the usage error. *)
    match Funcspec.resolve s with
    | Ok f -> Ok f
    | Error e -> Error (`Msg (Diag.Error.to_string e))
  in
  let print fmt f = Format.pp_print_string fmt (Oracle.name f) in
  Arg.conv (parse, print)

let scheme_conv =
  let parse s =
    match Polyeval.scheme_of_name s with
    | Some x -> Ok x
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print fmt s = Format.pp_print_string fmt (Polyeval.scheme_name s) in
  Arg.conv (parse, print)

let func_arg =
  Arg.(
    value
    & opt (some func_conv) None
    & info [ "func"; "f" ]
        ~doc:"Function: exp, exp2, exp10, log, log2, log10.")

let func_list_arg =
  Arg.(
    value
    & opt_all func_conv []
    & info [ "func"; "f" ]
        ~doc:
          "Function to include (repeatable: $(b,--func exp2 --func log2)); \
           absent means all six.")

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Polyeval.EstrinFma
    & info [ "scheme"; "s" ]
        ~doc:"Evaluation scheme: horner, horner-fma, knuth, estrin, \
              estrin-fma.")

let ebits_arg =
  Arg.(
    value & opt int 5
    & info [ "ebits" ] ~doc:"Exponent bits of the input format.")

let prec_arg =
  Arg.(
    value & opt int 8
    & info [ "prec" ]
        ~doc:"Precision (significand bits incl. hidden) of the input format.")

let shards_arg =
  let doc =
    "Split the oracle stage into $(docv) fixed, content-keyed shard \
     artifacts (kind oracle-shard).  Published shards are loaded, never \
     recomputed, so a killed warm resumes where it stopped and several \
     processes can fill one store cooperatively.  The merged table is \
     bit-identical to an unsharded run."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"S" ~doc)

let shard_spec_conv =
  let parse s =
    let bad () =
      Error
        (`Msg
          (Printf.sprintf "bad shard spec %S (expected K/S with 0 <= K < S)" s))
    in
    match String.index_opt s '/' with
    | None -> bad ()
    | Some i -> (
        let k = String.sub s 0 i
        and n = String.sub s (i + 1) (String.length s - i - 1) in
        match (int_of_string_opt k, int_of_string_opt n) with
        | Some k, Some n when n >= 1 && k >= 0 && k < n -> Ok (k, n)
        | _ -> bad ())
  in
  let print fmt (k, n) = Format.fprintf fmt "%d/%d" k n in
  Arg.conv (parse, print)

let shard_arg =
  let doc =
    "Warm exactly oracle shard K of S and stop (implies a shard count of \
     S; for distributed drivers that give each invocation one shard).  \
     Only meaningful with $(b,--through oracle)."
  in
  Arg.(
    value
    & opt (some shard_spec_conv) None
    & info [ "shard" ] ~docv:"K/S" ~doc)

(* Reconcile --shards S and --shard K/S: the spec's S wins but must not
   contradict an explicit --shards. *)
let resolve_shards ~shards ~shard =
  match (shards, shard) with
  | None, None -> (1, None)
  | Some s, None ->
      if s < 1 then begin
        Printf.eprintf "bad --shards value %d (must be >= 1)\n" s;
        exit 2
      end;
      (s, None)
  | None, Some (k, s) -> (s, Some k)
  | Some s, Some (k, s') ->
      if s <> s' then begin
        Printf.eprintf "--shards %d contradicts --shard %d/%d\n" s k s';
        exit 2
      end;
      (s, Some k)

let jobs_arg =
  let doc =
    "Fan the oracle construction, generation loop and verification out over \
     $(docv) domains (deterministic: the output is bit-identical for every \
     value).  Precedence: this flag, else $(b,RLIBM_JOBS), else the \
     machine's core count; 1 takes the exact sequential code path."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Directory of the persistent artifact store (overrides \
     $(b,RLIBM_CACHE_DIR); default ./.oracle-cache).  Set \
     $(b,RLIBM_NO_DISK_CACHE=1) to disable persistence entirely."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let cache_stats_arg =
  let doc =
    "After the run, print the artifact store counters (hits, misses, \
     corrupt-rejected, bytes read/written — global and per artifact kind) \
     to stderr.  A nonzero corrupt-rejected count means entries failed \
     header or checksum validation, were quarantined aside as *.corrupt-*, \
     and were regenerated from scratch."
  in
  Arg.(value & flag & info [ "cache-stats" ] ~doc)

(* ---------- diagnostics plumbing ---------- *)

let log_level_conv =
  let parse s =
    match Diag.level_of_string s with
    | Ok l -> Ok l
    | Error e -> Error (`Msg (Diag.Error.to_string e))
  in
  let print fmt l = Format.pp_print_string fmt (Diag.level_to_string l) in
  Arg.conv (parse, print)

let log_level_arg =
  let doc =
    "Verbosity of the human-readable diagnostic stream on stderr: \
     $(b,quiet), $(b,error), $(b,warn) (default), $(b,info) (stage and \
     store activity), $(b,debug) (LP statistics, parallel fan-out, batch \
     evals).  Diagnostics never touch stdout and never influence \
     artifacts."
  in
  Arg.(value & opt log_level_conv Diag.Warn & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let trace_arg =
  let doc =
    "Also write every diagnostic event (at debug granularity, regardless \
     of $(b,--log-level)) to $(docv) as JSON Lines: a schema-versioned \
     header object, then one object per event with timestamp, level, \
     span/parent ids and typed fields."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let exit_error err =
  Printf.eprintf "rlibm: %s\n%!" (Diag.Error.to_string err);
  exit (Diag.Error.exit_code err)

let install_diag ?(jobs = 1) ~level ~trace () =
  let stderr_sinks =
    match level with Diag.Quiet -> [] | l -> [ Diag.stderr_sink ~min_level:l ]
  in
  match trace with
  | None -> Diag.set_sinks stderr_sinks
  | Some path -> (
      match Diag.trace_sink ~jobs path with
      | Ok sink -> Diag.set_sinks (sink :: stderr_sinks)
      | Error e -> exit_error e)

let set_jobs jobs =
  Parallel.set_jobs
    (match jobs with Some j -> j | None -> Parallel.default_jobs ())

let set_cache_dir = function Some d -> Cache.set_dir d | None -> ()

let report_cache_stats enabled =
  if enabled then Format.eprintf "%a@." Cache.pp_report ()

let rec opt_value names = function
  | [] | [ _ ] -> None
  | a :: v :: rest ->
      if List.mem a names then Some v else opt_value names (v :: rest)

let parse_jobs args =
  match opt_value [ "-j"; "--jobs" ] args with
  | Some v -> (
      match int_of_string_opt v with
      | Some j when j >= 1 -> j
      | _ ->
          Printf.eprintf "bad -j value %S\n" v;
          exit 2)
  | None -> Parallel.default_jobs ()

let install_diag_argv ~jobs args =
  let level =
    match opt_value [ "--log-level" ] args with
    | None -> Diag.Warn
    | Some s -> (
        match Diag.level_of_string s with
        | Ok l -> l
        | Error e ->
            Printf.eprintf "%s\n" (Diag.Error.to_string e);
            exit 2)
  in
  install_diag ~jobs ~level ~trace:(opt_value [ "--trace" ] args) ()
