(* Exact two-phase primal simplex over rationals, plus the RLibm-style
   constraint-generation driver for interval systems. *)

module R = Rat

type status = Optimal of Rat.t array * Rat.t | Infeasible | Unbounded

(* ---------- dense tableau simplex ----------

   Standard form used internally:

     max  c . y      s.t.  T y = rhs,  y >= 0

   Free problem variables are split as y = x+ - x-.  Each inequality gets a
   slack; rows with negative rhs are negated and get an artificial for
   phase 1.  Bland's rule on both the entering and leaving choices makes
   cycling impossible, so the solver always terminates.

   [width] is the total number of structural columns (the rhs lives at
   index [width]); [scan] limits which columns may enter the basis — after
   phase 1 it excludes the artificial columns so they can never return. *)

type tableau = {
  width : int;
  mutable scan : int;
  rows : int;
  t : R.t array array; (* rows x (width + 1) *)
  basis : int array;   (* basis.(i) = column basic in row i *)
}

(* Pivot the constraint rows and the maintained objective (z) row. *)
let pivot tb zrow ~row ~col =
  let trow = tb.t.(row) in
  let inv = R.inv trow.(col) in
  for j = 0 to tb.width do
    trow.(j) <- R.mul trow.(j) inv
  done;
  let eliminate (ti : R.t array) =
    let f = ti.(col) in
    if not (R.is_zero f) then
      for j = 0 to tb.width do
        ti.(j) <- R.sub ti.(j) (R.mul f trow.(j))
      done
  in
  for i = 0 to tb.rows - 1 do
    if i <> row then eliminate tb.t.(i)
  done;
  eliminate zrow;
  tb.basis.(row) <- col

(* Build the z-row (reduced costs, z_j - c_j) for objective [c]: one
   O(rows * width) pass per phase; pivots keep it current afterwards. *)
let make_zrow tb c =
  let zrow = Array.make (tb.width + 1) R.zero in
  for j = 0 to tb.width do
    let z = ref R.zero in
    for i = 0 to tb.rows - 1 do
      let cb = c.(tb.basis.(i)) in
      if not (R.is_zero cb) then z := R.add !z (R.mul cb tb.t.(i).(j))
    done;
    zrow.(j) <- (if j = tb.width then !z else R.sub !z c.(j))
  done;
  zrow

let pivot_count = ref 0

(* One simplex phase: maximize c.y from the current basic feasible point.
   Pricing is Dantzig (most negative reduced cost) for speed, switching to
   Bland's rule after a budget of pivots so cycling cannot prevent
   termination. *)
let run_phase tb zrow =
  let dantzig_budget = ref (64 + (8 * tb.rows)) in
  let rec iterate () =
    let entering =
      if !dantzig_budget > 0 then begin
        decr dantzig_budget;
        let best = ref None in
        for j = 0 to tb.scan - 1 do
          if R.sign zrow.(j) < 0 then
            match !best with
            | Some (v, _) when R.compare zrow.(j) v >= 0 -> ()
            | _ -> best := Some (zrow.(j), j)
        done;
        Option.map snd !best
      end
      else begin
        (* Bland: smallest column index with negative reduced cost. *)
        let rec find j =
          if j >= tb.scan then None
          else if R.sign zrow.(j) < 0 then Some j
          else find (j + 1)
        in
        find 0
      end
    in
    match entering with
    | None -> `Optimal
    | Some col -> (
        (* Ratio test; Bland tie-break on the leaving basis variable. *)
        let best = ref None in
        for i = 0 to tb.rows - 1 do
          let a = tb.t.(i).(col) in
          if R.sign a > 0 then begin
            let ratio = R.div tb.t.(i).(tb.width) a in
            match !best with
            | None -> best := Some (ratio, i)
            | Some (r, i') ->
                let cmp = R.compare ratio r in
                if cmp < 0 || (cmp = 0 && tb.basis.(i) < tb.basis.(i')) then
                  best := Some (ratio, i)
          end
        done;
        match !best with
        | None -> `Unbounded
        | Some (_, row) ->
            incr pivot_count;
            pivot tb zrow ~row ~col;
            iterate ())
  in
  iterate ()

let objective_value tb c =
  let v = ref R.zero in
  for i = 0 to tb.rows - 1 do
    let cb = c.(tb.basis.(i)) in
    if not (R.is_zero cb) then v := R.add !v (R.mul cb tb.t.(i).(tb.width))
  done;
  !v

let maximize ~obj ~rows =
  let n = Array.length obj in
  let m = Array.length rows in
  Array.iter
    (fun (a, _) ->
      if Array.length a <> n then invalid_arg "Lp.maximize: row length")
    rows;
  let neg_rows =
    Array.fold_left (fun acc (_, b) -> if R.sign b < 0 then acc + 1 else acc) 0 rows
  in
  let real_cols = (2 * n) + m in
  let width = real_cols + neg_rows in
  let t = Array.make_matrix m (width + 1) R.zero in
  let basis = Array.make m 0 in
  let art_idx = ref real_cols in
  Array.iteri
    (fun i (a, b) ->
      let negate = R.sign b < 0 in
      let put j v = t.(i).(j) <- (if negate then R.neg v else v) in
      for k = 0 to n - 1 do
        put k a.(k);
        put (n + k) (R.neg a.(k))
      done;
      put ((2 * n) + i) R.one;
      t.(i).(width) <- (if negate then R.neg b else b);
      if negate then begin
        t.(i).(!art_idx) <- R.one;
        basis.(i) <- !art_idx;
        incr art_idx
      end
      else basis.(i) <- (2 * n) + i)
    rows;
  let tb = { width; scan = width; rows = m; t; basis } in
  (* Phase 1: maximize -(sum of artificials). *)
  let phase1 =
    if neg_rows = 0 then `Feasible
    else begin
      let c1 = Array.make width R.zero in
      for j = real_cols to width - 1 do
        c1.(j) <- R.minus_one
      done;
      match run_phase tb (make_zrow tb c1) with
      | `Unbounded -> assert false (* phase-1 objective is bounded by 0 *)
      | `Optimal ->
          if R.sign (objective_value tb c1) < 0 then `Infeasible
          else begin
            (* Try to drive basic artificials (all at value zero) out; a row
               where that is impossible is redundant and stays harmlessly. *)
            for i = 0 to m - 1 do
              if tb.basis.(i) >= real_cols then begin
                let rec find j =
                  if j >= real_cols then None
                  else if not (R.is_zero tb.t.(i).(j)) then Some j
                  else find (j + 1)
                in
                match find 0 with
                | Some col ->
                    (* The z-row is rebuilt for phase 2; a throwaway one
                       keeps the pivot uniform here. *)
                    pivot tb (Array.make (tb.width + 1) R.zero) ~row:i ~col
                | None -> ()
              end
            done;
            `Feasible
          end
    end
  in
  match phase1 with
  | `Infeasible -> Infeasible
  | `Feasible -> (
      (* Phase 2: artificial columns are frozen out of the entering scan. *)
      tb.scan <- real_cols;
      let c2 = Array.make width R.zero in
      for k = 0 to n - 1 do
        c2.(k) <- obj.(k);
        c2.(n + k) <- R.neg obj.(k)
      done;
      match run_phase tb (make_zrow tb c2) with
      | `Unbounded -> Unbounded
      | `Optimal ->
          (* Tableau statistics are Debug-level diagnostics; the maxbits
             scan is quadratic in the tableau, so it only runs when a
             sink actually listens (the [Diag.event] thunk is not forced
             otherwise). *)
          Diag.event ~level:Diag.Debug "lp.solved" (fun () ->
              let maxbits = ref 0 in
              Array.iter
                (Array.iter (fun e ->
                     maxbits :=
                       Stdlib.max !maxbits
                         (Bigint.numbits (R.num e) + Bigint.numbits (R.den e))))
                t;
              [
                ("rows", Diag.Int m);
                ("pivots_cum", Diag.Int !pivot_count);
                ("maxbits", Diag.Int !maxbits);
              ]);
          let y = Array.make width R.zero in
          for i = 0 to m - 1 do
            y.(tb.basis.(i)) <- t.(i).(width)
          done;
          let x = Array.init n (fun k -> R.sub y.(k) y.(n + k)) in
          Optimal (x, objective_value tb c2))

(* ---------- RLibm interval systems ---------- *)

type point = { x : Rat.t; lo : Rat.t; hi : Rat.t }

type system_result = Sat of Rat.t array * int list | Unsat

let eval_poly ~powers coeffs x =
  let acc = ref R.zero in
  Array.iteri
    (fun k p -> acc := R.add !acc (R.mul coeffs.(k) (R.pow x p)))
    powers;
  !acc

(* Horner over precomputed monomials: the violation scan is the hot loop
   when the pipeline re-solves after every interval shrink. *)
let eval_monos monos coeffs =
  let acc = ref R.zero in
  Array.iteri (fun k m -> acc := R.add !acc (R.mul coeffs.(k) m)) monos;
  !acc

(* Two LP rows per point, with the min-slack variable delta appended:
   p(x) + delta <= hi   and   -p(x) + delta <= -lo. *)
let rows_of_point ~mono pt =
  let d = Array.length mono in
  let upper = Array.init (d + 1) (fun k -> if k < d then mono.(k) else R.one) in
  let lower =
    Array.init (d + 1) (fun k -> if k < d then R.neg mono.(k) else R.one)
  in
  [ (upper, pt.hi); (lower, R.neg pt.lo) ]

(* Round a rational to [bits] significant bits (toward zero).  Monomials
   of double-precision reduced inputs have up to 53*degree-bit
   denominators; carrying them exactly through simplex pivots inflates
   tableau entries to thousands of bits.  Because the pipeline validates
   candidates by *empirical double evaluation* (and re-constrains on any
   miss), the LP may legally work with perturbed monomials — correctness
   never depends on them. *)
let round_bits q bits =
  if R.is_zero q then q
  else begin
    let m, e, _exact = R.approx q ~bits in
    R.mul_pow2 (R.of_bigint (if R.sign q < 0 then Bigint.neg m else m)) e
  end

let solve_interval_system ?(max_added_per_round = 16) ?(log = fun _ -> ())
    ?(initial_working = []) ?tilt ?mono_bits ~powers points =
  let d = Array.length powers in
  let n_points = Array.length points in
  if n_points = 0 then Sat (Array.make d R.zero, [])
  else begin
    let monos =
      Array.map
        (fun pt ->
          Array.map
            (fun p ->
              let m = R.pow pt.x p in
              match mono_bits with
              | None -> m
              | Some b -> round_bits m b)
            powers)
        points
    in
    (* Float shadows of the system: the per-round violation scan runs in
       doubles, with exact confirmation only for points near an interval
       boundary.  A point misclassified by less than the float margin is
       immaterial: the pipeline's acceptance criterion is the *double*
       evaluation of the compiled scheme, and false positives merely add a
       harmless constraint. *)
    let monos_f = Array.map (Array.map R.to_float) monos in
    let lo_f = Array.map (fun pt -> R.to_float pt.lo) points in
    let hi_f = Array.map (fun pt -> R.to_float pt.hi) points in
    let working : (int, int) Hashtbl.t = Hashtbl.create 64 in
    (* value = round at which the constraint joined *)
    List.iter
      (fun idx -> if idx >= 0 && idx < n_points then Hashtbl.replace working idx 0)
      initial_working;
    if Hashtbl.length working < d + 1 then begin
      (* Seed: spread evenly over the x-sorted points. *)
      let order = Array.init n_points (fun i -> i) in
      Array.sort (fun i j -> R.compare points.(i).x points.(j).x) order;
      let initial = Stdlib.min n_points (Stdlib.max (2 * (d + 1)) 8) in
      for k = 0 to initial - 1 do
        let idx = order.(k * (n_points - 1) / Stdlib.max 1 (initial - 1)) in
        Hashtbl.replace working idx 0
      done
    end;
    (* Objective: maximize delta, the minimum slack; an optional tiny tilt
       on the coefficients picks different near-optimal vertices, which the
       generation loop uses to search for candidates whose *double*
       evaluation satisfies constraints the vertex at pure max-delta
       misses. *)
    let obj =
      Array.init (d + 1) (fun k ->
          if k = d then R.one
          else match tilt with Some t -> t.(k) | None -> R.zero)
    in
    let obj_pure = Array.init (d + 1) (fun k -> if k < d then R.zero else R.one) in
    let delta_nonneg =
      ( Array.init (d + 1) (fun k -> if k < d then R.zero else R.minus_one),
        R.zero )
    in
    let eval_f coeffs_f idx =
      let m = monos_f.(idx) in
      let acc = ref 0.0 in
      for k = 0 to d - 1 do
        acc := !acc +. (coeffs_f.(k) *. m.(k))
      done;
      !acc
    in
    let exact_violation coeffs idx =
      let pt = points.(idx) in
      let v = eval_monos monos.(idx) coeffs in
      let worst = R.max (R.sub pt.lo v) (R.sub v pt.hi) in
      if R.sign worst > 0 then Some (R.to_float worst) else None
    in
    (* Slack-constraint pruning keeps the exact tableau small.  Each
       constraint may be pruned at most once (the ratchet below): without
       it the working set can cycle — prune A, vertex moves, A violated,
       re-add A, prune B, vertex moves back ... — and with it the classic
       monotone-growth termination argument still applies. *)
    let max_working = 4 * (d + 2) in
    let pruned_once : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let rec loop round =
      let prune_allowed = round <= 40 in
      let rows =
        Hashtbl.fold
          (fun idx _ acc -> rows_of_point ~mono:monos.(idx) points.(idx) @ acc)
          working [ delta_nonneg ]
        |> Array.of_list
      in
      let solved =
        match maximize ~obj ~rows with
        | Unbounded when tilt <> None ->
            (* The tilt direction is unbounded on this working subset;
               fall back to the pure objective for this round. *)
            maximize ~obj:obj_pure ~rows
        | r -> r
      in
      match solved with
      | Infeasible ->
          log
            (Printf.sprintf
               "lp: infeasible with %d working constraints (round %d)"
               (Hashtbl.length working) round);
          Unsat
      | Unbounded ->
          (* Cannot happen: delta is bounded by the narrowest interval. *)
          assert false
      | Optimal (sol, _delta) ->
          let coeffs = Array.sub sol 0 d in
          let coeffs_f = Array.map R.to_float coeffs in
          (* Scan in floats; confirm suspects exactly. *)
          let violations = ref [] in
          for idx = 0 to n_points - 1 do
            if not (Hashtbl.mem working idx) then begin
              let v = eval_f coeffs_f idx in
              let scale =
                Float.max 1e-300
                  (Float.max (Float.abs v)
                     (Float.max (Float.abs lo_f.(idx)) (Float.abs hi_f.(idx))))
              in
              let tol = 1e-12 *. scale in
              let dist = Float.max (lo_f.(idx) -. v) (v -. hi_f.(idx)) in
              if dist > tol then violations := (dist, idx) :: !violations
              else if dist > -.tol then
                match exact_violation coeffs idx with
                | Some w -> violations := (w, idx) :: !violations
                | None -> ()
            end
          done;
          (match !violations with
          | [] ->
              Sat (coeffs, Hashtbl.fold (fun i _ acc -> i :: acc) working [])
          | vs ->
              let vs =
                List.sort (fun (a, _) (b, _) -> Float.compare b a) vs
              in
              let rec take k = function
                | (_, idx) :: rest when k > 0 ->
                    Hashtbl.replace working idx round;
                    take (k - 1) rest
                | _ -> ()
              in
              take max_added_per_round vs;
              (* Prune stale constraints with visibly positive slack. *)
              if prune_allowed && Hashtbl.length working > max_working then begin
                let stale = ref [] in
                Hashtbl.iter
                  (fun idx joined ->
                    if joined < round && not (Hashtbl.mem pruned_once idx) then begin
                      let v = eval_f coeffs_f idx in
                      let scale =
                        Float.max 1e-300
                          (Float.max (Float.abs v)
                             (Float.max (Float.abs lo_f.(idx))
                                (Float.abs hi_f.(idx))))
                      in
                      let slack =
                        Float.min (v -. lo_f.(idx)) (hi_f.(idx) -. v)
                      in
                      if slack > 1e-9 *. scale then stale := idx :: !stale
                    end)
                  working;
                let excess = Hashtbl.length working - max_working in
                List.iteri
                  (fun i idx ->
                    if i < excess then begin
                      Hashtbl.remove working idx;
                      Hashtbl.replace pruned_once idx ()
                    end)
                  !stale
              end;
              log
                (Printf.sprintf
                   "lp: round %d: %d violations, working set now %d" round
                   (List.length vs) (Hashtbl.length working));
              loop (round + 1))
    in
    loop 1
  end
