(* Deterministic fault injection.  See fault.mli for the contract.

   The passthrough cost is one atomic load per call: [armed] is false
   until a plan is installed (explicitly or from RLIBM_FAULT_PLAN), and
   only then does a call take the mutex, bump the class counters and
   scan the rules. *)

type op = Open | Read | Write | Fsync | Rename | Unlink | Mkdir
type sel = Any | Mut | Op of op
type action = Fail of Unix.error | Short of int | Torn of int | Abort
type rule = { r_sel : sel; r_nth : int; r_sticky : bool; r_action : action }
type plan = rule list

let abort_exit_code = 70

(* ---------- spec syntax ---------- *)

let sel_of_string = function
  | "any" -> Some Any
  | "mut" -> Some Mut
  | "open" -> Some (Op Open)
  | "read" -> Some (Op Read)
  | "write" -> Some (Op Write)
  | "fsync" -> Some (Op Fsync)
  | "rename" -> Some (Op Rename)
  | "unlink" -> Some (Op Unlink)
  | "mkdir" -> Some (Op Mkdir)
  | _ -> None

let sel_to_string = function
  | Any -> "any"
  | Mut -> "mut"
  | Op Open -> "open"
  | Op Read -> "read"
  | Op Write -> "write"
  | Op Fsync -> "fsync"
  | Op Rename -> "rename"
  | Op Unlink -> "unlink"
  | Op Mkdir -> "mkdir"

let action_of_string s =
  match String.split_on_char ':' s with
  | [ "eio" ] -> Some (Fail Unix.EIO)
  | [ "enospc" ] -> Some (Fail Unix.ENOSPC)
  | [ "eintr" ] -> Some (Fail Unix.EINTR)
  | [ "eagain" ] -> Some (Fail Unix.EAGAIN)
  | [ "abort" ] -> Some Abort
  | [ "short"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Some (Short n)
      | _ -> None)
  | [ "torn"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> Some (Torn n)
      | _ -> None)
  | _ -> None

let action_to_string = function
  | Fail Unix.EIO -> "eio"
  | Fail Unix.ENOSPC -> "enospc"
  | Fail Unix.EINTR -> "eintr"
  | Fail Unix.EAGAIN -> "eagain"
  | Fail _ -> "eio" (* parse never produces other codes *)
  | Short n -> Printf.sprintf "short:%d" n
  | Torn n -> Printf.sprintf "torn:%d" n
  | Abort -> "abort"

let parse_rule s =
  let bad () =
    Error
      (Printf.sprintf
         "bad fault rule %S (expected SEL@N[+]=ACTION, e.g. write@1+=enospc)"
         s)
  in
  match String.index_opt s '@' with
  | None -> bad ()
  | Some at -> (
      match String.index_opt s '=' with
      | None -> bad ()
      | Some eq when eq < at -> bad ()
      | Some eq -> (
          let sel = String.sub s 0 at in
          let nth = String.sub s (at + 1) (eq - at - 1) in
          let action = String.sub s (eq + 1) (String.length s - eq - 1) in
          let nth, sticky =
            let l = String.length nth in
            if l > 0 && nth.[l - 1] = '+' then (String.sub nth 0 (l - 1), true)
            else (nth, false)
          in
          match (sel_of_string sel, int_of_string_opt nth, action_of_string action)
          with
          | Some r_sel, Some n, Some r_action when n >= 1 ->
              Ok { r_sel; r_nth = n; r_sticky = sticky; r_action }
          | _ -> bad ()))

let parse s =
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun r -> String.trim r <> "")
  |> List.fold_left
       (fun acc r ->
         match acc with
         | Error _ as e -> e
         | Ok rules -> (
             match parse_rule (String.trim r) with
             | Ok rule -> Ok (rule :: rules)
             | Error _ as e -> e))
       (Ok [])
  |> Result.map List.rev

let to_spec plan =
  String.concat ","
    (List.map
       (fun r ->
         Printf.sprintf "%s@%d%s=%s" (sel_to_string r.r_sel) r.r_nth
           (if r.r_sticky then "+" else "")
           (action_to_string r.r_action))
       plan)

(* ---------- injector state ---------- *)

type state = {
  st_plan : plan;
  mutable st_any : int;
  mutable st_mut : int;
  st_ops : int array; (* indexed by op tag *)
}

let op_index = function
  | Open -> 0
  | Read -> 1
  | Write -> 2
  | Fsync -> 3
  | Rename -> 4
  | Unlink -> 5
  | Mkdir -> 6

(* [armed] is the fast-path gate; [state]/[env_checked] mutate under
   [lock] only. *)
let armed = Atomic.make false
let lock = Mutex.create ()
let state : state option ref = ref None
let env_checked = ref false

let fresh plan =
  { st_plan = plan; st_any = 0; st_mut = 0; st_ops = Array.make 7 0 }

let install plan =
  Mutex.protect lock (fun () ->
      env_checked := true;
      state := (match plan with None -> None | Some p -> Some (fresh p));
      Atomic.set armed (!state <> None))

let arm plan = install (Some plan)
let disarm () = install None

let with_plan plan f =
  let saved_state, saved_checked =
    Mutex.protect lock (fun () -> (!state, !env_checked))
  in
  arm plan;
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect lock (fun () ->
          state := saved_state;
          env_checked := saved_checked;
          Atomic.set armed (!state <> None)))
    f

let mut_sites () =
  Mutex.protect lock (fun () ->
      match !state with None -> 0 | Some st -> st.st_mut)

(* The environment plan is read lazily at the first Fs call, so child
   processes (kill-point sweeps, the check.sh smoke) need no wiring
   beyond RLIBM_FAULT_PLAN=...; an explicit arm/disarm always wins. *)
let check_env () =
  if not !env_checked then begin
    env_checked := true;
    match Sys.getenv_opt "RLIBM_FAULT_PLAN" with
    | Some s when String.trim s <> "" -> (
        match parse s with
        | Ok plan ->
            state := Some (fresh plan);
            Atomic.set armed true
        | Error msg ->
            (* A misspelled plan must not silently run fault-free. *)
            Printf.eprintf "rlibm: RLIBM_FAULT_PLAN: %s\n%!" msg;
            exit 2)
    | _ -> ()
  end

let matches st rule ~op ~mutating =
  let counter =
    match rule.r_sel with
    | Any -> st.st_any
    | Mut -> st.st_mut
    | Op o -> st.st_ops.(op_index o)
  in
  (match rule.r_sel with
  | Any -> true
  | Mut -> mutating
  | Op o -> o = op)
  && (counter = rule.r_nth || (rule.r_sticky && counter > rule.r_nth))

(* Classify one call: bump the counters and return the first firing
   rule's action, if any. *)
let consult ~op ~mutating =
  if not (Atomic.get armed) && !env_checked then None
  else
    Mutex.protect lock (fun () ->
        check_env ();
        match !state with
        | None -> None
        | Some st ->
            st.st_any <- st.st_any + 1;
            if mutating then st.st_mut <- st.st_mut + 1;
            st.st_ops.(op_index op) <- st.st_ops.(op_index op) + 1;
            List.find_opt (matches st ~op ~mutating) st.st_plan
            |> Option.map (fun r -> r.r_action))

let op_name = function
  | Open -> "open"
  | Read -> "read"
  | Write -> "write"
  | Fsync -> "fsync"
  | Rename -> "rename"
  | Unlink -> "unlink"
  | Mkdir -> "mkdir"

let abort ~op path =
  Diag.event ~level:Diag.Warn "fault.abort" (fun () ->
      [ ("op", Diag.String (op_name op)); ("path", Diag.String path) ]);
  Unix._exit abort_exit_code

let fail ~op path e = raise (Unix.Unix_error (e, "fault:" ^ op_name op, path))

(* Injection outcome for a non-read/write op: Short/Torn degrade to EIO
   (they have no meaning without a byte count to cut). *)
let simple ~op path = function
  | None -> ()
  | Some (Fail e) -> fail ~op path e
  | Some (Short _ | Torn _) -> fail ~op path Unix.EIO
  | Some Abort -> abort ~op path

module Fs = struct
  let open_read path =
    simple ~op:Open path (consult ~op:Open ~mutating:false);
    Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0

  let open_excl path perm =
    simple ~op:Open path (consult ~op:Open ~mutating:true);
    Unix.openfile path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL; Unix.O_CLOEXEC ]
      perm

  let read fd buf off len =
    match consult ~op:Read ~mutating:false with
    | None -> Unix.read fd buf off len
    | Some (Fail e) -> fail ~op:Read "" e
    | Some (Short n) -> Unix.read fd buf off (min len (max 1 n))
    | Some (Torn _) -> fail ~op:Read "" Unix.EIO
    | Some Abort -> abort ~op:Read ""

  let write fd buf off len =
    match consult ~op:Write ~mutating:true with
    | None -> Unix.write fd buf off len
    | Some (Fail e) -> fail ~op:Write "" e
    | Some (Short n) -> Unix.write fd buf off (min len (max 1 n))
    | Some (Torn n) ->
        let n = min n len in
        let rec put off remaining =
          if remaining > 0 then begin
            match Unix.write fd buf off remaining with
            | written -> put (off + written) (remaining - written)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> put off remaining
          end
        in
        put off n;
        fail ~op:Write "" Unix.EIO
    | Some Abort -> abort ~op:Write ""

  let fsync fd =
    simple ~op:Fsync "" (consult ~op:Fsync ~mutating:true);
    Unix.fsync fd

  let rename src dst =
    simple ~op:Rename src (consult ~op:Rename ~mutating:true);
    Unix.rename src dst

  let unlink path =
    simple ~op:Unlink path (consult ~op:Unlink ~mutating:true);
    Unix.unlink path

  let mkdir path perm =
    simple ~op:Mkdir path (consult ~op:Mkdir ~mutating:true);
    Unix.mkdir path perm

  let close fd = Unix.close fd
end
