(** Deterministic fault-injection substrate for the storage stack.

    Every raw filesystem operation the artifact store performs goes
    through {!Fs}.  In production {!Fs} is a passthrough (one atomic
    load of overhead per call).  Under test, a declarative {!plan} is
    armed and selected calls fail with a chosen [Unix_error], perform a
    short or torn write, or abort the process outright — which is how
    the crash-consistency claims of [lib/cache] / [lib/pipeline] are
    exercised rather than asserted.

    {b Determinism.}  A plan is pure data: rules fire on the N-th call
    matching an operation selector, counted from {!arm}.  There is no
    randomness anywhere, so a run under a given plan replays
    bit-identically — which is what makes kill-point sweeps ("abort at
    mutating site N for every N") exhaustive rather than sampled.
    Counters are process-wide and mutate under a lock; plans are only
    meaningful when the injected operations happen on one domain (true
    for the store: publishes and loads run on the driver domain).

    {b Site numbering.}  The [Mut] selector counts only mutating
    operations (write-opens, writes, fsyncs, renames, unlinks, mkdirs).
    Read traffic never shifts a [Mut] site, so a kill-point sweep keyed
    on [mut\@N] is stable against warm/cold load differences. *)

(** Operation classes, mirroring {!Fs} one-to-one ([Open] covers both
    read- and write-opens; only the latter is mutating). *)
type op = Open | Read | Write | Fsync | Rename | Unlink | Mkdir

(** Which calls a rule watches: every call, every mutating call, or one
    operation class. *)
type sel = Any | Mut | Op of op

type action =
  | Fail of Unix.error
      (** The call raises [Unix_error] without touching the file. *)
  | Short of int
      (** A write consumes at most N bytes (a genuine short write — the
          caller's loop must continue); a read returns at most N bytes.
          N must be >= 1.  On other operations acts as [Fail EIO]. *)
  | Torn of int
      (** A write writes exactly its first N bytes for real, then
          raises [EIO] — the torn-page model.  On other operations acts
          as [Fail EIO]. *)
  | Abort
      (** The process exits immediately via [Unix._exit]
          {!abort_exit_code}: no [at_exit], no channel flushing — the
          closest in-process approximation of [kill -9] at this site. *)

(** One rule: fire [action] on the [nth] call (1-based, counted from
    {!arm}) matching [sel]; a [sticky] rule keeps firing on every
    matching call from the [nth] on (persistent ENOSPC, dead disk). *)
type rule = { r_sel : sel; r_nth : int; r_sticky : bool; r_action : action }

type plan = rule list

(** [parse s] reads the compact spec syntax used by [RLIBM_FAULT_PLAN]:
    comma-separated rules [SEL\@N\[+\]=ACTION] with [SEL] one of
    [any|mut|open|read|write|fsync|rename|unlink|mkdir], [+] marking a
    sticky rule, and [ACTION] one of
    [eio|enospc|eintr|eagain|abort|short:N|torn:N].
    E.g. ["write\@1+=enospc"] (every write fails),
    ["mut\@7=abort"] (kill the process at mutating site 7),
    ["write\@2=torn:5"] (second write tears after 5 bytes). *)
val parse : string -> (plan, string) result

(** Render a plan back to the spec syntax ([parse (to_spec p)] = [Ok p]
    up to whitespace) — for handing plans to child processes via
    [RLIBM_FAULT_PLAN]. *)
val to_spec : plan -> string

(** Install [plan] and reset every counter.  Overrides any
    [RLIBM_FAULT_PLAN] in the environment. *)
val arm : plan -> unit

(** Remove the installed plan (also suppresses any environment plan). *)
val disarm : unit -> unit

(** [with_plan p f] runs [f] under [p], restoring the previous state
    (also on exceptions).  Counters restart from zero at entry. *)
val with_plan : plan -> (unit -> 'a) -> 'a

(** Mutating-operation calls observed since the last {!arm} (0 when no
    plan was ever armed).  Arming the empty plan [\[\]] turns the
    substrate into a pure site census: nothing fails, but the counter
    reports how many kill-points a run exposes. *)
val mut_sites : unit -> int

(** The exit status {!Abort} terminates the process with. *)
val abort_exit_code : int

(** The effects interface the store's raw I/O goes through.  Every
    function behaves exactly like its [Unix] counterpart when no rule
    fires; the environment plan ([RLIBM_FAULT_PLAN]) is read lazily at
    the first call if {!arm}/{!disarm} were never called.  [close] is
    deliberately not injectable: a close failure after fsync carries no
    data-loss semantics this substrate models. *)
module Fs : sig
  (** [O_RDONLY | O_CLOEXEC] open. *)
  val open_read : string -> Unix.file_descr

  (** [O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC] open with the given
      permissions — the unique-temp publish open.  Mutating. *)
  val open_excl : string -> int -> Unix.file_descr

  val read : Unix.file_descr -> bytes -> int -> int -> int

  (** Mutating. *)
  val write : Unix.file_descr -> bytes -> int -> int -> int

  (** Mutating. *)
  val fsync : Unix.file_descr -> unit

  (** Mutating. *)
  val rename : string -> string -> unit

  (** Mutating. *)
  val unlink : string -> unit

  (** Mutating. *)
  val mkdir : string -> int -> unit

  val close : Unix.file_descr -> unit
end
