(** Hardened persistent store for expensive binary artifacts: oracle
    tables and their per-range shards (kind ["oracle-shard"]), the
    per-stage pipeline artifacts, and serving snapshots.

    The previous ad-hoc cache wrote raw [Marshal] blobs and swallowed
    every load error, so a truncated, bit-flipped or layout-drifted file
    was either silently ignored or — worse — deserialized into garbage
    that flowed straight into rounding intervals.  This store makes every
    failure mode loud and recoverable:

    - {b Versioned header.}  Every file starts with an 8-byte magic, a
      format version, and the {e full} store key.  A file whose header
      does not match exactly what the reader expects (old un-versioned
      blob, different layout version, key collision, crafted rename) is
      rejected, never deserialized.
    - {b Checksummed payload.}  A CRC-32 over the marshalled payload is
      stored in the header; silent corruption (truncation, bit flips,
      torn writes on crash) is detected before [Marshal] ever runs.
    - {b Atomic publish.}  Writers marshal into a unique temp file
      ([.tmp-<pid>-<counter>], opened with [O_EXCL]) and publish with a
      single [rename], so concurrent writers cannot clobber each other
      mid-write and readers only ever observe complete files.
    - {b Quarantine.}  A rejected file is renamed aside to
      [<file>.corrupt-<pid>-<counter>] (kept for post-mortems) and the
      load reports a miss, so the caller regenerates instead of trusting
      garbage; the next publish replaces the entry.
    - {b Observability.}  Hit / miss / corrupt-rejected / byte counters,
      surfaced by the executables via [--cache-stats], so cache behaviour
      is visible rather than inferred.

    Payloads are still [Marshal] blobs, so a load is only type-safe when
    the key fully determines the payload type {e and} layout — embed a
    layout version in the key (see {!Rlibm.Constraints.oracle_cache_key})
    and bump it whenever the marshalled type changes. *)

(** Version of the on-disk container format (header layout), embedded in
    every file and checked on load.  Distinct from any payload-layout
    version, which belongs in the key. *)
val format_version : int

(** {1 Location and enablement} *)

(** Directory holding the store: {!set_dir}'s value if called, otherwise
    [$RLIBM_CACHE_DIR] if set and non-empty, otherwise [./.oracle-cache].
    The environment is re-read on every call, so tests can flip it. *)
val dir : unit -> string

(** Override the store directory for this process (takes precedence over
    [RLIBM_CACHE_DIR]); created lazily on first store. *)
val set_dir : string -> unit

(** Persistence is off when {!set_persistence} forced it off, or —
    absent an override — when [RLIBM_NO_DISK_CACHE] is set to a
    non-empty value: loads return [None] and stores are no-ops, without
    touching the counters. *)
val enabled : unit -> bool

(** [set_persistence (Some b)] forces persistence on or off for this
    process, taking precedence over [RLIBM_NO_DISK_CACHE]; [None]
    restores environment-controlled behaviour.  Prefer
    {!with_persistence} for scoped use. *)
val set_persistence : bool option -> unit

(** [with_persistence b f] runs [f] with persistence forced to [b],
    restoring the previous override on exit (also on exceptions).  The
    process-local alternative to mutating the environment: [Unix.putenv]
    is global, races with concurrent domains, and leaks into child
    processes. *)
val with_persistence : bool -> (unit -> 'a) -> 'a

(** The file a key lives at: [dir ()/<sanitized key>] (characters outside
    [A-Za-z0-9._-] become [_]).  Exposed for tests and tooling that need
    to inspect or corrupt entries deliberately. *)
val path_of_key : string -> string

(** {1 Store and load}

    Every entry belongs to an artifact {e kind} — a short label
    ("oracle", "intervals", "poly", …) that buckets the observability
    counters so [--cache-stats] can show {e where} time is saved, not
    just that it was.  The kind is reporting metadata only: it does not
    participate in the key or the on-disk layout. *)

(** [store ~kind ~key v] marshals [v] and atomically publishes it under
    [key].  [Ok ()] on publish (or when persistence is disabled); an I/O
    failure (read-only directory, disk full) leaves the previous entry,
    if any, intact and reports [Error (Store_io _)].  Callers for whom
    persistence is best-effort ignore the [Error] and regenerate next
    run; callers that exist to publish (shard drivers) propagate it. *)
val store : kind:string -> key:string -> 'a -> (unit, Diag.Error.t) result

(** [load ~kind ~key] returns [Ok (Some v)] on a validated hit,
    [Ok None] when the entry is absent (a miss, also when persistence is
    disabled), and [Error] when something is wrong with an entry that
    {e does} exist: [Corrupt_artifact]/[Key_mismatch] for a file that
    failed header/checksum/decode validation (counted as
    corrupt-rejected and quarantined aside, so regenerating is safe and
    the next publish replaces it), [Store_io] for an unreadable file.
    The unsafe ['a] is inherent to [Marshal]; see the module comment for
    the key discipline that makes it sound. *)
val load : kind:string -> key:string -> ('a option, Diag.Error.t) result

(** {1 Observability} *)

type stats = {
  hits : int;  (** loads that validated and deserialized *)
  misses : int;  (** loads of absent entries *)
  corrupt_rejected : int;
      (** loads rejected by header/checksum/decode validation; each one
          quarantined a file *)
  retried : int;
      (** transient I/O failures absorbed by the bounded retry (each
          increment is one extra attempt, not one failed operation) *)
  bytes_read : int;  (** file bytes of successful loads *)
  bytes_written : int;  (** file bytes of successful publishes *)
}

(** Snapshot of the process-wide counters (domain-safe). *)
val stats : unit -> stats

(** Per-kind counter snapshots, sorted by kind name; kinds that were
    never touched since the last {!reset_stats} are absent. *)
val stats_by_kind : unit -> (string * stats) list

val reset_stats : unit -> unit

(** One-line human-readable counter report, e.g. for [--cache-stats]. *)
val pp_stats : Format.formatter -> stats -> unit

(** Indented per-kind breakdown lines (one per kind, led by a newline),
    meant to follow {!pp_stats}. *)
val pp_stats_by_kind : Format.formatter -> (string * stats) list -> unit

(** Global line plus the per-kind breakdown — the full [--cache-stats]
    report. *)
val pp_report : Format.formatter -> unit -> unit

(** {1 Failure model}

    Every raw filesystem operation goes through {!Fault.Fs}, so the
    whole store can be exercised under injected faults.  The real paths
    are hardened accordingly:

    - reads and writes restart on [EINTR] and continue after short
      transfers until complete;
    - a publish writes the unique temp fully, [fsync]s it, and only
      then renames — a visible entry is also a durable one;
    - transient errnos ([EIO]/[ENOSPC]/[EAGAIN]/[EBUSY]) get a bounded,
      deterministic retry (3 attempts, fixed 10ms/20ms backoff, no
      jitter) with a [cache.retry] Diag event and the {!stats.retried}
      counters before surfacing as [Store_io];
    - the first touch of a store directory reaps [.tmp-*] files whose
      writer pid is dead (or that are older than 15 minutes), one
      [cache.reap-temp] Diag event per file. *)

(** {1 fsck} *)

type fsck_report = {
  fk_scanned : int;  (** regular entries examined *)
  fk_valid : int;  (** entries whose header/CRC/key all validated *)
  fk_quarantined : (string * string) list;
      (** invalid entries moved aside, with the rejection reason —
          quarantining happens even without [~repair], mirroring what a
          reader would do on load *)
  fk_stale_temps : string list;
      (** orphaned [.tmp-*] files (writer dead, or older than
          [max_age]) *)
  fk_aged_corrupt : string list;
      (** quarantined [.corrupt-*] files older than [max_age] *)
  fk_reaped : int;  (** files deleted (only under [~repair:true]) *)
}

(** No issues: nothing quarantined, no stale temps, no aged quarantine
    files.  ([fk_reaped] does not count against cleanliness: a repaired
    store is reported on the pre-repair state.) *)
val fsck_clean : fsck_report -> bool

(** [fsck ()] scans {!dir}: every regular entry is validated against the
    key embedded in its own header (magic, version, CRC, payload decode,
    and filename = sanitized key); invalid entries are quarantined.
    Stale temps and aged [.corrupt-*] files (older than [max_age],
    default 1h) are reported, and deleted when [repair] is set.  A
    missing store directory is vacuously clean.  [Error (Store_io _)]
    only for directory/file read failures — a corrupt entry is a
    finding, not an error. *)
val fsck :
  ?repair:bool -> ?max_age:float -> unit -> (fsck_report, Diag.Error.t) result

(** Human-readable fsck summary plus one line per finding. *)
val pp_fsck_report : Format.formatter -> fsck_report -> unit
