(* Versioned, checksummed binary artifact store with atomic publish and
   quarantine.  See cache.mli for the contract.

   On-disk layout (all integers big-endian):

     offset 0   8 bytes   magic "RLBMCSH1"
     offset 8   u32       container format version
     offset 12  u32       key length K
     offset 16  K bytes   full store key
     ...        u32       payload length N
     ...        u32       CRC-32 (IEEE) of the payload
     ...        N bytes   payload (Marshal blob)

   The file length must equal the header-implied length exactly; anything
   else (truncation, appended garbage) is rejected before Marshal runs.

   All raw I/O goes through Fault.Fs so the fault-injection substrate can
   exercise every failure path deterministically; cleanup of our own temp
   files after a failure deliberately bypasses it (plain Sys.remove) so
   cleanup never consumes an injection site. *)

let magic = "RLBMCSH1"
let format_version = 1

(* ---------- location / enablement ---------- *)

let forced_dir = ref None

let dir () =
  match !forced_dir with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "RLIBM_CACHE_DIR" with
      | Some d when d <> "" -> d
      | _ -> ".oracle-cache")

let set_dir d = forced_dir := Some d

(* Process-local persistence override: checked before the environment,
   so tests and embedders can turn the store off (or force it on) for a
   scope without mutating the process environment — [Unix.putenv] is
   global, races with concurrent domains, and leaks into child
   processes. *)
let persistence_override = ref None

let set_persistence o = persistence_override := o

let enabled () =
  match !persistence_override with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt "RLIBM_NO_DISK_CACHE" with
      | Some s when s <> "" -> false
      | _ -> true)

let with_persistence b f =
  let prev = !persistence_override in
  persistence_override := Some b;
  Fun.protect ~finally:(fun () -> persistence_override := prev) f

let sanitize_key key =
  String.map
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    key

let path_of_key key = Filename.concat (dir ()) (sanitize_key key)

(* ---------- counters ---------- *)

type stats = {
  hits : int;
  misses : int;
  corrupt_rejected : int;
  retried : int;
  bytes_read : int;
  bytes_written : int;
}

let c_hits = Atomic.make 0
let c_misses = Atomic.make 0
let c_corrupt = Atomic.make 0
let c_retried = Atomic.make 0
let c_bytes_read = Atomic.make 0
let c_bytes_written = Atomic.make 0

(* Per-process unique suffix source for temp and quarantine names. *)
let name_counter = Atomic.make 0

(* Per-kind counters: one mutable record per artifact kind, guarded by a
   mutex (loads normally run on the driver domain, but nothing stops a
   worker from touching the store). *)
type kind_counters = {
  mutable k_hits : int;
  mutable k_misses : int;
  mutable k_corrupt : int;
  mutable k_retried : int;
  mutable k_bytes_read : int;
  mutable k_bytes_written : int;
}

let kind_mutex = Mutex.create ()
let kind_table : (string, kind_counters) Hashtbl.t = Hashtbl.create 8

let with_kind kind f =
  Mutex.protect kind_mutex (fun () ->
      let c =
        match Hashtbl.find_opt kind_table kind with
        | Some c -> c
        | None ->
            let c =
              {
                k_hits = 0;
                k_misses = 0;
                k_corrupt = 0;
                k_retried = 0;
                k_bytes_read = 0;
                k_bytes_written = 0;
              }
            in
            Hashtbl.replace kind_table kind c;
            c
      in
      f c)

let stats () =
  {
    hits = Atomic.get c_hits;
    misses = Atomic.get c_misses;
    corrupt_rejected = Atomic.get c_corrupt;
    retried = Atomic.get c_retried;
    bytes_read = Atomic.get c_bytes_read;
    bytes_written = Atomic.get c_bytes_written;
  }

let stats_by_kind () =
  Mutex.protect kind_mutex (fun () ->
      Hashtbl.fold
        (fun kind c acc ->
          ( kind,
            {
              hits = c.k_hits;
              misses = c.k_misses;
              corrupt_rejected = c.k_corrupt;
              retried = c.k_retried;
              bytes_read = c.k_bytes_read;
              bytes_written = c.k_bytes_written;
            } )
          :: acc)
        kind_table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let reset_stats () =
  List.iter
    (fun c -> Atomic.set c 0)
    [ c_hits; c_misses; c_corrupt; c_retried; c_bytes_read; c_bytes_written ];
  Mutex.protect kind_mutex (fun () -> Hashtbl.reset kind_table)

let pp_stats fmt s =
  Format.fprintf fmt
    "artifact cache [%s]: %d hits, %d misses, %d corrupt-rejected, %d \
     retried, %d bytes read, %d bytes written"
    (dir ()) s.hits s.misses s.corrupt_rejected s.retried s.bytes_read
    s.bytes_written

let pp_stats_by_kind fmt kinds =
  List.iter
    (fun (kind, s) ->
      Format.fprintf fmt "@\n  %-12s %d hits, %d misses, %d corrupt-rejected, \
                          %d retried, %d bytes read, %d bytes written"
        kind s.hits s.misses s.corrupt_rejected s.retried s.bytes_read
        s.bytes_written)
    kinds

let pp_report fmt () =
  pp_stats fmt (stats ());
  pp_stats_by_kind fmt (stats_by_kind ())

(* ---------- CRC-32 (IEEE 802.3, the zlib polynomial) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      c :=
        Int32.logxor
          (Int32.shift_right_logical !c 8)
          t.(Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ---------- encode / decode ---------- *)

let encode ~key payload =
  let b = Buffer.create (String.length payload + String.length key + 32) in
  Buffer.add_string b magic;
  Buffer.add_int32_be b (Int32.of_int format_version);
  Buffer.add_int32_be b (Int32.of_int (String.length key));
  Buffer.add_string b key;
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_int32_be b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

type reject =
  | Truncated
  | Bad_magic
  | Bad_version
  | Bad_key
  | Bad_checksum
  | Bad_payload

let decode ~key data =
  let len = String.length data in
  (* u32 fields masked to a non-negative int so garbage lengths cannot
     wrap the bounds checks below. *)
  let u32 off = Int32.to_int (String.get_int32_be data off) land 0xFFFFFFFF in
  if len < 16 then Error Truncated
  else if not (String.equal (String.sub data 0 8) magic) then Error Bad_magic
  else if u32 8 <> format_version then Error Bad_version
  else
    let klen = u32 12 in
    if len < 16 + klen + 8 then Error Truncated
    else if not (String.equal (String.sub data 16 klen) key) then Error Bad_key
    else
      let plen = u32 (16 + klen) in
      let crc = String.get_int32_be data (16 + klen + 4) in
      let poff = 16 + klen + 8 in
      if len <> poff + plen then Error Truncated
      else
        let payload = String.sub data poff plen in
        if not (Int32.equal (crc32 payload) crc) then Error Bad_checksum
        else
          match Marshal.from_string payload 0 with
          | v -> Ok v
          | exception _ -> Error Bad_payload

(* ---------- filesystem plumbing ---------- *)

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Fault.Fs.mkdir d 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> () (* lost a creation race *)
  end

(* EINTR-safe whole-file read; short reads (signal-interrupted or
   injected) just continue the loop. *)
let read_fd fd =
  let bufsz = 65536 in
  let buf = Bytes.create bufsz in
  let b = Buffer.create bufsz in
  let rec go () =
    match Fault.Fs.read fd buf 0 bufsz with
    | 0 -> Buffer.contents b
    | n ->
        Buffer.add_subbytes b buf 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_file path =
  let fd = Fault.Fs.open_read path in
  Fun.protect ~finally:(fun () -> Fault.Fs.close fd) (fun () -> read_fd fd)

(* EINTR-safe full write: restart on EINTR, continue after short
   writes until every byte is down. *)
let write_all fd data =
  let buf = Bytes.unsafe_of_string data in
  let len = Bytes.length buf in
  let rec go off =
    if off < len then
      match Fault.Fs.write fd buf off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let unique_suffix () =
  Printf.sprintf "%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add name_counter 1)

(* Move a rejected file aside so it is never read again but stays
   available for post-mortems; the caller then regenerates. *)
let quarantine path =
  try Sys.rename path (Printf.sprintf "%s.corrupt-%s" path (unique_suffix ()))
  with Sys_error _ -> ()

let detail_of_exn = function
  | Unix.Unix_error (e, fn, arg) ->
      Printf.sprintf "%s%s: %s" fn
        (if arg = "" then "" else " " ^ arg)
        (Unix.error_message e)
  | Sys_error detail -> detail
  | e -> Printexc.to_string e

(* ---------- bounded deterministic retry ---------- *)

(* Errnos worth one more try: transient contention or conditions an
   operator (or a temp reaper) may clear.  EINTR is NOT here — it is
   restarted inside the read/write loops and never counted. *)
let transient_errno = function
  | Unix.EIO | Unix.ENOSPC | Unix.EAGAIN | Unix.EBUSY -> true
  | _ -> false

(* Fixed backoff schedule — length bounds the retries (3 attempts
   total), values are the sleeps between them.  No jitter: a faulted
   run replays identically. *)
let retry_backoff = [| 0.01; 0.02 |]

let with_retry ~kind ~op f =
  let rec go attempt =
    try f ()
    with
    | Unix.Unix_error (e, _, _)
    when transient_errno e && attempt <= Array.length retry_backoff
    ->
      ignore (Atomic.fetch_and_add c_retried 1);
      with_kind kind (fun c -> c.k_retried <- c.k_retried + 1);
      Diag.event ~level:Diag.Warn "cache.retry" (fun () ->
          [
            ("kind", Diag.String kind);
            ("op", Diag.String op);
            ("errno", Diag.String (Unix.error_message e));
            ("attempt", Diag.Int attempt);
          ]);
      Unix.sleepf retry_backoff.(attempt - 1);
      go (attempt + 1)
  in
  go 1

(* ---------- stale temp reaping ---------- *)

(* A temp older than this is reaped even when its writer pid is alive
   (pids recycle); a dead writer's temps are reaped regardless of age. *)
let stale_temp_age = 900.0

(* [suffix_after marker name] finds the first occurrence of [marker]
   and returns what follows it. *)
let suffix_after marker name =
  let ml = String.length marker and nl = String.length name in
  let rec scan i =
    if i + ml > nl then None
    else if String.equal (String.sub name i ml) marker then
      Some (String.sub name (i + ml) (nl - i - ml))
    else scan (i + 1)
  in
  scan 0

(* Writer pid embedded in a [.tmp-<pid>-<counter>] name. *)
let temp_owner_pid name =
  match suffix_after ".tmp-" name with
  | None -> None
  | Some s -> (
      match String.index_opt s '-' with
      | None -> None
      | Some i -> int_of_string_opt (String.sub s 0 i))

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (_, _, _) -> true (* EPERM: exists, not ours *)

let file_age ~now path =
  match Unix.stat path with
  | st -> now -. st.Unix.st_mtime
  | exception Unix.Unix_error _ -> 0.

(* Is this temp abandoned?  Our own live temps are never stale. *)
let temp_is_stale ~now ~max_age path name =
  match temp_owner_pid name with
  | Some pid when pid = Unix.getpid () -> false
  | Some pid when not (pid_alive pid) -> true
  | Some _ | None -> file_age ~now path > max_age

(* Reap abandoned [.tmp-*] files in [d].  Plain [Sys.remove], not
   [Fault.Fs.unlink]: reaping is opportunistic cleanup and must never
   consume or shift fault-injection sites. *)
let reap_stale_temps d =
  match Sys.readdir d with
  | exception Sys_error _ -> ()
  | names ->
      Array.sort compare names;
      let now = Unix.gettimeofday () in
      Array.iter
        (fun name ->
          if suffix_after ".tmp-" name <> None then
            let path = Filename.concat d name in
            if temp_is_stale ~now ~max_age:stale_temp_age path name then
              match Sys.remove path with
              | () ->
                  Diag.event ~level:Diag.Warn "cache.reap-temp" (fun () ->
                      [ ("path", Diag.String path) ])
              | exception Sys_error _ -> ())
        names

let reaped_dirs : (string, unit) Hashtbl.t = Hashtbl.create 4
let reap_mutex = Mutex.create ()

(* First touch of a store directory in this process sweeps the temps a
   crashed writer left behind. *)
let maybe_reap d =
  let fresh =
    Mutex.protect reap_mutex (fun () ->
        if Hashtbl.mem reaped_dirs d then false
        else begin
          Hashtbl.add reaped_dirs d ();
          true
        end)
  in
  if fresh && Sys.file_exists d then reap_stale_temps d

(* ---------- store / load ---------- *)

let reject_reason = function
  | Truncated -> "truncated or wrong length"
  | Bad_magic -> "bad magic"
  | Bad_version -> "container format version mismatch"
  | Bad_key -> "stored under a different key"
  | Bad_checksum -> "payload checksum mismatch"
  | Bad_payload -> "payload failed to deserialize"

(* One publish attempt: unique O_EXCL temp (concurrent writers — or a
   stale temp from a crashed run that recycled our PID — can never open
   the same file), full write, fsync so the data is durable before it
   becomes visible, then atomic rename. *)
let publish path data =
  let rec attempt tries =
    let tmp = Printf.sprintf "%s.tmp-%s" path (unique_suffix ()) in
    match Fault.Fs.open_excl tmp 0o644 with
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when tries > 0 ->
        attempt (tries - 1)
    | fd -> (
        let closed = ref false in
        match
          write_all fd data;
          Fault.Fs.fsync fd;
          Fault.Fs.close fd;
          closed := true;
          Fault.Fs.rename tmp path
        with
        | () -> ()
        | exception e ->
            if not !closed then (
              try Unix.close fd with Unix.Unix_error _ -> ());
            (try Sys.remove tmp with Sys_error _ -> ());
            raise e)
  in
  attempt 3

let store ~kind ~key v =
  if not (enabled ()) then Ok ()
  else begin
    let path = path_of_key key in
    match
      mkdir_p (dir ());
      maybe_reap (dir ());
      encode ~key (Marshal.to_string v [])
    with
    | exception e ->
        Diag.event ~level:Diag.Warn "cache.store-error" (fun () ->
            [ ("kind", Diag.String kind); ("key", Diag.String key) ]);
        Error (Diag.Error.Store_io { path; detail = detail_of_exn e })
    | data -> (
        match with_retry ~kind ~op:"publish" (fun () -> publish path data) with
        | () ->
            ignore (Atomic.fetch_and_add c_bytes_written (String.length data));
            with_kind kind (fun c ->
                c.k_bytes_written <- c.k_bytes_written + String.length data);
            Diag.event "cache.publish" (fun () ->
                [
                  ("kind", Diag.String kind);
                  ("key", Diag.String key);
                  ("bytes", Diag.Int (String.length data));
                ]);
            Ok ()
        | exception e ->
            Diag.event ~level:Diag.Warn "cache.store-error" (fun () ->
                [ ("kind", Diag.String kind); ("key", Diag.String key) ]);
            Error (Diag.Error.Store_io { path; detail = detail_of_exn e }))
  end

let load ~kind ~key =
  if not (enabled ()) then Ok None
  else begin
    maybe_reap (dir ());
    let path = path_of_key key in
    let miss () =
      ignore (Atomic.fetch_and_add c_misses 1);
      with_kind kind (fun c -> c.k_misses <- c.k_misses + 1);
      Diag.event "cache.miss" (fun () ->
          [ ("kind", Diag.String kind); ("key", Diag.String key) ]);
      Ok None
    in
    if not (Sys.file_exists path) then miss ()
    else
      match with_retry ~kind ~op:"read" (fun () -> read_file path) with
      | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
          (* Raced with a reaper or quarantine between the existence
             check and the open: a plain miss. *)
          miss ()
      | exception e ->
          (* The entry exists but cannot be read: a real I/O failure, not
             a miss — regenerating would not help the caller persist. *)
          Error (Diag.Error.Store_io { path; detail = detail_of_exn e })
      | data -> (
          match decode ~key data with
          | Ok v ->
              ignore (Atomic.fetch_and_add c_hits 1);
              ignore (Atomic.fetch_and_add c_bytes_read (String.length data));
              with_kind kind (fun c ->
                  c.k_hits <- c.k_hits + 1;
                  c.k_bytes_read <- c.k_bytes_read + String.length data);
              Diag.event "cache.hit" (fun () ->
                  [
                    ("kind", Diag.String kind);
                    ("key", Diag.String key);
                    ("bytes", Diag.Int (String.length data));
                  ]);
              Ok (Some v)
          | Error reject ->
              quarantine path;
              ignore (Atomic.fetch_and_add c_corrupt 1);
              with_kind kind (fun c -> c.k_corrupt <- c.k_corrupt + 1);
              let reason = reject_reason reject in
              Diag.event ~level:Diag.Warn "cache.corrupt" (fun () ->
                  [
                    ("kind", Diag.String kind);
                    ("key", Diag.String key);
                    ("reason", Diag.String reason);
                  ]);
              Error
                (match reject with
                | Bad_key -> Diag.Error.Key_mismatch { kind; key }
                | _ -> Diag.Error.Corrupt_artifact { kind; key; reason }))
  end

(* ---------- fsck ---------- *)

type fsck_report = {
  fk_scanned : int;
  fk_valid : int;
  fk_quarantined : (string * string) list;
  fk_stale_temps : string list;
  fk_aged_corrupt : string list;
  fk_reaped : int;
}

let fsck_clean r =
  r.fk_quarantined = [] && r.fk_stale_temps = [] && r.fk_aged_corrupt = []

(* Pull the embedded key out of a header without knowing the key in
   advance (fsck has no keys, only files). *)
let embedded_key data =
  let len = String.length data in
  let u32 off = Int32.to_int (String.get_int32_be data off) land 0xFFFFFFFF in
  if len < 16 then Error Truncated
  else if not (String.equal (String.sub data 0 8) magic) then Error Bad_magic
  else if u32 8 <> format_version then Error Bad_version
  else
    let klen = u32 12 in
    if len < 16 + klen + 8 then Error Truncated
    else Ok (String.sub data 16 klen)

let fsck ?(repair = false) ?(max_age = 3600.0) () =
  let d = dir () in
  let empty =
    {
      fk_scanned = 0;
      fk_valid = 0;
      fk_quarantined = [];
      fk_stale_temps = [];
      fk_aged_corrupt = [];
      fk_reaped = 0;
    }
  in
  if not (Sys.file_exists d) then Ok empty
  else
    match Sys.readdir d with
    | exception Sys_error detail ->
        Error (Diag.Error.Store_io { path = d; detail })
    | names -> (
        Array.sort compare names;
        let now = Unix.gettimeofday () in
        let reaped = ref 0 in
        (* Plain Sys.remove for the same reason as the temp reaper:
           repair must not consume injection sites. *)
        let reap path =
          match Sys.remove path with
          | () ->
              incr reaped;
              Diag.event ~level:Diag.Warn "cache.fsck-reap" (fun () ->
                  [ ("path", Diag.String path) ])
          | exception Sys_error _ -> ()
        in
        let validate path name data =
          match embedded_key data with
          | Error reject -> Error (reject_reason reject)
          | Ok key -> (
              match (decode ~key data : (Obj.t, reject) result) with
              | Error reject -> Error (reject_reason reject)
              | Ok _ ->
                  if String.equal (sanitize_key key) name then Ok ()
                  else Error "filename does not match embedded key")
          |> function
          | Ok () -> Ok ()
          | Error reason ->
              quarantine path;
              Diag.event ~level:Diag.Warn "cache.fsck-quarantine" (fun () ->
                  [
                    ("path", Diag.String path); ("reason", Diag.String reason);
                  ]);
              Error reason
        in
        let step acc name =
          match acc with
          | Error _ as e -> e
          | Ok r -> (
              let path = Filename.concat d name in
              if suffix_after ".tmp-" name <> None then begin
                if temp_is_stale ~now ~max_age path name then begin
                  if repair then reap path;
                  Ok { r with fk_stale_temps = path :: r.fk_stale_temps }
                end
                else Ok r
              end
              else if suffix_after ".corrupt-" name <> None then begin
                if file_age ~now path > max_age then begin
                  if repair then reap path;
                  Ok { r with fk_aged_corrupt = path :: r.fk_aged_corrupt }
                end
                else Ok r
              end
              else if not (Sys.is_regular_file path) then Ok r
              else
                match read_file path with
                | exception e ->
                    Error
                      (Diag.Error.Store_io { path; detail = detail_of_exn e })
                | data -> (
                    let r = { r with fk_scanned = r.fk_scanned + 1 } in
                    match validate path name data with
                    | Ok () -> Ok { r with fk_valid = r.fk_valid + 1 }
                    | Error reason ->
                        Ok
                          {
                            r with
                            fk_quarantined =
                              (path, reason) :: r.fk_quarantined;
                          }))
        in
        match Array.fold_left step (Ok empty) names with
        | Error _ as e -> e
        | Ok r ->
            Ok
              {
                r with
                fk_quarantined = List.rev r.fk_quarantined;
                fk_stale_temps = List.rev r.fk_stale_temps;
                fk_aged_corrupt = List.rev r.fk_aged_corrupt;
                fk_reaped = !reaped;
              })

let pp_fsck_report fmt r =
  Format.fprintf fmt
    "store fsck [%s]: %d entries scanned, %d valid, %d quarantined, %d stale \
     temps, %d aged quarantine files, %d reaped"
    (dir ()) r.fk_scanned r.fk_valid
    (List.length r.fk_quarantined)
    (List.length r.fk_stale_temps)
    (List.length r.fk_aged_corrupt)
    r.fk_reaped;
  List.iter
    (fun (p, reason) ->
      Format.fprintf fmt "@\n  quarantined %s (%s)" p reason)
    r.fk_quarantined;
  List.iter
    (fun p -> Format.fprintf fmt "@\n  stale temp %s" p)
    r.fk_stale_temps;
  List.iter
    (fun p -> Format.fprintf fmt "@\n  aged quarantine %s" p)
    r.fk_aged_corrupt
