(* Versioned, checksummed binary artifact store with atomic publish and
   quarantine.  See cache.mli for the contract.

   On-disk layout (all integers big-endian):

     offset 0   8 bytes   magic "RLBMCSH1"
     offset 8   u32       container format version
     offset 12  u32       key length K
     offset 16  K bytes   full store key
     ...        u32       payload length N
     ...        u32       CRC-32 (IEEE) of the payload
     ...        N bytes   payload (Marshal blob)

   The file length must equal the header-implied length exactly; anything
   else (truncation, appended garbage) is rejected before Marshal runs. *)

let magic = "RLBMCSH1"
let format_version = 1

(* ---------- location / enablement ---------- *)

let forced_dir = ref None

let dir () =
  match !forced_dir with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "RLIBM_CACHE_DIR" with
      | Some d when d <> "" -> d
      | _ -> ".oracle-cache")

let set_dir d = forced_dir := Some d

(* Process-local persistence override: checked before the environment,
   so tests and embedders can turn the store off (or force it on) for a
   scope without mutating the process environment — [Unix.putenv] is
   global, races with concurrent domains, and leaks into child
   processes. *)
let persistence_override = ref None

let set_persistence o = persistence_override := o

let enabled () =
  match !persistence_override with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt "RLIBM_NO_DISK_CACHE" with
      | Some s when s <> "" -> false
      | _ -> true)

let with_persistence b f =
  let prev = !persistence_override in
  persistence_override := Some b;
  Fun.protect ~finally:(fun () -> persistence_override := prev) f

let sanitize_key key =
  String.map
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    key

let path_of_key key = Filename.concat (dir ()) (sanitize_key key)

(* ---------- counters ---------- *)

type stats = {
  hits : int;
  misses : int;
  corrupt_rejected : int;
  bytes_read : int;
  bytes_written : int;
}

let c_hits = Atomic.make 0
let c_misses = Atomic.make 0
let c_corrupt = Atomic.make 0
let c_bytes_read = Atomic.make 0
let c_bytes_written = Atomic.make 0

(* Per-process unique suffix source for temp and quarantine names. *)
let name_counter = Atomic.make 0

(* Per-kind counters: one mutable record per artifact kind, guarded by a
   mutex (loads normally run on the driver domain, but nothing stops a
   worker from touching the store). *)
type kind_counters = {
  mutable k_hits : int;
  mutable k_misses : int;
  mutable k_corrupt : int;
  mutable k_bytes_read : int;
  mutable k_bytes_written : int;
}

let kind_mutex = Mutex.create ()
let kind_table : (string, kind_counters) Hashtbl.t = Hashtbl.create 8

let with_kind kind f =
  Mutex.protect kind_mutex (fun () ->
      let c =
        match Hashtbl.find_opt kind_table kind with
        | Some c -> c
        | None ->
            let c =
              {
                k_hits = 0;
                k_misses = 0;
                k_corrupt = 0;
                k_bytes_read = 0;
                k_bytes_written = 0;
              }
            in
            Hashtbl.replace kind_table kind c;
            c
      in
      f c)

let stats () =
  {
    hits = Atomic.get c_hits;
    misses = Atomic.get c_misses;
    corrupt_rejected = Atomic.get c_corrupt;
    bytes_read = Atomic.get c_bytes_read;
    bytes_written = Atomic.get c_bytes_written;
  }

let stats_by_kind () =
  Mutex.protect kind_mutex (fun () ->
      Hashtbl.fold
        (fun kind c acc ->
          ( kind,
            {
              hits = c.k_hits;
              misses = c.k_misses;
              corrupt_rejected = c.k_corrupt;
              bytes_read = c.k_bytes_read;
              bytes_written = c.k_bytes_written;
            } )
          :: acc)
        kind_table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let reset_stats () =
  List.iter
    (fun c -> Atomic.set c 0)
    [ c_hits; c_misses; c_corrupt; c_bytes_read; c_bytes_written ];
  Mutex.protect kind_mutex (fun () -> Hashtbl.reset kind_table)

let pp_stats fmt s =
  Format.fprintf fmt
    "artifact cache [%s]: %d hits, %d misses, %d corrupt-rejected, %d bytes \
     read, %d bytes written"
    (dir ()) s.hits s.misses s.corrupt_rejected s.bytes_read s.bytes_written

let pp_stats_by_kind fmt kinds =
  List.iter
    (fun (kind, s) ->
      Format.fprintf fmt "@\n  %-12s %d hits, %d misses, %d corrupt-rejected, \
                          %d bytes read, %d bytes written"
        kind s.hits s.misses s.corrupt_rejected s.bytes_read s.bytes_written)
    kinds

let pp_report fmt () =
  pp_stats fmt (stats ());
  pp_stats_by_kind fmt (stats_by_kind ())

(* ---------- CRC-32 (IEEE 802.3, the zlib polynomial) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      c :=
        Int32.logxor
          (Int32.shift_right_logical !c 8)
          t.(Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ---------- encode / decode ---------- *)

let encode ~key payload =
  let b = Buffer.create (String.length payload + String.length key + 32) in
  Buffer.add_string b magic;
  Buffer.add_int32_be b (Int32.of_int format_version);
  Buffer.add_int32_be b (Int32.of_int (String.length key));
  Buffer.add_string b key;
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_int32_be b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

type reject =
  | Truncated
  | Bad_magic
  | Bad_version
  | Bad_key
  | Bad_checksum
  | Bad_payload

let decode ~key data =
  let len = String.length data in
  (* u32 fields masked to a non-negative int so garbage lengths cannot
     wrap the bounds checks below. *)
  let u32 off = Int32.to_int (String.get_int32_be data off) land 0xFFFFFFFF in
  if len < 16 then Error Truncated
  else if not (String.equal (String.sub data 0 8) magic) then Error Bad_magic
  else if u32 8 <> format_version then Error Bad_version
  else
    let klen = u32 12 in
    if len < 16 + klen + 8 then Error Truncated
    else if not (String.equal (String.sub data 16 klen) key) then Error Bad_key
    else
      let plen = u32 (16 + klen) in
      let crc = String.get_int32_be data (16 + klen + 4) in
      let poff = 16 + klen + 8 in
      if len <> poff + plen then Error Truncated
      else
        let payload = String.sub data poff plen in
        if not (Int32.equal (crc32 payload) crc) then Error Bad_checksum
        else
          match Marshal.from_string payload 0 with
          | v -> Ok v
          | exception _ -> Error Bad_payload

(* ---------- filesystem plumbing ---------- *)

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> () (* lost a creation race *)
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let unique_suffix () =
  Printf.sprintf "%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add name_counter 1)

(* Move a rejected file aside so it is never read again but stays
   available for post-mortems; the caller then regenerates. *)
let quarantine path =
  try Sys.rename path (Printf.sprintf "%s.corrupt-%s" path (unique_suffix ()))
  with Sys_error _ -> ()

(* ---------- store / load ---------- *)

let reject_reason = function
  | Truncated -> "truncated or wrong length"
  | Bad_magic -> "bad magic"
  | Bad_version -> "container format version mismatch"
  | Bad_key -> "stored under a different key"
  | Bad_checksum -> "payload checksum mismatch"
  | Bad_payload -> "payload failed to deserialize"

let store ~kind ~key v =
  if not (enabled ()) then Ok ()
  else begin
    let path = path_of_key key in
    match
      mkdir_p (dir ());
      encode ~key (Marshal.to_string v [])
    with
    | exception e ->
        Diag.event ~level:Diag.Warn "cache.store-error" (fun () ->
            [ ("kind", Diag.String kind); ("key", Diag.String key) ]);
        Error (Diag.Error.Store_io { path; detail = Printexc.to_string e })
    | data -> (
        (* Unique O_EXCL temp per attempt: concurrent writers (or a stale
           temp from a crashed run that recycled our PID) can never open
           the same file, and the final rename publishes atomically. *)
        let rec attempt tries =
          let tmp = Printf.sprintf "%s.tmp-%s" path (unique_suffix ()) in
          match
            open_out_gen [ Open_wronly; Open_creat; Open_excl; Open_binary ]
              0o644 tmp
          with
          | oc -> (
              match
                output_string oc data;
                close_out oc
              with
              | () ->
                  Sys.rename tmp path;
                  ignore
                    (Atomic.fetch_and_add c_bytes_written (String.length data));
                  with_kind kind (fun c ->
                      c.k_bytes_written <- c.k_bytes_written + String.length data);
                  Diag.event "cache.publish" (fun () ->
                      [
                        ("kind", Diag.String kind);
                        ("key", Diag.String key);
                        ("bytes", Diag.Int (String.length data));
                      ]);
                  Ok ()
              | exception e ->
                  close_out_noerr oc;
                  (try Sys.remove tmp with Sys_error _ -> ());
                  raise e)
          | exception Sys_error _ when tries > 0 -> attempt (tries - 1)
        in
        match attempt 3 with
        | r -> r
        | exception e ->
            Diag.event ~level:Diag.Warn "cache.store-error" (fun () ->
                [ ("kind", Diag.String kind); ("key", Diag.String key) ]);
            Error (Diag.Error.Store_io { path; detail = Printexc.to_string e }))
  end

let load ~kind ~key =
  if not (enabled ()) then Ok None
  else
    let path = path_of_key key in
    let miss () =
      ignore (Atomic.fetch_and_add c_misses 1);
      with_kind kind (fun c -> c.k_misses <- c.k_misses + 1);
      Diag.event "cache.miss" (fun () ->
          [ ("kind", Diag.String kind); ("key", Diag.String key) ]);
      Ok None
    in
    if not (Sys.file_exists path) then miss ()
    else
      match read_file path with
      | exception Sys_error detail ->
          (* The entry exists but cannot be read: a real I/O failure, not
             a miss — regenerating would not help the caller persist. *)
          Error (Diag.Error.Store_io { path; detail })
      | data -> (
          match decode ~key data with
          | Ok v ->
              ignore (Atomic.fetch_and_add c_hits 1);
              ignore (Atomic.fetch_and_add c_bytes_read (String.length data));
              with_kind kind (fun c ->
                  c.k_hits <- c.k_hits + 1;
                  c.k_bytes_read <- c.k_bytes_read + String.length data);
              Diag.event "cache.hit" (fun () ->
                  [
                    ("kind", Diag.String kind);
                    ("key", Diag.String key);
                    ("bytes", Diag.Int (String.length data));
                  ]);
              Ok (Some v)
          | Error reject ->
              quarantine path;
              ignore (Atomic.fetch_and_add c_corrupt 1);
              with_kind kind (fun c -> c.k_corrupt <- c.k_corrupt + 1);
              let reason = reject_reason reject in
              Diag.event ~level:Diag.Warn "cache.corrupt" (fun () ->
                  [
                    ("kind", Diag.String kind);
                    ("key", Diag.String key);
                    ("reason", Diag.String reason);
                  ]);
              Error
                (match reject with
                | Bad_key -> Diag.Error.Key_mismatch { kind; key }
                | _ -> Diag.Error.Corrupt_artifact { kind; key; reason }))
