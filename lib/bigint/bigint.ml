(* Arbitrary-precision signed integers: sign-magnitude over 30-bit limbs.

   Magnitudes are little-endian [int array]s with no trailing zero limb.
   The empty magnitude represents zero and always carries sign 0.  The base
   2^30 leaves enough headroom in a 63-bit native int for a full limb
   product plus carries, so schoolbook multiplication needs no splitting. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ---------- magnitude helpers ---------- *)

(* Strip trailing zero limbs; returns a fresh array only when needed. *)
let trim mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let t = top (n - 1) in
  if t = n - 1 then mag else Array.sub mag 0 (t + 1)

let make sign mag =
  let mag = trim mag in
  if Array.length mag = 0 then zero else { sign; mag }

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = if la > lb then la else lb in
  let r = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let ai = if i < la then a.(i) else 0 in
    let bi = if i < lb then b.(i) else 0 in
    let s = ai + bi + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(lmax) <- !carry;
  r

(* Requires |a| >= |b|. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bi = if i < lb then b.(i) else 0 in
    let d = a.(i) - bi - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let mag_mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let t = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land limb_mask;
        carry := t lsr limb_bits;
        incr k
      done
    end
  done;
  r

let karatsuba_threshold = 32

(* Karatsuba multiplication for large magnitudes.  Splits at half the
   shorter length; the recursion bottoms out on the schoolbook routine. *)
let rec mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la < karatsuba_threshold || lb < karatsuba_threshold then
    mag_mul_schoolbook a b
  else begin
    let half = (Stdlib.min la lb + 1) / 2 in
    let lo x = trim (Array.sub x 0 (Stdlib.min half (Array.length x))) in
    let hi x =
      if Array.length x <= half then [||]
      else Array.sub x half (Array.length x - half)
    in
    let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
    let z0 = mag_mul a0 b0 in
    let z2 = mag_mul a1 b1 in
    let z1 =
      (* (a0+a1)(b0+b1) - z0 - z2 *)
      let s = mag_mul (trim (mag_add a0 a1)) (trim (mag_add b0 b1)) in
      trim (mag_sub (trim (mag_sub (trim s) (trim z0))) (trim z2))
    in
    let len = la + lb in
    let r = Array.make len 0 in
    let add_into src off =
      let carry = ref 0 in
      let ls = Array.length src in
      for i = 0 to ls - 1 do
        let t = r.(off + i) + src.(i) + !carry in
        r.(off + i) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      let k = ref (off + ls) in
      while !carry <> 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land limb_mask;
        carry := t lsr limb_bits;
        incr k
      done
    in
    add_into (trim z0) 0;
    add_into z1 half;
    add_into (trim z2) (2 * half);
    r
  end

(* Multiply magnitude by a small non-negative int (< base). *)
let mag_mul_small a m =
  if m = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) * m) + !carry in
      r.(i) <- t land limb_mask;
      carry := t lsr limb_bits
    done;
    r.(la) <- !carry;
    r
  end

(* Multiply magnitude by an arbitrary positive native int: decompose the
   scalar into base-2^30 limbs (at most three on 64-bit) and run one
   multiply-accumulate pass per scalar limb.  Accumulator bound:
   r_slot + a_i*m + carry < 2^30 + 2^60 + 2^31 fits a native int. *)
let mag_mul_int a n =
  if n < base then mag_mul_small a n
  else begin
    let la = Array.length a in
    let n0 = n land limb_mask in
    let n1 = (n lsr limb_bits) land limb_mask in
    let n2 = n lsr (2 * limb_bits) in
    let ln = if n2 <> 0 then 3 else 2 in
    let r = Array.make (la + ln) 0 in
    let pass k m =
      if m <> 0 then begin
        let carry = ref 0 in
        for i = 0 to la - 1 do
          let t = r.(i + k) + (a.(i) * m) + !carry in
          r.(i + k) <- t land limb_mask;
          carry := t lsr limb_bits
        done;
        (* Top slot of this pass is still untouched by later passes. *)
        r.(la + k) <- !carry
      end
    in
    pass 0 n0;
    pass 1 n1;
    if ln = 3 then pass 2 n2;
    r
  end

(* Divide magnitude by a small positive int (< base); returns quotient
   magnitude and the integer remainder. *)
let mag_divmod_small a m =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor a.(i) in
    q.(i) <- cur / m;
    rem := cur mod m
  done;
  (q, !rem)

let mag_shift_left a k =
  if Array.length a = 0 then [||]
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let t = (a.(i) lsl bits) lor !carry in
        r.(i + limbs) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      r.(la + limbs) <- !carry
    end;
    r
  end

(* Logical right shift of the magnitude (truncates low bits). *)
let mag_shift_right a k =
  let limbs = k / limb_bits and bits = k mod limb_bits in
  let la = Array.length a in
  if limbs >= la then [||]
  else begin
    let lr = la - limbs in
    let r = Array.make lr 0 in
    if bits = 0 then Array.blit a limbs r 0 lr
    else
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi =
          if i + limbs + 1 < la then
            (a.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask
          else 0
        in
        r.(i) <- lo lor hi
      done;
    r
  end

let int_numbits n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let mag_numbits a =
  let la = Array.length a in
  if la = 0 then 0 else ((la - 1) * limb_bits) + int_numbits a.(la - 1)

(* Knuth Algorithm D.  Requires |u| >= |v| and Array.length v >= 2. *)
let mag_divmod_knuth u v =
  let n = Array.length v in
  (* Normalize so the top limb of v is >= base/2. *)
  let shift = limb_bits - int_numbits v.(n - 1) in
  let vn = trim (mag_shift_left v shift) in
  let un_raw = mag_shift_left u shift in
  (* Ensure un has exactly (m + n + 1) limbs. *)
  let m = Array.length (trim un_raw) - n in
  let m = if m < 0 then 0 else m in
  let un = Array.make (m + n + 1) 0 in
  let raw = trim un_raw in
  Array.blit raw 0 un 0 (Array.length raw);
  let q = Array.make (m + 1) 0 in
  let vtop = vn.(n - 1) in
  let vsecond = if n >= 2 then vn.(n - 2) else 0 in
  for j = m downto 0 do
    (* Estimate the quotient limb. *)
    let numerator = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
    let qhat = ref (numerator / vtop) in
    let rhat = ref (numerator mod vtop) in
    let adjust () =
      !qhat >= base
      || !qhat * vsecond > (!rhat lsl limb_bits) lor un.(j + n - 2)
    in
    while n >= 2 && !rhat < base && adjust () do
      decr qhat;
      rhat := !rhat + vtop
    done;
    (* Multiply and subtract: un[j .. j+n] -= qhat * vn. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = un.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin
        un.(i + j) <- d + base;
        borrow := 1
      end else begin
        un.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = un.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add back. *)
      un.(j + n) <- d + base;
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to n - 1 do
        let s = un.(i + j) + vn.(i) + !carry2 in
        un.(i + j) <- s land limb_mask;
        carry2 := s lsr limb_bits
      done;
      un.(j + n) <- (un.(j + n) + !carry2) land limb_mask
    end else un.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = mag_shift_right (trim un) shift in
  (trim q, trim r)

let mag_divmod u v =
  match Array.length v with
  | 0 -> raise Division_by_zero
  | _ when mag_compare u v < 0 -> ([||], Array.copy u)
  | 1 ->
      let q, r = mag_divmod_small u v.(0) in
      (trim q, if r = 0 then [||] else [| r |])
  | _ -> mag_divmod_knuth u v

(* ---------- construction and conversion ---------- *)

let of_int n =
  if n = 0 then zero
  else begin
    (* Work on the negative side so [abs min_int] cannot overflow; OCaml's
       [mod] keeps the dividend's sign, so [neg mod base] is in (-base, 0]. *)
    let sign = if n < 0 then -1 else 1 in
    let rec go neg acc =
      if neg = 0 then List.rev acc
      else go (neg / base) (-(neg mod base) :: acc)
    in
    make sign (Array.of_list (go (if n < 0 then n else -n) []))
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let ten = of_int 10

let sign x = x.sign
let is_zero x = x.sign = 0

let numbits x = mag_numbits x.mag

let to_int x =
  if x.sign = 0 then Some 0
  else begin
    let nb = numbits x in
    if nb <= 62 then begin
      let v = ref 0 in
      for i = Array.length x.mag - 1 downto 0 do
        v := (!v lsl limb_bits) lor x.mag.(i)
      done;
      Some (if x.sign < 0 then - !v else !v)
    end
    else if
      (* min_int = -2^62 has a 63-bit magnitude but still fits. *)
      nb = 63 && x.sign < 0
      && Array.for_all (fun l -> l = 0) (Array.sub x.mag 0 2)
      && x.mag.(2) = 1 lsl 2
    then Some min_int
    else None
  end

let to_int_exn x =
  match to_int x with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: value does not fit in an int"

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_one x = x.sign = 1 && Array.length x.mag = 1 && x.mag.(0) = 1
let is_even x = x.sign = 0 || x.mag.(0) land 1 = 0
let is_odd x = not (is_even x)

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else begin
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (mag_sub a.mag b.mag)
    else make b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ x = add x one
let pred x = sub x one
let add_int x n = add x (of_int n)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let mul_int a n =
  if n = 0 || a.sign = 0 then zero
  else if n = Stdlib.min_int then
    (* The one value whose magnitude [abs] cannot represent. *)
    mul a (of_int n)
  else
    let s = if n < 0 then -a.sign else a.sign in
    make s (mag_mul_int a.mag (Stdlib.abs n))

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = mag_divmod a.mag b.mag in
    let q = make (a.sign * b.sign) qm in
    let r = make a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let fdivmod a b =
  let q, r = divmod a b in
  if r.sign <> 0 && r.sign <> b.sign then (pred q, add r b) else (q, r)

let fdiv a b = fst (fdivmod a b)

let cdiv a b =
  let q, r = divmod a b in
  if r.sign <> 0 && r.sign = b.sign then succ q else q

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else
      let acc = if n land 1 = 1 then mul acc base else acc in
      if n = 1 then acc else go acc (mul base base) (n lsr 1)
  in
  go one x n

let shift_left x k =
  if k < 0 then invalid_arg "Bigint.shift_left: negative shift";
  if x.sign = 0 || k = 0 then x else make x.sign (mag_shift_left x.mag k)

let pow2 n = shift_left one n

let testbit x k =
  let limb = k / limb_bits and bit = k mod limb_bits in
  limb < Array.length x.mag && (x.mag.(limb) lsr bit) land 1 = 1

let shift_right x k =
  if k < 0 then invalid_arg "Bigint.shift_right: negative shift";
  if x.sign = 0 || k = 0 then x
  else begin
    let m = mag_shift_right x.mag k in
    let q = make x.sign m in
    if x.sign < 0 then begin
      (* Floor semantics: if any truncated bit was set, subtract one. *)
      let dropped =
        let rec any i = i < k && (testbit x i || any (i + 1)) in
        any 0
      in
      if dropped then pred q else q
    end
    else q
  end

let trailing_zeros x =
  if x.sign = 0 then invalid_arg "Bigint.trailing_zeros: zero";
  let rec limb i = if x.mag.(i) = 0 then limb (i + 1) else i in
  let i = limb 0 in
  let v = x.mag.(i) in
  let rec bit v acc = if v land 1 = 1 then acc else bit (v lsr 1) (acc + 1) in
  (i * limb_bits) + bit v 0

(* Binary GCD: shifts and subtractions only — much cheaper than repeated
   Knuth division for the small-to-medium operands the LP solver
   produces. *)
let gcd a b =
  let a = abs a and b = abs b in
  if is_zero a then b
  else if is_zero b then a
  else begin
    let za = trailing_zeros a and zb = trailing_zeros b in
    let shift = Stdlib.min za zb in
    let rec go a b =
      (* invariants: a, b odd and positive *)
      let c = compare a b in
      if c = 0 then a
      else begin
        let a, b = if c > 0 then (a, b) else (b, a) in
        let d = sub a b in
        go (shift_right d (trailing_zeros d)) b
      end
    in
    shift_left (go (shift_right a za) (shift_right b zb)) shift
  end

(* ---------- string conversion ---------- *)

let dec_chunk = 1_000_000_000 (* 10^9 < base^2; fits small-div routines *)

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks mag acc =
      if Array.length mag = 0 then acc
      else
        let q, r = mag_divmod_small mag dec_chunk in
        chunks (trim q) (r :: acc)
    in
    (match chunks x.mag [] with
    | [] -> assert false
    | first :: rest ->
        if x.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let hex = len - start > 2 && s.[start] = '0' && (s.[start + 1] = 'x' || s.[start + 1] = 'X') in
  let start = if hex then start + 2 else start in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' when hex -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' when hex -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg (Printf.sprintf "Bigint.of_string: bad character %C" c)
  in
  let radix = if hex then 16 else 10 in
  let acc = ref zero in
  let seen = ref false in
  for i = start to len - 1 do
    if s.[i] <> '_' then begin
      seen := true;
      acc := add_int (mul_int !acc radix) (digit s.[i])
    end
  done;
  if not !seen then invalid_arg "Bigint.of_string: no digits";
  if sign < 0 then neg !acc else !acc

(* Correctly rounded conversion to double (round-to-nearest, ties to even). *)
let to_float x =
  if x.sign = 0 then 0.0
  else begin
    let n = numbits x in
    let m = abs x in
    let value =
      if n <= 53 then begin
        (* Exact: accumulate limbs; every step stays within 53 bits. *)
        let acc = ref 0.0 in
        for i = Array.length m.mag - 1 downto 0 do
          acc := (!acc *. float_of_int base) +. float_of_int m.mag.(i)
        done;
        !acc
      end
      else begin
        let top = to_int_exn (shift_right m (n - 53)) in
        let rbit = testbit m (n - 54) in
        let sticky =
          let rec any i = i >= 0 && (testbit m i || any (i - 1)) in
          n - 55 >= 0 && any (n - 55)
        in
        let top = if rbit && (sticky || top land 1 = 1) then top + 1 else top in
        ldexp (float_of_int top) (n - 53)
      end
    in
    if x.sign < 0 then -.value else value
  end

let hash x = Hashtbl.hash (x.sign, x.mag)

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
  let ( <> ) a b = not (equal a b)
end
