(** Correctly rounded oracle for the registered elementary functions.

    Substitute for the MPFR-based oracle (and for the precomputed oracle
    files of the artifact): each function is evaluated over exact rationals
    with rigorous outward-rounded interval enclosures ({!Ival}), and a Ziv
    loop raises the working precision until the enclosure rounds
    unambiguously in the requested format and rounding mode.  Values that
    are exactly representable (where the Ziv loop cannot terminate) are
    detected algebraically: by the Lindemann–Weierstrass and
    Gelfond–Schneider theorems, [exp x] is rational only at [x = 0],
    [2^x]/[10^x] only at integer [x], [log x] only at [x = 1], and
    [log2 x]/[log10 x] only at exact powers of the base.

    All per-function knowledge (domains, exact-value rules, enclosure
    kernels, reduction families, presets) lives in the {!Funcspec}
    registry; this module re-exports the function type and wraps the
    registry's closures with the function-agnostic Ziv machinery. *)

type func = Funcspec.func = Exp | Exp2 | Exp10 | Log | Log2 | Log10

val all : func list
val name : func -> string
val of_name : string -> func option

(** [domain_ok f x]: [x] is in the open domain of [f] (positive reals for
    the logarithms, all rationals otherwise). *)
val domain_ok : func -> Rat.t -> bool

(** [exact_value f x] is [Some y] when [f x] is exactly the rational [y]. *)
val exact_value : func -> Rat.t -> Rat.t option

(** [enclosure f x ~prec] is a rigorous interval around [f x] whose width
    is approximately [2^-prec] (absolute, relative to the natural scale of
    the reduced computation).
    @raise Invalid_argument when [x] is outside the domain, or when the
    result's binary exponent is astronomically large (callers must use
    {!correctly_round}, which short-circuits those cases). *)
val enclosure : func -> Rat.t -> prec:int -> Ival.t

(** [correctly_round f x ~fmt ~mode] is the correctly rounded result of
    [f x] in the given format and rounding mode, handling overflow,
    underflow and exactly representable results.
    @raise Invalid_argument when [x] is outside the domain of [f]. *)
val correctly_round :
  func -> Rat.t -> fmt:Softfp.fmt -> mode:Softfp.mode -> Softfp.bits

(** A rounder memoizes the enclosures of one [f x], making it cheap to
    round the same value into many formats and rounding modes — the access
    pattern of the multi-representation verification harness. *)
type rounder

(** @raise Invalid_argument when [x] is outside the domain of [f]. *)
val make_rounder : func -> Rat.t -> rounder

val round_with : rounder -> fmt:Softfp.fmt -> mode:Softfp.mode -> Softfp.bits

(** [float64 f x] is the round-to-nearest-even double result of [f x] for a
    finite double [x] in the domain — a drop-in correctly rounded scalar
    reference for tests and for range-reduction constants. *)
val float64 : func -> float -> float

(** [ln2 ~prec] and [ln10 ~prec]: cached enclosures of the constants. *)
val ln2 : prec:int -> Ival.t

val ln10 : prec:int -> Ival.t
