(* Interval-based correctly rounded oracle (MPFR substitute).

   All enclosures are computed with outward-rounded dyadic interval
   arithmetic at a working precision a few dozen bits above the requested
   one; truncation errors of the series are added explicitly from
   conservative closed-form remainder bounds. *)

module B = Bigint
module D = Dyadic

type func = Exp | Exp2 | Exp10 | Log | Log2 | Log10

let all = [ Exp; Exp2; Exp10; Log; Log2; Log10 ]

let name = function
  | Exp -> "exp"
  | Exp2 -> "exp2"
  | Exp10 -> "exp10"
  | Log -> "log"
  | Log2 -> "log2"
  | Log10 -> "log10"

let of_name = function
  | "exp" -> Some Exp
  | "exp2" -> Some Exp2
  | "exp10" -> Some Exp10
  | "log" | "ln" -> Some Log
  | "log2" -> Some Log2
  | "log10" -> Some Log10
  | _ -> None

let domain_ok f x =
  match f with
  | Exp | Exp2 | Exp10 -> true
  | Log | Log2 | Log10 -> Rat.sign x > 0

(* ---------- series kernels ---------- *)

(* atanh(t) for an exact rational 0 <= t <= 1/3 + eps. *)
let atanh_enclosure t ~prec =
  if Rat.is_zero t then Ival.point D.zero
  else begin
    let wp = prec + 24 in
    let tf = Rat.to_float t in
    assert (tf > 0.0 && tf < 0.5);
    (* Smallest N with t^(2N+3) / ((2N+3)(1 - t^2)) < 2^-(prec+8); the
       comparison runs in log2 space so that large [prec] cannot underflow
       double arithmetic. *)
    let lt = Float.log2 tf in
    let slack = Float.log2 (1.0 -. (tf *. tf)) in
    let n_terms =
      let rec go n =
        let l =
          (float_of_int ((2 * n) + 3) *. lt)
          -. Float.log2 (float_of_int ((2 * n) + 3))
          -. slack
        in
        if l < float_of_int (-(prec + 8)) then n else go (n + 1)
      in
      go 0
    in
    let tiv = Ival.of_rat ~prec:wp t in
    let t2iv = Ival.mul ~prec:wp tiv tiv in
    let sum = ref (Ival.point D.zero) in
    let power = ref tiv in
    for i = 0 to n_terms do
      let term = Ival.div ~prec:wp !power (Ival.of_int ((2 * i) + 1)) in
      sum := Ival.add ~prec:wp !sum term;
      power := Ival.mul ~prec:wp !power t2iv
    done;
    (* Remainder of the positive series: bounded by
       t^(2N+3) / ((2N+3) (1 - t^2)) <= hi(power) * 9/8 since t <= 1/3. *)
    let rem =
      let p_hi = Ival.hi !power in
      D.round D.Up ~prec:wp (D.mul p_hi (D.make (B.of_int 9) (-3)))
    in
    Ival.widen !sum rem
  end

(* exp(r) for an interval r with |r| <= 3/4. *)
let exp_reduced riv ~prec =
  let wp = prec + 24 in
  let rmax = Rat.to_float (D.to_rat (Ival.mag_hi riv)) in
  assert (rmax <= 0.75);
  if rmax = 0.0 then Ival.of_int 1
  else begin
    (* Smallest N with rmax^(N+1)/(N+1)! / (1-rmax) < 2^-(prec+8), tracked
       in log2 space to survive large [prec]. *)
    let lr = Float.log2 rmax in
    let slack = Float.log2 (1.0 -. rmax) in
    let lterm = ref 0.0 in
    let n_terms = ref 0 in
    let continue = ref true in
    while !continue do
      incr n_terms;
      lterm := !lterm +. lr -. Float.log2 (float_of_int !n_terms);
      if !lterm -. slack < float_of_int (-(prec + 8)) then continue := false
    done;
    let n_terms = !n_terms in
    (* Horner: acc_k = 1 + r/k * acc_{k+1}. *)
    let acc = ref (Ival.of_int 1) in
    for k = n_terms downto 1 do
      let t = Ival.div ~prec:wp (Ival.mul ~prec:wp riv !acc) (Ival.of_int k) in
      acc := Ival.add ~prec:wp (Ival.of_int 1) t
    done;
    (* The remainder bound as a power of two strictly above the log2-space
       estimate (dyadic exponents never underflow). *)
    let rem = D.pow2 (int_of_float (Float.ceil (!lterm -. slack)) + 2) in
    Ival.widen !acc rem
  end

(* ---------- cached constants ---------- *)

(* Enclosure evaluation runs on worker domains during parallel oracle
   table construction, so the shared constant cache is mutex-protected.
   [compute] runs outside the lock (it may recurse into [cached], and a
   duplicated computation is deterministic and merely wasted work). *)
let const_cache : (string * int, Ival.t) Hashtbl.t = Hashtbl.create 16
let const_cache_mutex = Mutex.create ()

let cached key ~prec compute =
  let lookup () =
    Mutex.lock const_cache_mutex;
    let v = Hashtbl.find_opt const_cache (key, prec) in
    Mutex.unlock const_cache_mutex;
    v
  in
  match lookup () with
  | Some v -> v
  | None ->
      let v = compute () in
      Mutex.lock const_cache_mutex;
      (* First writer wins so every domain sees one value per key. *)
      let v =
        match Hashtbl.find_opt const_cache (key, prec) with
        | Some v0 -> v0
        | None ->
            Hashtbl.replace const_cache (key, prec) v;
            v
      in
      Mutex.unlock const_cache_mutex;
      v

(* ln 2 = 2 atanh(1/3). *)
let ln2 ~prec =
  cached "ln2" ~prec (fun () ->
      Ival.mul_2exp (atanh_enclosure (Rat.of_ints 1 3) ~prec:(prec + 4)) 1)

(* ln 10 = 3 ln 2 + 2 atanh(1/9)   (10 = 1.25 * 2^3, t = 1/9). *)
let ln10 ~prec =
  cached "ln10" ~prec (fun () ->
      let wp = prec + 8 in
      let a = Ival.mul ~prec:wp (Ival.of_int 3) (ln2 ~prec:wp) in
      let b = Ival.mul_2exp (atanh_enclosure (Rat.of_ints 1 9) ~prec:wp) 1 in
      Ival.add ~prec:wp a b)

(* ---------- per-function enclosures ---------- *)

(* exp of an arbitrary (narrow) interval: reduce by n*ln2. *)
let exp_ival xiv ~prec =
  let wp = prec + 24 in
  let mid = Rat.to_float (D.to_rat (Ival.lo xiv)) in
  if Float.abs mid > 1.0e7 then
    invalid_arg "Oracle: exponent argument too large for direct enclosure";
  let n = int_of_float (Float.round (mid /. Float.log 2.0)) in
  let r = Ival.sub ~prec:wp xiv (Ival.mul ~prec:wp (Ival.of_int n) (ln2 ~prec:wp)) in
  Ival.mul_2exp (exp_reduced r ~prec) n

(* ln of an exact positive rational. *)
let log_enclosure x ~prec =
  assert (Rat.sign x > 0);
  let wp = prec + 24 in
  (* x = m * 2^k with m in [1, 2). *)
  let k =
    let c = B.numbits (Rat.num x) - B.numbits (Rat.den x) in
    if Rat.compare x (Rat.mul_pow2 Rat.one c) >= 0 then c else c - 1
  in
  let m = Rat.mul_pow2 x (-k) in
  let t = Rat.div (Rat.sub m Rat.one) (Rat.add m Rat.one) in
  let atan_part = Ival.mul_2exp (atanh_enclosure t ~prec:wp) 1 in
  Ival.add ~prec:wp (Ival.mul ~prec:wp (Ival.of_int k) (ln2 ~prec:wp)) atan_part

let enclosure f x ~prec =
  if not (domain_ok f x) then invalid_arg "Oracle.enclosure: domain";
  let wp = prec + 24 in
  match f with
  | Exp -> exp_ival (Ival.of_rat ~prec:wp x) ~prec
  | Exp2 ->
      (* 2^x = 2^n * exp(f ln2), n = floor x, f = x - n in [0,1). *)
      let n = B.to_int_exn (Rat.floor x) in
      let frac = Rat.sub x (Rat.of_int n) in
      let r = Ival.mul ~prec:wp (Ival.of_rat ~prec:wp frac) (ln2 ~prec:wp) in
      Ival.mul_2exp (exp_reduced r ~prec) n
  | Exp10 ->
      let t = Ival.mul ~prec:wp (Ival.of_rat ~prec:wp x) (ln10 ~prec:wp) in
      exp_ival t ~prec
  | Log -> log_enclosure x ~prec
  | Log2 -> Ival.div ~prec:wp (log_enclosure x ~prec:wp) (ln2 ~prec:wp)
  | Log10 -> Ival.div ~prec:wp (log_enclosure x ~prec:wp) (ln10 ~prec:wp)

(* ---------- exactly representable results ---------- *)

let is_pow2 n = B.sign n > 0 && B.numbits n - 1 = B.trailing_zeros n

(* x = 2^k exactly? *)
let pow2_exponent x =
  let n = Rat.num x and d = Rat.den x in
  if B.sign n <= 0 then None
  else if B.is_one d && is_pow2 n then Some (B.numbits n - 1)
  else if B.is_one n && is_pow2 d then Some (-(B.numbits d - 1))
  else None

(* x = 10^k exactly? *)
let pow10_exponent x =
  if Rat.sign x <= 0 then None
  else begin
    let lf = Float.log10 (Rat.to_float x) in
    if not (Float.is_finite lf) || Float.abs lf > 400.0 then None
    else begin
      let k = int_of_float (Float.round lf) in
      if Rat.equal x (Rat.pow (Rat.of_int 10) k) then Some k else None
    end
  end

let exact_value f x =
  match f with
  | Exp -> if Rat.is_zero x then Some Rat.one else None
  | Exp2 ->
      if Rat.is_integer x && B.numbits (Rat.num x) <= 24 then
        Some (Rat.mul_pow2 Rat.one (B.to_int_exn (Rat.num x)))
      else None
  | Exp10 ->
      if Rat.is_integer x && B.numbits (Rat.num x) <= 16 then
        Some (Rat.pow (Rat.of_int 10) (B.to_int_exn (Rat.num x)))
      else None
  | Log -> if Rat.equal x Rat.one then Some Rat.zero else None
  | Log2 -> Option.map Rat.of_int (pow2_exponent x)
  | Log10 -> Option.map Rat.of_int (pow10_exponent x)

(* ---------- correctly rounded results ---------- *)

(* Rounding of a positive value known to lie strictly between 0 and the
   smallest subnormal / strictly above the largest finite value. *)
let tiny_positive fmt (mode : Softfp.mode) =
  match mode with
  | RNE | RNA | RTZ | RTD -> Softfp.zero_bits fmt
  | RTU | RTO -> Softfp.min_subnormal_bits fmt ~neg:false

let huge_positive fmt (mode : Softfp.mode) =
  match mode with
  | RNE | RNA | RTU -> Softfp.inf_bits fmt ~neg:false
  | RTZ | RTD | RTO -> Softfp.max_finite_bits fmt ~neg:false

let ziv_precisions = [ 80; 128; 192; 288; 432; 648; 1000; 1600; 2600; 4096 ]

(* A rounder memoizes the (precision-indexed) enclosures of f(x), so the
   same input can be rounded into many formats and modes — the verification
   harness's access pattern — while paying for the series evaluation only
   once per precision level. *)
type rounder = {
  r_func : func;
  r_x : Rat.t;
  r_exact : Rat.t option;
  mutable r_enclosures : (int * Ival.t) list; (* most precise first *)
}

let make_rounder f x =
  if not (domain_ok f x) then invalid_arg "Oracle.make_rounder: domain";
  { r_func = f; r_x = x; r_exact = exact_value f x; r_enclosures = [] }

let rounder_enclosure r prec =
  match List.find_opt (fun (p, _) -> p >= prec) (List.rev r.r_enclosures) with
  | Some (_, iv) -> iv
  | None ->
      let iv = enclosure r.r_func r.r_x ~prec in
      r.r_enclosures <- (prec, iv) :: r.r_enclosures;
      iv

(* Range shortcut for the exponentials: avoid materializing 2^(huge). *)
let range_shortcut f x ~fmt ~mode =
  match f with
  | Exp | Exp2 | Exp10 ->
      let scale =
        match f with
        | Exp -> 1.4426950408889634 (* log2 e *)
        | Exp2 -> 1.0
        | Exp10 -> 3.321928094887362 (* log2 10 *)
        | _ -> assert false
      in
      let l2 = Rat.to_float x *. scale in
      if l2 > float_of_int (Softfp.emax fmt + 2) then
        Some (huge_positive fmt mode)
      else if l2 < float_of_int (Softfp.emin fmt - fmt.Softfp.prec - 4) then
        Some (tiny_positive fmt mode)
      else None
  | Log | Log2 | Log10 -> None

let round_with r ~fmt ~mode =
  match range_shortcut r.r_func r.r_x ~fmt ~mode with
  | Some b -> b
  | None -> (
      match r.r_exact with
      | Some y -> Softfp.of_rat fmt mode y
      | None ->
          let rec ziv = function
            | [] -> failwith "Oracle: Ziv loop exhausted"
            | prec :: rest ->
                let iv = rounder_enclosure r prec in
                let lo, hi = Ival.to_rats iv in
                let bl = Softfp.of_rat fmt mode lo in
                let bh = Softfp.of_rat fmt mode hi in
                if Int64.equal bl bh then bl else ziv rest
          in
          ziv ziv_precisions)

let correctly_round f x ~fmt ~mode = round_with (make_rounder f x) ~fmt ~mode

let float64 f x =
  if not (Float.is_finite x) then invalid_arg "Oracle.float64: not finite";
  let q = Rat.of_float x in
  if not (domain_ok f q) then invalid_arg "Oracle.float64: domain";
  match exact_value f q with
  | Some y -> Rat.to_float y
  | None ->
      (* Shortcuts mirroring [correctly_round] for binary64. *)
      let shortcut =
        match f with
        | Exp | Exp2 | Exp10 ->
            let scale =
              match f with
              | Exp -> 1.4426950408889634
              | Exp2 -> 1.0
              | Exp10 -> 3.321928094887362
              | _ -> assert false
            in
            let l2 = x *. scale in
            if l2 > 1026.0 then Some Float.infinity
            else if l2 < -1080.0 then Some 0.0
            else None
        | _ -> None
      in
      (match shortcut with
      | Some v -> v
      | None ->
          let rec ziv = function
            | [] -> failwith "Oracle.float64: Ziv loop exhausted"
            | prec :: rest ->
                let iv = enclosure f q ~prec in
                let lo, hi = Ival.to_rats iv in
                let fl = Rat.to_float lo and fh = Rat.to_float hi in
                if fl = fh then fl else ziv rest
          in
          ziv ziv_precisions)
