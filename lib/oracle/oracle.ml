(* Interval-based correctly rounded oracle (MPFR substitute).

   Per-function knowledge — domain predicates, exact-value rules, the
   rigorous enclosure kernels — lives in the Funcspec registry; this
   module owns only the function-agnostic machinery: the Ziv loop that
   raises the working precision until the enclosure rounds unambiguously,
   the overflow/underflow range shortcuts, and the rounder memo used by
   the multi-representation verification harness. *)

type func = Funcspec.func = Exp | Exp2 | Exp10 | Log | Log2 | Log10

let all = Funcspec.all
let name = Funcspec.name
let of_name = Funcspec.of_name
let domain_ok f x = (Funcspec.get f).Funcspec.domain_ok x
let exact_value f x = (Funcspec.get f).Funcspec.exact_value x

let enclosure f x ~prec =
  if not (domain_ok f x) then invalid_arg "Oracle.enclosure: domain";
  (Funcspec.get f).Funcspec.enclosure x ~prec

let ln2 = Funcspec.ln2
let ln10 = Funcspec.ln10

(* ---------- correctly rounded results ---------- *)

(* Rounding of a positive value known to lie strictly between 0 and the
   smallest subnormal / strictly above the largest finite value. *)
let tiny_positive fmt (mode : Softfp.mode) =
  match mode with
  | RNE | RNA | RTZ | RTD -> Softfp.zero_bits fmt
  | RTU | RTO -> Softfp.min_subnormal_bits fmt ~neg:false

let huge_positive fmt (mode : Softfp.mode) =
  match mode with
  | RNE | RNA | RTU -> Softfp.inf_bits fmt ~neg:false
  | RTZ | RTD | RTO -> Softfp.max_finite_bits fmt ~neg:false

let ziv_precisions = [ 80; 128; 192; 288; 432; 648; 1000; 1600; 2600; 4096 ]

(* A rounder memoizes the (precision-indexed) enclosures of f(x), so the
   same input can be rounded into many formats and modes — the verification
   harness's access pattern — while paying for the series evaluation only
   once per precision level. *)
type rounder = {
  r_func : func;
  r_x : Rat.t;
  r_exact : Rat.t option;
  mutable r_enclosures : (int * Ival.t) list; (* most precise first *)
}

let make_rounder f x =
  if not (domain_ok f x) then invalid_arg "Oracle.make_rounder: domain";
  { r_func = f; r_x = x; r_exact = exact_value f x; r_enclosures = [] }

let rounder_enclosure r prec =
  match List.find_opt (fun (p, _) -> p >= prec) (List.rev r.r_enclosures) with
  | Some (_, iv) -> iv
  | None ->
      let iv = enclosure r.r_func r.r_x ~prec in
      r.r_enclosures <- (prec, iv) :: r.r_enclosures;
      iv

(* Range shortcut for the exponentials: avoid materializing 2^(huge).
   The threshold scale is the family's log2_base from the registry. *)
let range_shortcut f x ~fmt ~mode =
  match Funcspec.log2_scale f with
  | None -> None
  | Some scale ->
      let l2 = Rat.to_float x *. scale in
      if l2 > float_of_int (Softfp.emax fmt + 2) then
        Some (huge_positive fmt mode)
      else if l2 < float_of_int (Softfp.emin fmt - fmt.Softfp.prec - 4) then
        Some (tiny_positive fmt mode)
      else None

let round_with r ~fmt ~mode =
  match range_shortcut r.r_func r.r_x ~fmt ~mode with
  | Some b -> b
  | None -> (
      match r.r_exact with
      | Some y -> Softfp.of_rat fmt mode y
      | None ->
          let rec ziv = function
            | [] -> failwith "Oracle: Ziv loop exhausted"
            | prec :: rest ->
                let iv = rounder_enclosure r prec in
                let lo, hi = Ival.to_rats iv in
                let bl = Softfp.of_rat fmt mode lo in
                let bh = Softfp.of_rat fmt mode hi in
                if Int64.equal bl bh then bl else ziv rest
          in
          ziv ziv_precisions)

let correctly_round f x ~fmt ~mode = round_with (make_rounder f x) ~fmt ~mode

let float64 f x =
  if not (Float.is_finite x) then invalid_arg "Oracle.float64: not finite";
  let q = Rat.of_float x in
  if not (domain_ok f q) then invalid_arg "Oracle.float64: domain";
  match exact_value f q with
  | Some y -> Rat.to_float y
  | None ->
      (* Shortcuts mirroring [correctly_round] for binary64. *)
      let shortcut =
        match Funcspec.log2_scale f with
        | None -> None
        | Some scale ->
            let l2 = x *. scale in
            if l2 > 1026.0 then Some Float.infinity
            else if l2 < -1080.0 then Some 0.0
            else None
      in
      (match shortcut with
      | Some v -> v
      | None ->
          let rec ziv = function
            | [] -> failwith "Oracle.float64: Ziv loop exhausted"
            | prec :: rest ->
                let iv = enclosure f q ~prec in
                let lo, hi = Ival.to_rats iv in
                let fl = Rat.to_float lo and fh = Rat.to_float hi in
                if fl = fh then fl else ziv rest
          in
          ziv ziv_precisions)
