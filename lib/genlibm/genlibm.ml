(* End-to-end generated correctly rounded elementary functions, and the
   exhaustive verification harness (the artifact's "correctness test"). *)

type t = Rlibm.Generate.generated

(* ---------- input sets ---------- *)

let inputs_exhaustive fmt =
  (* Fill a preallocated array (no intermediate list).  Slots are written
     back-to-front so the array keeps the order the list-based version
     produced (iteration order reversed) — generation artifacts such as
     the CalculatePhi merge depend on input order, so it is part of the
     observable output. *)
  let n = Softfp.count_finite fmt in
  let a = Array.make n 0L in
  let i = ref (n - 1) in
  Softfp.iter_finite fmt (fun b ->
      a.(!i) <- b;
      decr i);
  assert (!i = -1);
  a

(* Stratified samples for wide formats (binary32): every exponent value
   contributes, plus dense coverage near 0, 1 and the extremes. *)
let inputs_sampled fmt ~count ~seed =
  let st = Random.State.make [| seed |] in
  let w = Softfp.width fmt in
  let acc = ref [] in
  let add b = if Softfp.is_finite fmt b then acc := b :: !acc in
  (* boundary patterns *)
  add (Softfp.zero_bits fmt);
  add (Softfp.neg_zero_bits fmt);
  add (Softfp.min_subnormal_bits fmt ~neg:false);
  add (Softfp.min_subnormal_bits fmt ~neg:true);
  add (Softfp.max_finite_bits fmt ~neg:false);
  add (Softfp.max_finite_bits fmt ~neg:true);
  for _ = 1 to count - 6 do
    let bits = Random.State.int64 st (Int64.shift_left 1L w) in
    add bits
  done;
  Array.of_list !acc

(* ---------- generation ---------- *)

let generate ?log ~(cfg : Rlibm.Config.t) ~scheme func =
  let inputs = inputs_exhaustive cfg.tin in
  Rlibm.Generate.run ?log ~cfg ~scheme ~func ~inputs ()

let generate_sampled ?log ~(cfg : Rlibm.Config.t) ~scheme ~count ~seed func =
  let inputs = inputs_sampled cfg.tin ~count ~seed in
  (Rlibm.Generate.run ?log ~cfg ~scheme ~func ~inputs (), inputs)

(* ---------- evaluation ---------- *)

(* The generated double-precision implementation: special table, analytic
   shortcut, then range reduction / polynomial / output compensation. *)
let eval_bits (g : t) (x : int64) =
  let tin = g.cfg.tin in
  match Softfp.classify tin x with
  | Softfp.NaN -> Float.nan
  | Softfp.Inf ->
      if Softfp.sign_bit tin x then
        if Funcspec.is_exp_family g.family.func then 0.0 else Float.nan
      else Float.infinity
  | Softfp.Zero | Softfp.Subnormal | Softfp.Normal -> (
      match Hashtbl.find_opt g.specials x with
      | Some v -> v
      | None -> (
          let xf = Softfp.to_float tin x in
          match g.family.shortcut xf with
          | Some v -> v
          | None ->
              let red = g.family.reduce xf in
              red.oc (g.pieces.(red.piece).Polyeval.eval red.r)))

(* Fast path used by the benchmarks: skips the special-table lookup cost
   difference across schemes by keeping the exact same control flow. *)
let eval_float (g : t) (xf : float) =
  match g.family.shortcut xf with
  | Some v -> v
  | None ->
      let red = g.family.reduce xf in
      red.oc (g.pieces.(red.piece).Polyeval.eval red.r)

(* ---------- rounding of results ---------- *)

let round_result fmt mode v =
  if Float.is_nan v then Softfp.nan_bits fmt
  else if v = Float.infinity then Softfp.inf_bits fmt ~neg:false
  else if v = Float.neg_infinity then Softfp.inf_bits fmt ~neg:true
  else if v = 0.0 then
    if 1.0 /. v < 0.0 then Softfp.neg_zero_bits fmt else Softfp.zero_bits fmt
  else Softfp.of_rat fmt mode (Rat.of_float v)

(* ---------- verification ---------- *)

type verify_report = {
  total : int;
  checked : int;  (** finite inputs verified *)
  wrong34 : int;  (** wrong round-to-odd result in the widened target *)
  narrow_checks : int;
  wrong_narrow : int;
      (** wrong result for some narrower representation / rounding mode *)
}

let pp_verify_report fmt (r : verify_report) =
  Format.fprintf fmt
    "%d inputs: %d checked, %d wrong round-to-odd, %d/%d wrong narrowed"
    r.total r.checked r.wrong34 r.wrong_narrow r.narrow_checks

(* Per-input verdict computed by the parallel sweep of [verify]. *)
type verdict = {
  v_checked : bool;
  v_wrong34 : bool;
  v_narrow_checks : int;
  v_wrong_narrow : int;
  v_memo : int64 option;  (* fresh oracle result to install on the driver *)
}

let v_skip =
  {
    v_checked = false;
    v_wrong34 = false;
    v_narrow_checks = 0;
    v_wrong_narrow = 0;
    v_memo = None;
  }

(* [verify g ~inputs] checks, for every finite input:

   1. the double produced by the implementation rounds (round-to-odd, into
      the widened format) to the oracle's round-to-odd result, and
   2. rounding the implementation's double *directly* into every supported
      representation (E+2 .. n total bits) under every standard rounding
      mode agrees with double-rounding the oracle result — i.e. the
      RLibm-All guarantee holds for the generated function.

   The per-input checks fan out across the domain pool: [g.specials] and
   [g.oracle] are only read inside the sweep (fresh oracle results are
   returned in the verdicts and memoized on the driver afterwards, in
   input order), and the report is a sum of per-input counts, so the
   verdict is identical for every job count. *)
let verify ?(narrow = true) (g : t) ~(inputs : int64 array) =
  let tin = g.cfg.tin in
  let tout = Rlibm.Config.tout g.cfg in
  let narrow_fmts =
    List.init
      (Softfp.width tin - (tin.Softfp.ebits + 2) + 1)
      (fun i ->
        Softfp.make_fmt ~ebits:tin.Softfp.ebits ~prec:(2 + i))
  in
  let verdicts =
    Parallel.map_array
      (fun x ->
        if not (Softfp.is_finite tin x) then v_skip
        else begin
          let v = eval_bits g x in
          let xq = Softfp.to_rat tin x in
          if not (Oracle.domain_ok g.family.func xq) then begin
            (* Logarithm of zero / a negative number: the expected results
               are -inf and NaN respectively, in every representation. *)
            let expect_nan = Rat.sign xq < 0 in
            let ok =
              if expect_nan then Float.is_nan v else v = Float.neg_infinity
            in
            { v_skip with v_checked = true; v_wrong34 = not ok }
          end
          else begin
            let y_true, memo =
              match Hashtbl.find_opt g.oracle x with
              | Some y -> (y, None)
              | None ->
                  (* Shortcut-path inputs: the oracle's own range shortcut
                     makes this cheap. *)
                  let y =
                    Oracle.correctly_round g.family.func xq ~fmt:tout
                      ~mode:Softfp.RTO
                  in
                  (y, Some y)
            in
            let y_impl = round_result tout Softfp.RTO v in
            if not (Int64.equal y_impl y_true) then
              { v_skip with v_checked = true; v_wrong34 = true; v_memo = memo }
            else begin
              let nc = ref 0 and wn = ref 0 in
              if narrow then
                List.iter
                  (fun f ->
                    List.iter
                      (fun mode ->
                        incr nc;
                        let direct = round_result f mode v in
                        let doubled =
                          Softfp.narrow ~src:tout ~dst:f mode y_true
                        in
                        if not (Int64.equal direct doubled) then incr wn)
                      Softfp.all_standard_modes)
                  narrow_fmts;
              {
                v_checked = true;
                v_wrong34 = false;
                v_narrow_checks = !nc;
                v_wrong_narrow = !wn;
                v_memo = memo;
              }
            end
          end
        end)
      inputs
  in
  let checked = ref 0 in
  let wrong34 = ref 0 and wrong_narrow = ref 0 and narrow_checks = ref 0 in
  Array.iteri
    (fun i x ->
      let vd = verdicts.(i) in
      if vd.v_checked then incr checked;
      if vd.v_wrong34 then incr wrong34;
      narrow_checks := !narrow_checks + vd.v_narrow_checks;
      wrong_narrow := !wrong_narrow + vd.v_wrong_narrow;
      match vd.v_memo with
      | Some y -> Hashtbl.replace g.oracle x y
      | None -> ())
    inputs;
  {
    total = Array.length inputs;
    checked = !checked;
    wrong34 = !wrong34;
    narrow_checks = !narrow_checks;
    wrong_narrow = !wrong_narrow;
  }

(* ---------- reporting (Table 1 rows) ---------- *)

type table1_row = {
  func : Oracle.func;
  scheme : Polyeval.scheme;
  n_pieces : int;
  degrees : int list;
  n_specials : int;
}

let table1_row (g : t) =
  {
    func = g.family.func;
    scheme = g.scheme;
    n_pieces = Array.length g.pieces;
    degrees = Array.to_list g.degrees;
    n_specials = Rlibm.Generate.n_specials g;
  }

let pp_table1_row fmt (r : table1_row) =
  Format.fprintf fmt "%-6s %-11s pieces=%d degrees=%s specials=%d"
    (Oracle.name r.func)
    (Polyeval.scheme_name r.scheme)
    r.n_pieces
    (String.concat "," (List.map string_of_int r.degrees))
    r.n_specials
