(* End-to-end generated correctly rounded elementary functions, and the
   exhaustive verification harness (the artifact's "correctness test"). *)

type t = Rlibm.Generate.generated

(* ---------- input sets ---------- *)

let inputs_exhaustive fmt =
  (* Fill a preallocated array (no intermediate list).  Slots are written
     back-to-front so the array keeps the order the list-based version
     produced (iteration order reversed) — generation artifacts such as
     the CalculatePhi merge depend on input order, so it is part of the
     observable output. *)
  let n = Softfp.count_finite fmt in
  let a = Array.make n 0L in
  let i = ref (n - 1) in
  Softfp.iter_finite fmt (fun b ->
      a.(!i) <- b;
      decr i);
  assert (!i = -1);
  a

(* Stratified samples for wide formats (binary32): every exponent value
   contributes, plus dense coverage near 0, 1 and the extremes. *)
let inputs_sampled fmt ~count ~seed =
  let st = Random.State.make [| seed |] in
  let w = Softfp.width fmt in
  let acc = ref [] in
  let add b = if Softfp.is_finite fmt b then acc := b :: !acc in
  (* boundary patterns *)
  add (Softfp.zero_bits fmt);
  add (Softfp.neg_zero_bits fmt);
  add (Softfp.min_subnormal_bits fmt ~neg:false);
  add (Softfp.min_subnormal_bits fmt ~neg:true);
  add (Softfp.max_finite_bits fmt ~neg:false);
  add (Softfp.max_finite_bits fmt ~neg:true);
  for _ = 1 to count - 6 do
    let bits = Random.State.int64 st (Int64.shift_left 1L w) in
    add bits
  done;
  Array.of_list !acc

(* ---------- generation ---------- *)

let generate ?log ~(cfg : Rlibm.Config.t) ~scheme func =
  let inputs = inputs_exhaustive cfg.tin in
  Rlibm.Generate.run ?log ~cfg ~scheme ~func ~inputs ()

let generate_sampled ?log ~(cfg : Rlibm.Config.t) ~scheme ~count ~seed func =
  let inputs = inputs_sampled cfg.tin ~count ~seed in
  (Rlibm.Generate.run ?log ~cfg ~scheme ~func ~inputs (), inputs)

(* ---------- evaluation ---------- *)

(* Binary search over the sorted native-int special table.  Returns the
   index of [key], or -1.  Keys are the (wrapped) [Int64.to_int] of the
   input patterns — the same injective mapping used when the array was
   sorted, so the probe is order-consistent for every format width. *)
let find_special (keys : int array) (key : int) =
  let lo = ref 0 and hi = ref (Array.length keys - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let k = Array.unsafe_get keys mid in
    if k = key then begin
      found := mid;
      lo := !hi + 1
    end
    else if k < key then lo := mid + 1
    else hi := mid - 1
  done;
  !found

(* The generated double-precision implementation: special table, analytic
   shortcut, then range reduction / polynomial / output compensation. *)
let eval_bits (g : t) (x : int64) =
  let tin = g.cfg.tin in
  match Softfp.classify tin x with
  | Softfp.NaN -> Float.nan
  | Softfp.Inf ->
      if Softfp.sign_bit tin x then
        if Funcspec.is_exp_family g.family.func then 0.0 else Float.nan
      else Float.infinity
  | Softfp.Zero | Softfp.Subnormal | Softfp.Normal -> (
      let si = find_special g.spec_keys (Int64.to_int x) in
      if si >= 0 then g.spec_vals.(si)
      else
        let xf = Softfp.to_float tin x in
        match g.family.shortcut xf with
        | Some v -> v
        | None ->
            let red = g.family.reduce xf in
            red.oc (g.pieces.(red.piece).Polyeval.eval red.r))

(* Fast path used by the benchmarks: skips the special-table lookup cost
   difference across schemes by keeping the exact same control flow. *)
let eval_float (g : t) (xf : float) =
  match g.family.shortcut xf with
  | Some v -> v
  | None ->
      let red = g.family.reduce xf in
      red.oc (g.pieces.(red.piece).Polyeval.eval red.r)

(* ---------- batch kernel ---------- *)

type src_buf = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
type dst_buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create_src n : src_buf = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n
let create_dst n : dst_buf = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

(* Reusable per-domain scratch for [eval_bits_into].  A chunk runs on one
   domain at a time, and the Parallel pool never runs two chunks
   concurrently on the same domain, so one scratch per domain suffices;
   holding it in DLS means steady-state batches allocate nothing at all
   (growth is amortized over the largest chunk ever seen). *)
type kscratch = {
  mutable kr : floatarray;  (* reduced input per element *)
  mutable kpr : floatarray;  (* polynomial arguments, packed per piece *)
  mutable kv : floatarray;  (* polynomial results, packed per piece *)
  mutable kc : floatarray;  (* log-family compensation addend *)
  mutable kn : int array;  (* exp-family compensation exponent *)
  mutable kp : int array;  (* piece index; -1 = settled in the first pass *)
  mutable kidx : int array;  (* element positions grouped by piece *)
  mutable kcount : int array;  (* per-piece group size *)
  mutable koff : int array;  (* per-piece group start *)
}

let kscratch_key =
  Domain.DLS.new_key (fun () ->
      {
        kr = Float.Array.create 0;
        kpr = Float.Array.create 0;
        kv = Float.Array.create 0;
        kc = Float.Array.create 0;
        kn = [||];
        kp = [||];
        kidx = [||];
        kcount = [||];
        koff = [||];
      })

let ensure_kscratch ks len npieces =
  if Float.Array.length ks.kr < len then begin
    ks.kr <- Float.Array.create len;
    ks.kpr <- Float.Array.create len;
    ks.kv <- Float.Array.create len;
    ks.kc <- Float.Array.create len;
    ks.kn <- Array.make len 0;
    ks.kp <- Array.make len 0;
    ks.kidx <- Array.make len 0
  end;
  if Array.length ks.kcount < npieces then begin
    ks.kcount <- Array.make npieces 0;
    ks.koff <- Array.make npieces 0
  end

(* [eval_bits_into g ~src ~dst ~lo ~hi] is [eval_bits] over the chunk
   [\[lo, hi)] of [src], bit for bit, with zero per-element allocation:

   pass 1  decode each pattern in native ints (no [Softfp.to_float],
           which routes through Rat), probe the sorted special table,
           run the family shortcut inlined from [Reduction.kernel], and
           for surviving elements run [Reduction.reduce_into] through a
           single reused scratch record, recording (piece, r,
           compensation parameter);
   pass 2  group the surviving element positions by piece (counting
           sort — the piece partition is contiguous-ish but not exactly,
           so a gather is needed for piece counts > 1);
   pass 3  per piece, gather the reduced inputs into a packed buffer,
           run the degree-specialized batch evaluator
           ({!Polyeval.eval_into}) once over the whole group, and
           scatter the compensated results.

   The polynomial values and the compensation are the same double
   operations, on the same values, in the same order as the scalar path,
   so the contract "bit-identical to [eval_bits]" is structural; the
   test suite enforces it exhaustively. *)
let eval_bits_into (g : t) ~(src : src_buf) ~(dst : dst_buf) ~lo ~hi =
  if
    lo < 0 || hi < lo
    || hi > Bigarray.Array1.dim src
    || hi > Bigarray.Array1.dim dst
  then invalid_arg "Genlibm.eval_bits_into: chunk outside the buffers";
  let len = hi - lo in
  if len > 0 then begin
    let npieces = Array.length g.pieces in
    let ks = Domain.DLS.get kscratch_key in
    ensure_kscratch ks len npieces;
    let kr = ks.kr and kc = ks.kc and kn = ks.kn and kp = ks.kp in
    let tin = g.cfg.tin in
    let fw = tin.Softfp.prec - 1 in
    let w = Softfp.width tin in
    let fmask = (1 lsl fw) - 1 in
    let emask = (1 lsl tin.Softfp.ebits) - 1 in
    let bias = Softfp.emax tin in
    let sub_e = Softfp.emin tin - fw in
    let hidden = 1 lsl fw in
    let spec_keys = g.spec_keys and spec_vals = g.spec_vals in
    let s = Rlibm.Reduction.scratch () in
    let reduce_into = g.family.Rlibm.Reduction.reduce_into in
    (* Pass 1, specialized per family so the shortcut constants live in
       registers.  The decode mirrors [Softfp.to_float] exactly: the
       mantissa ldexp is exact for every supported format (prec <= 53),
       and out-of-double-range exponents round identically. *)
    (match g.family.Rlibm.Reduction.kernel with
    | Rlibm.Reduction.Exp_kernel ek ->
        let scale = ek.Rlibm.Reduction.ek_scale in
        let hi_cut = ek.Rlibm.Reduction.ek_hi_cut in
        let low_cut = ek.Rlibm.Reduction.ek_lo_cut in
        let near_cut = ek.Rlibm.Reduction.ek_near_cut in
        let v_huge = ek.Rlibm.Reduction.ek_huge in
        let v_tiny = ek.Rlibm.Reduction.ek_tiny in
        let v_above = ek.Rlibm.Reduction.ek_above_one in
        let v_below = ek.Rlibm.Reduction.ek_below_one in
        for o = 0 to len - 1 do
          let b = Int64.to_int (Bigarray.Array1.unsafe_get src (lo + o)) in
          let fr = b land fmask in
          let be = (b lsr fw) land emask in
          let neg = (b lsr (w - 1)) land 1 = 1 in
          if be = emask then begin
            Array.unsafe_set kp o (-1);
            Bigarray.Array1.unsafe_set dst (lo + o)
              (if fr <> 0 then Float.nan
               else if neg then 0.0
               else Float.infinity)
          end
          else begin
            let si = find_special spec_keys b in
            if si >= 0 then begin
              Array.unsafe_set kp o (-1);
              Bigarray.Array1.unsafe_set dst (lo + o)
                (Array.unsafe_get spec_vals si)
            end
            else begin
              let x =
                if be = 0 then
                  if fr = 0 then if neg then -0.0 else 0.0
                  else
                    let v = Float.ldexp (float_of_int fr) sub_e in
                    if neg then -.v else v
                else
                  let v =
                    Float.ldexp (float_of_int (hidden lor fr)) (be - bias - fw)
                  in
                  if neg then -.v else v
              in
              let t = x *. scale in
              if t > hi_cut then begin
                Array.unsafe_set kp o (-1);
                Bigarray.Array1.unsafe_set dst (lo + o) v_huge
              end
              else if t < low_cut then begin
                Array.unsafe_set kp o (-1);
                Bigarray.Array1.unsafe_set dst (lo + o) v_tiny
              end
              else if x <> 0.0 && Float.abs t < near_cut then begin
                Array.unsafe_set kp o (-1);
                Bigarray.Array1.unsafe_set dst (lo + o)
                  (if x > 0.0 then v_above else v_below)
              end
              else begin
                s.Rlibm.Reduction.sf.Rlibm.Reduction.sx <- x;
                reduce_into s;
                Array.unsafe_set kp o s.Rlibm.Reduction.spiece;
                Float.Array.unsafe_set kr o
                  s.Rlibm.Reduction.sf.Rlibm.Reduction.sr;
                Array.unsafe_set kn o s.Rlibm.Reduction.sn
              end
            end
          end
        done
    | Rlibm.Reduction.Log_kernel ->
        for o = 0 to len - 1 do
          let b = Int64.to_int (Bigarray.Array1.unsafe_get src (lo + o)) in
          let fr = b land fmask in
          let be = (b lsr fw) land emask in
          let neg = (b lsr (w - 1)) land 1 = 1 in
          if be = emask then begin
            Array.unsafe_set kp o (-1);
            Bigarray.Array1.unsafe_set dst (lo + o)
              (if fr <> 0 then Float.nan
               else if neg then Float.nan
               else Float.infinity)
          end
          else begin
            let si = find_special spec_keys b in
            if si >= 0 then begin
              Array.unsafe_set kp o (-1);
              Bigarray.Array1.unsafe_set dst (lo + o)
                (Array.unsafe_get spec_vals si)
            end
            else if be = 0 && fr = 0 then begin
              (* x = +/-0: the log shortcut's [x = 0.0] branch *)
              Array.unsafe_set kp o (-1);
              Bigarray.Array1.unsafe_set dst (lo + o) Float.neg_infinity
            end
            else if neg then begin
              Array.unsafe_set kp o (-1);
              Bigarray.Array1.unsafe_set dst (lo + o) Float.nan
            end
            else begin
              let x =
                if be = 0 then Float.ldexp (float_of_int fr) sub_e
                else
                  Float.ldexp (float_of_int (hidden lor fr)) (be - bias - fw)
              in
              s.Rlibm.Reduction.sf.Rlibm.Reduction.sx <- x;
              reduce_into s;
              Array.unsafe_set kp o s.Rlibm.Reduction.spiece;
              Float.Array.unsafe_set kr o
                s.Rlibm.Reduction.sf.Rlibm.Reduction.sr;
              Float.Array.unsafe_set kc o
                s.Rlibm.Reduction.sf.Rlibm.Reduction.sc
            end
          end
        done);
    (* Pass 2: counting sort of the surviving positions by piece. *)
    let kcount = ks.kcount and koff = ks.koff and kidx = ks.kidx in
    Array.fill kcount 0 npieces 0;
    for o = 0 to len - 1 do
      let p = Array.unsafe_get kp o in
      if p >= 0 then kcount.(p) <- kcount.(p) + 1
    done;
    let acc = ref 0 in
    for p = 0 to npieces - 1 do
      koff.(p) <- !acc;
      acc := !acc + kcount.(p)
    done;
    for o = 0 to len - 1 do
      let p = Array.unsafe_get kp o in
      if p >= 0 then begin
        Array.unsafe_set kidx koff.(p) o;
        koff.(p) <- koff.(p) + 1
      end
    done;
    (* Pass 3: per piece — gather, batch-evaluate, compensate, scatter.
       [koff.(p)] now points one past the group's end. *)
    let kpr = ks.kpr and kv = ks.kv in
    let scheme = g.scheme in
    let is_exp =
      match g.family.Rlibm.Reduction.kernel with
      | Rlibm.Reduction.Exp_kernel _ -> true
      | Rlibm.Reduction.Log_kernel -> false
    in
    for p = 0 to npieces - 1 do
      let m = kcount.(p) in
      if m > 0 then begin
        let base = koff.(p) - m in
        for t = 0 to m - 1 do
          Float.Array.unsafe_set kpr t
            (Float.Array.unsafe_get kr (Array.unsafe_get kidx (base + t)))
        done;
        Polyeval.eval_into scheme g.pieces.(p).Polyeval.data ~src:kpr ~dst:kv
          ~lo:0 ~hi:m;
        if is_exp then
          for t = 0 to m - 1 do
            let o = Array.unsafe_get kidx (base + t) in
            Bigarray.Array1.unsafe_set dst (lo + o)
              (Float.ldexp (Float.Array.unsafe_get kv t) (Array.unsafe_get kn o))
          done
        else
          for t = 0 to m - 1 do
            let o = Array.unsafe_get kidx (base + t) in
            Bigarray.Array1.unsafe_set dst (lo + o)
              (Float.Array.unsafe_get kc o +. Float.Array.unsafe_get kv t)
          done
      end
    done
  end

(* ---------- rounding of results ---------- *)

let round_result fmt mode v =
  if Float.is_nan v then Softfp.nan_bits fmt
  else if v = Float.infinity then Softfp.inf_bits fmt ~neg:false
  else if v = Float.neg_infinity then Softfp.inf_bits fmt ~neg:true
  else if v = 0.0 then
    if 1.0 /. v < 0.0 then Softfp.neg_zero_bits fmt else Softfp.zero_bits fmt
  else Softfp.of_rat fmt mode (Rat.of_float v)

(* ---------- verification ---------- *)

type verify_report = {
  total : int;
  checked : int;  (** finite inputs verified *)
  wrong34 : int;  (** wrong round-to-odd result in the widened target *)
  narrow_checks : int;
  wrong_narrow : int;
      (** wrong result for some narrower representation / rounding mode *)
}

let pp_verify_report fmt (r : verify_report) =
  Format.fprintf fmt
    "%d inputs: %d checked, %d wrong round-to-odd, %d/%d wrong narrowed"
    r.total r.checked r.wrong34 r.wrong_narrow r.narrow_checks

(* Per-input verdict computed by the parallel sweep of [verify]. *)
type verdict = {
  v_checked : bool;
  v_wrong34 : bool;
  v_narrow_checks : int;
  v_wrong_narrow : int;
  v_memo : int64 option;  (* fresh oracle result to install on the driver *)
}

let v_skip =
  {
    v_checked = false;
    v_wrong34 = false;
    v_narrow_checks = 0;
    v_wrong_narrow = 0;
    v_memo = None;
  }

(* [verify g ~inputs] checks, for every finite input:

   1. the double produced by the implementation rounds (round-to-odd, into
      the widened format) to the oracle's round-to-odd result, and
   2. rounding the implementation's double *directly* into every supported
      representation (E+2 .. n total bits) under every standard rounding
      mode agrees with double-rounding the oracle result — i.e. the
      RLibm-All guarantee holds for the generated function.

   The per-input checks fan out across the domain pool: [g.specials] and
   [g.oracle] are only read inside the sweep (fresh oracle results are
   returned in the verdicts and memoized on the driver afterwards, in
   input order), and the report is a sum of per-input counts, so the
   verdict is identical for every job count. *)
let verify ?(narrow = true) (g : t) ~(inputs : int64 array) =
  let tin = g.cfg.tin in
  let tout = Rlibm.Config.tout g.cfg in
  let narrow_fmts =
    List.init
      (Softfp.width tin - (tin.Softfp.ebits + 2) + 1)
      (fun i ->
        Softfp.make_fmt ~ebits:tin.Softfp.ebits ~prec:(2 + i))
  in
  let verdicts =
    Parallel.map_array
      (fun x ->
        if not (Softfp.is_finite tin x) then v_skip
        else begin
          let v = eval_bits g x in
          let xq = Softfp.to_rat tin x in
          if not (Oracle.domain_ok g.family.func xq) then begin
            (* Logarithm of zero / a negative number: the expected results
               are -inf and NaN respectively, in every representation. *)
            let expect_nan = Rat.sign xq < 0 in
            let ok =
              if expect_nan then Float.is_nan v else v = Float.neg_infinity
            in
            { v_skip with v_checked = true; v_wrong34 = not ok }
          end
          else begin
            let y_true, memo =
              match Hashtbl.find_opt g.oracle x with
              | Some y -> (y, None)
              | None ->
                  (* Shortcut-path inputs: the oracle's own range shortcut
                     makes this cheap. *)
                  let y =
                    Oracle.correctly_round g.family.func xq ~fmt:tout
                      ~mode:Softfp.RTO
                  in
                  (y, Some y)
            in
            let y_impl = round_result tout Softfp.RTO v in
            if not (Int64.equal y_impl y_true) then
              { v_skip with v_checked = true; v_wrong34 = true; v_memo = memo }
            else begin
              let nc = ref 0 and wn = ref 0 in
              if narrow then
                List.iter
                  (fun f ->
                    List.iter
                      (fun mode ->
                        incr nc;
                        let direct = round_result f mode v in
                        let doubled =
                          Softfp.narrow ~src:tout ~dst:f mode y_true
                        in
                        if not (Int64.equal direct doubled) then incr wn)
                      Softfp.all_standard_modes)
                  narrow_fmts;
              {
                v_checked = true;
                v_wrong34 = false;
                v_narrow_checks = !nc;
                v_wrong_narrow = !wn;
                v_memo = memo;
              }
            end
          end
        end)
      inputs
  in
  let checked = ref 0 in
  let wrong34 = ref 0 and wrong_narrow = ref 0 and narrow_checks = ref 0 in
  Array.iteri
    (fun i x ->
      let vd = verdicts.(i) in
      if vd.v_checked then incr checked;
      if vd.v_wrong34 then incr wrong34;
      narrow_checks := !narrow_checks + vd.v_narrow_checks;
      wrong_narrow := !wrong_narrow + vd.v_wrong_narrow;
      match vd.v_memo with
      | Some y -> Hashtbl.replace g.oracle x y
      | None -> ())
    inputs;
  {
    total = Array.length inputs;
    checked = !checked;
    wrong34 = !wrong34;
    narrow_checks = !narrow_checks;
    wrong_narrow = !wrong_narrow;
  }

(* ---------- reporting (Table 1 rows) ---------- *)

type table1_row = {
  func : Oracle.func;
  scheme : Polyeval.scheme;
  n_pieces : int;
  degrees : int list;
  n_specials : int;
}

let table1_row (g : t) =
  {
    func = g.family.func;
    scheme = g.scheme;
    n_pieces = Array.length g.pieces;
    degrees = Array.to_list g.degrees;
    n_specials = Rlibm.Generate.n_specials g;
  }

let pp_table1_row fmt (r : table1_row) =
  Format.fprintf fmt "%-6s %-11s pieces=%d degrees=%s specials=%d"
    (Oracle.name r.func)
    (Polyeval.scheme_name r.scheme)
    r.n_pieces
    (String.concat "," (List.map string_of_int r.degrees))
    r.n_specials
