(** End-to-end generated correctly rounded elementary functions, plus the
    exhaustive verification harness (the reproduction of the artifact's
    correctness test).

    A generated function evaluates in three stages, exactly like the
    artifact's C implementations: per-input special table (the paper's
    special-case inputs), analytic range shortcut (deep
    overflow/underflow, domain errors), then range reduction → compiled
    polynomial → output compensation, all in double precision.  The
    resulting double rounds correctly into every representation with
    [ebits+2 .. width tin] total bits under all five standard rounding
    modes. *)

type t = Rlibm.Generate.generated

(** {1 Input sets} *)

(** All finite patterns of a format (use for exhaustive runs). *)
val inputs_exhaustive : Softfp.fmt -> int64 array

(** Random patterns plus the boundary values (zeros, min subnormals, max
    finite); for wide formats where exhaustive runs are infeasible. *)
val inputs_sampled : Softfp.fmt -> count:int -> seed:int -> int64 array

(** {1 Generation} *)

(** [generate ~cfg ~scheme func] runs the pipeline over every finite
    input of [cfg.tin]. *)
val generate :
  ?log:(string -> unit) ->
  cfg:Rlibm.Config.t ->
  scheme:Polyeval.scheme ->
  Oracle.func ->
  (t, Diag.Error.t) result

(** Sampled-input variant for wide formats; also returns the inputs used,
    for verification. *)
val generate_sampled :
  ?log:(string -> unit) ->
  cfg:Rlibm.Config.t ->
  scheme:Polyeval.scheme ->
  count:int ->
  seed:int ->
  Oracle.func ->
  (t, Diag.Error.t) result * int64 array

(** {1 Evaluation} *)

(** Full implementation path on an input bit pattern of [cfg.tin],
    including NaN/infinity semantics and the special table. *)
val eval_bits : t -> int64 -> float

(** The benchmarked kernel: shortcut check, range reduction, polynomial,
    output compensation — identical control flow for every scheme. *)
val eval_float : t -> float -> float

(** [round_result fmt mode v] rounds a double function result into a
    format, with NaN/infinity/signed-zero handling. *)
val round_result : Softfp.fmt -> Softfp.mode -> float -> Softfp.bits

(** {1 Batch kernel}

    The serving hot path.  Inputs and outputs live in C-layout
    {!Bigarray} buffers — flat, unboxed, shareable across domains
    without copying — and evaluation proceeds in passes over a chunk:
    native-int decode + special-table binary search + inlined shortcut,
    allocation-free range reduction through a reused scratch record,
    then one degree-specialized {!Polyeval.eval_into} sweep per piece
    with the output compensation applied on scatter. *)

(** Input bit patterns (one per element, in the low bits of each
    [int64]). *)
type src_buf = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Double results, same indexing as the source buffer. *)
type dst_buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create_src : int -> src_buf
val create_dst : int -> dst_buf

(** [eval_bits_into g ~src ~dst ~lo ~hi] evaluates patterns
    [src.{lo} .. src.{hi-1}] into the same slots of [dst].  Bit-identical
    to {!eval_bits} on every input, with zero per-element heap
    allocation (per-domain scratch is reused across calls).  Other
    slots of [dst] are untouched, so disjoint chunks can be filled
    concurrently from different domains.
    @raise Invalid_argument when [\[lo, hi)] falls outside either
    buffer. *)
val eval_bits_into : t -> src:src_buf -> dst:dst_buf -> lo:int -> hi:int -> unit

(** {1 Verification} *)

type verify_report = {
  total : int;
  checked : int;  (** finite inputs verified *)
  wrong34 : int;  (** wrong round-to-odd results in the widened target *)
  narrow_checks : int;
  wrong_narrow : int;
      (** wrong results for some narrower representation / rounding mode *)
}

val pp_verify_report : Format.formatter -> verify_report -> unit

(** [verify g ~inputs] checks, for every finite input: the double output
    rounds (round-to-odd) to the oracle's result in the widened target,
    and — unless [narrow] is [false] — rounding it directly into every
    supported representation under every standard mode matches
    double-rounding the oracle result (the RLibm-All guarantee).
    Logarithm domain errors are checked for NaN/-infinity semantics. *)
val verify : ?narrow:bool -> t -> inputs:int64 array -> verify_report

(** {1 Reporting} *)

(** One row of the paper's Table 1. *)
type table1_row = {
  func : Oracle.func;
  scheme : Polyeval.scheme;
  n_pieces : int;
  degrees : int list;
  n_specials : int;
}

val table1_row : t -> table1_row
val pp_table1_row : Format.formatter -> table1_row -> unit
