(** Unified diagnostics substrate: the typed error domain shared by every
    layer's [Result]-typed public API, and the structured trace/event
    stream those layers emit progress on.

    The two halves solve the same problem from both ends.  Errors as
    {e data}: a distributed shard driver must distinguish "shard already
    published" from "store corrupt" from "LP infeasible" without parsing
    stderr, so [Cache], [Pipeline], [Serve] and [Funcspec] all speak
    {!Error.t} and exceptions survive only at the [bin/]–[bench/]
    boundary, where [Cli] renders them uniformly with {!Error.exit_code}.
    Progress as {e data}: stage begin/end with timing and hit/rebuilt
    status, cache hit/miss/corrupt-quarantined, shard publish/load,
    parallel fan-out and serve batch evals are emitted as typed records
    through pluggable {!sink}s — none by default beyond a warn-level
    stderr sink, a human-readable stderr sink at [--log-level], and a
    schema-versioned JSONL trace file via [--trace FILE].

    {b Determinism.}  Sinks observe the computation; they never influence
    it.  No artifact byte, store key, or stdout product line may depend
    on which sinks are installed or what level they listen at.

    {b Zero-cost when off.}  {!event} and {!span} check a single
    [Atomic] threshold before touching their field thunks; with no sink
    listening at the event's level, the cost is one atomic load and the
    fields are never computed. *)

(** {1 Typed error domain} *)

module Error : sig
  (** Every failure class a public API in this codebase can report.
      Function and scheme identities are carried as strings so this
      module stays a leaf: it must be usable from [lib/cache] and
      [lib/lp] without dragging in [Oracle] or [Polyeval]. *)
  type t =
    | Store_io of { path : string; detail : string }
        (** The artifact store could not read or write [path]
            (permissions, disk full, path component not a directory). *)
    | Corrupt_artifact of { kind : string; key : string; reason : string }
        (** A store entry failed header/checksum/decode validation; the
            file has been quarantined aside for post-mortem. *)
    | Key_mismatch of { kind : string; key : string }
        (** A store entry's embedded key disagrees with the key it was
            loaded under — a collision or a crafted rename. *)
    | Stage_conflict of { stage : string; key : string; detail : string }
        (** A persisted stage artifact is incompatible with the stage
            that tried to consume it (layout-version drift that escaped
            the key discipline, stale piece data). *)
    | Lp_infeasible of {
        func : string;
        scheme : string;
        piece : int;
        degree : int;
      }
        (** The LP itself was infeasible at [degree] — no polynomial of
            that degree satisfies the (reduced) constraints. *)
    | Budget_exhausted of {
        func : string;
        scheme : string;
        piece : int;
        max_degree : int;
      }
        (** Generation ran out of degree/round/special budget before
            finding a polynomial. *)
    | Verification_failed of {
        func : string;
        scheme : string;
        wrong34 : int;
        wrong_narrow : int;
      }
        (** Exhaustive verification found inputs whose result is not
            correctly rounded. *)
    | Bad_config of { what : string }
        (** A configuration or snapshot spec is self-inconsistent
            (duplicate function in a snapshot, contradictory knobs). *)
    | Bad_spec of { name : string; suggestion : string option }
        (** [name] names no known function; [suggestion] is the closest
            registered name, if one is close enough to be worth
            offering. *)
    | Shard_range of { index : int; count : int }
        (** A shard request is outside the grid: [count < 1], or
            [index] not in [\[0, count)]. *)

  (** Stable kebab-case class label ("store-io", "lp-infeasible", …) for
      traces and machine consumers. *)
  val label : t -> string

  (** One-line human rendering. *)
  val to_string : t -> string

  val pp : Format.formatter -> t -> unit

  (** The process exit code [Cli] maps this error to at the executable
      boundary: bad-spec/config/shard-range → 2, store I/O → 3,
      corrupt/key-mismatch → 4, stage conflict → 5, LP infeasible or
      budget exhausted → 6, verification failure → 7. *)
  val exit_code : t -> int
end

(** {1 Levels} *)

(** [Quiet] is a threshold only — no event carries it. *)
type level = Quiet | Error | Warn | Info | Debug

val level_of_string : string -> (level, Error.t) result
val level_to_string : level -> string

(** {1 Structured events} *)

(** Field values; kept first-order so every sink can render them. *)
type value = Bool of bool | Int of int | Float of float | String of string

type binding = string * value

(** One emitted record.  [ev_span]/[ev_parent] encode nesting: a span's
    begin/end records carry their own id in [ev_span] and the enclosing
    span in [ev_parent]; a plain event carries the enclosing span in
    [ev_parent] only. *)
type ev = {
  ev_ts : float;  (** [Unix.gettimeofday] at emission *)
  ev_level : level;
  ev_name : string;  (** dotted, e.g. ["cache.hit"], ["stage.end"] *)
  ev_span : int option;
  ev_parent : int option;
  ev_fields : binding list;
}

(** [enabled l] is true when some installed sink listens at level [l].
    One atomic load; the guard that keeps disabled diagnostics out of
    hot paths. *)
val enabled : level -> bool

(** [event ?level name fields] emits a record through every sink
    listening at [level] (default [Info]).  [fields] is forced only when
    {!enabled}; keep anything expensive inside it. *)
val event : ?level:level -> string -> (unit -> binding list) -> unit

(** [span ?level name fields ?result body] runs [body] inside a span:
    when enabled, a [name ^ ".begin"] record (with [fields ()]) is
    emitted before and a [name ^ ".end"] record after, carrying
    ["seconds"], ["ok"], and — on success — [result v].  If [body]
    raises, the end record has [ok=false] and an ["error"] field, and
    the exception is re-raised.  When no sink listens, [body] runs
    bare.  Nesting is tracked per domain. *)
val span :
  ?level:level ->
  string ->
  (unit -> binding list) ->
  ?result:('a -> binding list) ->
  (unit -> 'a) ->
  'a

(** {1 Sinks} *)

type sink

(** Human-readable one-line-per-event rendering to stderr. *)
val stderr_sink : min_level:level -> sink

(** JSONL trace file: a schema-versioned header object on the first line
    (modeled on the bench envelope: [schema_version], [kind],
    [timestamp], [host], [jobs]), then one JSON object per record.
    Flushed and closed at process exit.  Raises nothing: open failures
    return an [Error]. *)
val trace_sink :
  ?min_level:level -> ?jobs:int -> string -> (sink, Error.t) result

(** In-memory capture, for tests: returns the sink and a function
    draining the records captured so far (in emission order). *)
val memory_sink : ?min_level:level -> unit -> sink * (unit -> ev list)

(** Current trace schema version, embedded in every trace header. *)
val trace_schema_version : int

(** Replace the installed sinks (atomically recomputes the {!enabled}
    threshold).  The default installation is [stderr_sink ~min_level:Warn]. *)
val set_sinks : sink list -> unit

(** Run [f] with [sinks] installed, restoring the previous set on exit
    (also on exceptions).  For tests. *)
val with_sinks : sink list -> (unit -> 'a) -> 'a
