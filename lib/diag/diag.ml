(* Unified diagnostics substrate: typed errors + structured events.
   See diag.mli for the contract.  This module is a leaf — it may
   depend on unix only, so that cache/lp/parallel can all use it. *)

module Error = struct
  type t =
    | Store_io of { path : string; detail : string }
    | Corrupt_artifact of { kind : string; key : string; reason : string }
    | Key_mismatch of { kind : string; key : string }
    | Stage_conflict of { stage : string; key : string; detail : string }
    | Lp_infeasible of {
        func : string;
        scheme : string;
        piece : int;
        degree : int;
      }
    | Budget_exhausted of {
        func : string;
        scheme : string;
        piece : int;
        max_degree : int;
      }
    | Verification_failed of {
        func : string;
        scheme : string;
        wrong34 : int;
        wrong_narrow : int;
      }
    | Bad_config of { what : string }
    | Bad_spec of { name : string; suggestion : string option }
    | Shard_range of { index : int; count : int }

  let label = function
    | Store_io _ -> "store-io"
    | Corrupt_artifact _ -> "corrupt-artifact"
    | Key_mismatch _ -> "key-mismatch"
    | Stage_conflict _ -> "stage-conflict"
    | Lp_infeasible _ -> "lp-infeasible"
    | Budget_exhausted _ -> "budget-exhausted"
    | Verification_failed _ -> "verification-failed"
    | Bad_config _ -> "bad-config"
    | Bad_spec _ -> "bad-spec"
    | Shard_range _ -> "shard-range"

  let to_string = function
    | Store_io { path; detail } ->
        Printf.sprintf "store I/O error at %s: %s" path detail
    | Corrupt_artifact { kind; key; reason } ->
        Printf.sprintf "corrupt %s artifact %s: %s (quarantined)" kind key
          reason
    | Key_mismatch { kind; key } ->
        Printf.sprintf "%s artifact %s: stored under a different key" kind key
    | Stage_conflict { stage; key; detail } ->
        Printf.sprintf "stage %s artifact %s: %s" stage key detail
    | Lp_infeasible { func; scheme; piece; degree } ->
        Printf.sprintf "%s/%s piece %d: LP infeasible at degree %d" func
          scheme piece degree
    | Budget_exhausted { func; scheme; piece; max_degree } ->
        Printf.sprintf "%s/%s piece %d: no polynomial up to degree %d" func
          scheme piece max_degree
    | Verification_failed { func; scheme; wrong34; wrong_narrow } ->
        Printf.sprintf
          "%s/%s: verification failed (%d wrong at 34 bits, %d wrong narrow)"
          func scheme wrong34 wrong_narrow
    | Bad_config { what } -> what
    | Bad_spec { name; suggestion } -> (
        match suggestion with
        | Some s -> Printf.sprintf "unknown function %S (did you mean %s?)" name s
        | None -> Printf.sprintf "unknown function %S" name)
    | Shard_range { index; count } ->
        if count < 1 then
          Printf.sprintf "shard count must be positive (got %d)" count
        else Printf.sprintf "shard index %d outside [0, %d)" index count

  let pp fmt e = Format.pp_print_string fmt (to_string e)

  let exit_code = function
    | Bad_config _ | Bad_spec _ | Shard_range _ -> 2
    | Store_io _ -> 3
    | Corrupt_artifact _ | Key_mismatch _ -> 4
    | Stage_conflict _ -> 5
    | Lp_infeasible _ | Budget_exhausted _ -> 6
    | Verification_failed _ -> 7
end

type level = Quiet | Error | Warn | Info | Debug

let level_int = function
  | Quiet -> 0
  | Error -> 1
  | Warn -> 2
  | Info -> 3
  | Debug -> 4

let level_to_string = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii s with
  | "quiet" -> Ok Quiet
  | "error" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | _ ->
      Result.Error
        (Error.Bad_config
           {
             what =
               Printf.sprintf
                 "bad log level %S (expected quiet|error|warn|info|debug)" s;
           })

type value = Bool of bool | Int of int | Float of float | String of string
type binding = string * value

type ev = {
  ev_ts : float;
  ev_level : level;
  ev_name : string;
  ev_span : int option;
  ev_parent : int option;
  ev_fields : binding list;
}

type sink = { s_min : level; s_emit : ev -> unit }

(* The installed sinks plus the cached max level any of them listens at.
   [enabled] reads only the threshold (one atomic load); emission takes
   the mutex so multi-domain writers never interleave inside a sink. *)
let sinks : sink list ref = ref []
let threshold = Atomic.make 0
let emit_mutex = Mutex.create ()

let recompute_threshold () =
  Atomic.set threshold
    (List.fold_left (fun acc s -> max acc (level_int s.s_min)) 0 !sinks)

let set_sinks l =
  Mutex.protect emit_mutex (fun () ->
      sinks := l;
      recompute_threshold ())

let with_sinks l f =
  let saved = !sinks in
  set_sinks l;
  Fun.protect ~finally:(fun () -> set_sinks saved) f

let enabled l =
  let i = level_int l in
  i > 0 && i <= Atomic.get threshold

let emit ev =
  Mutex.protect emit_mutex (fun () ->
      List.iter
        (fun s ->
          if level_int ev.ev_level <= level_int s.s_min then s.s_emit ev)
        !sinks)

(* Span nesting is per-domain: each domain keeps its own stack, so a
   worker domain's spans nest among themselves and never interleave with
   the driver's stack.  Ids are globally unique. *)
let next_span = Atomic.make 1

let span_stack : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let current_span () =
  match !(Domain.DLS.get span_stack) with [] -> None | id :: _ -> Some id

let event ?(level = Info) name fields =
  if enabled level then
    emit
      {
        ev_ts = Unix.gettimeofday ();
        ev_level = level;
        ev_name = name;
        ev_span = None;
        ev_parent = current_span ();
        ev_fields = fields ();
      }

let span ?(level = Info) name fields ?result body =
  if not (enabled level) then body ()
  else begin
    let id = Atomic.fetch_and_add next_span 1 in
    let stack = Domain.DLS.get span_stack in
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    emit
      {
        ev_ts = Unix.gettimeofday ();
        ev_level = level;
        ev_name = name ^ ".begin";
        ev_span = Some id;
        ev_parent = parent;
        ev_fields = fields ();
      };
    stack := id :: !stack;
    let pop () =
      match !stack with top :: rest when top = id -> stack := rest | _ -> ()
    in
    let t0 = Unix.gettimeofday () in
    match body () with
    | v ->
        pop ();
        let fields =
          ("seconds", Float (Unix.gettimeofday () -. t0))
          :: ("ok", Bool true)
          :: (match result with None -> [] | Some f -> f v)
        in
        emit
          {
            ev_ts = Unix.gettimeofday ();
            ev_level = level;
            ev_name = name ^ ".end";
            ev_span = Some id;
            ev_parent = parent;
            ev_fields = fields;
          };
        v
    | exception e ->
        pop ();
        emit
          {
            ev_ts = Unix.gettimeofday ();
            ev_level = level;
            ev_name = name ^ ".end";
            ev_span = Some id;
            ev_parent = parent;
            ev_fields =
              [
                ("seconds", Float (Unix.gettimeofday () -. t0));
                ("ok", Bool false);
                ("error", String (Printexc.to_string e));
              ];
          };
        raise e
  end

(* ---------- sinks ---------- *)

let value_to_string = function
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6f" f
  | String s -> s

let stderr_sink ~min_level =
  {
    s_min = min_level;
    s_emit =
      (fun ev ->
        let b = Buffer.create 96 in
        Buffer.add_string b
          (Printf.sprintf "[%s] %s" (level_to_string ev.ev_level) ev.ev_name);
        (match ev.ev_span with
        | Some id -> Buffer.add_string b (Printf.sprintf " span=%d" id)
        | None -> ());
        List.iter
          (fun (k, v) ->
            Buffer.add_string b
              (Printf.sprintf " %s=%s" k (value_to_string v)))
          ev.ev_fields;
        Buffer.add_char b '\n';
        output_string stderr (Buffer.contents b);
        flush stderr);
  }

let memory_sink ?(min_level = Debug) () =
  let captured = ref [] in
  let sink =
    { s_min = min_level; s_emit = (fun ev -> captured := ev :: !captured) }
  in
  (sink, fun () -> List.rev !captured)

(* ---------- JSONL trace sink ---------- *)

let trace_schema_version = 1

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_value = function
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f ->
      (* JSON has no nan/inf literals; clamp to null. *)
      if Float.is_finite f then Printf.sprintf "%.9g" f else "null"
  | String s -> Printf.sprintf "\"%s\"" (json_escape s)

let json_ev ev =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"ev\":\"%s\"" ev.ev_ts
       (level_to_string ev.ev_level)
       (json_escape ev.ev_name));
  (match ev.ev_span with
  | Some id -> Buffer.add_string b (Printf.sprintf ",\"span\":%d" id)
  | None -> ());
  (match ev.ev_parent with
  | Some id -> Buffer.add_string b (Printf.sprintf ",\"parent\":%d" id)
  | None -> ());
  Buffer.add_string b ",\"fields\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":%s" (json_escape k) (json_value v)))
    ev.ev_fields;
  Buffer.add_string b "}}";
  Buffer.contents b

let trace_header ~jobs =
  let hostname = try Unix.gethostname () with _ -> "unknown" in
  Printf.sprintf
    "{\"schema_version\":%d,\"kind\":\"rlibm-trace\",\"timestamp\":%.3f,\"host\":{\"hostname\":\"%s\",\"os\":\"%s\",\"ocaml\":\"%s\"},\"jobs\":%d}"
    trace_schema_version (Unix.gettimeofday ()) (json_escape hostname)
    (json_escape Sys.os_type)
    (json_escape Sys.ocaml_version)
    jobs

let trace_sink ?(min_level = Debug) ?(jobs = 1) path =
  match open_out path with
  | exception Sys_error detail -> Result.Error (Error.Store_io { path; detail })
  | oc ->
      output_string oc (trace_header ~jobs);
      output_char oc '\n';
      (* The emit mutex serializes writers; at_exit flushes whatever the
         process emitted, including when it exits via [exit code]. *)
      let closed = ref false in
      at_exit (fun () ->
          if not !closed then begin
            closed := true;
            try close_out oc with _ -> ()
          end);
      Ok
        {
          s_min = min_level;
          s_emit =
            (fun ev ->
              if not !closed then begin
                output_string oc (json_ev ev);
                output_char oc '\n';
                flush oc
              end);
        }

(* Default installation: warnings and errors reach stderr even before
   any executable configures --log-level, so library-level warnings
   (e.g. a bad RLIBM_JOBS value) are never silently dropped. *)
let () = set_sinks [ stderr_sink ~min_level:Warn ]
