(* The function-spec registry.  See funcspec.mli for the contract.

   The enclosure kernels (series with explicit remainder bounds) live
   here because they are per-function knowledge: all enclosures are
   computed with outward-rounded dyadic interval arithmetic at a working
   precision a few dozen bits above the requested one; truncation errors
   of the series are added explicitly from conservative closed-form
   remainder bounds. *)

module B = Bigint
module D = Dyadic

type func = Exp | Exp2 | Exp10 | Log | Log2 | Log10

type family =
  | Exp_family of { log2_base : float }
  | Log_family of { k_scale : float; k_exact : bool }

type preset = { pieces : int; min_degree : int }

type spec = {
  func : func;
  name : string;
  aliases : string list;
  family : family;
  domain_ok : Rat.t -> bool;
  exact_value : Rat.t -> Rat.t option;
  enclosure : Rat.t -> prec:int -> Ival.t;
  mini : preset;
  float32 : preset;
}

(* ---------- series kernels ---------- *)

(* atanh(t) for an exact rational 0 <= t <= 1/3 + eps. *)
let atanh_enclosure t ~prec =
  if Rat.is_zero t then Ival.point D.zero
  else begin
    let wp = prec + 24 in
    let tf = Rat.to_float t in
    assert (tf > 0.0 && tf < 0.5);
    (* Smallest N with t^(2N+3) / ((2N+3)(1 - t^2)) < 2^-(prec+8); the
       comparison runs in log2 space so that large [prec] cannot underflow
       double arithmetic. *)
    let lt = Float.log2 tf in
    let slack = Float.log2 (1.0 -. (tf *. tf)) in
    let n_terms =
      let rec go n =
        let l =
          (float_of_int ((2 * n) + 3) *. lt)
          -. Float.log2 (float_of_int ((2 * n) + 3))
          -. slack
        in
        if l < float_of_int (-(prec + 8)) then n else go (n + 1)
      in
      go 0
    in
    let tiv = Ival.of_rat ~prec:wp t in
    let t2iv = Ival.mul ~prec:wp tiv tiv in
    let sum = ref (Ival.point D.zero) in
    let power = ref tiv in
    for i = 0 to n_terms do
      let term = Ival.div ~prec:wp !power (Ival.of_int ((2 * i) + 1)) in
      sum := Ival.add ~prec:wp !sum term;
      power := Ival.mul ~prec:wp !power t2iv
    done;
    (* Remainder of the positive series: bounded by
       t^(2N+3) / ((2N+3) (1 - t^2)) <= hi(power) * 9/8 since t <= 1/3. *)
    let rem =
      let p_hi = Ival.hi !power in
      D.round D.Up ~prec:wp (D.mul p_hi (D.make (B.of_int 9) (-3)))
    in
    Ival.widen !sum rem
  end

(* exp(r) for an interval r with |r| <= 3/4. *)
let exp_reduced riv ~prec =
  let wp = prec + 24 in
  let rmax = Rat.to_float (D.to_rat (Ival.mag_hi riv)) in
  assert (rmax <= 0.75);
  if rmax = 0.0 then Ival.of_int 1
  else begin
    (* Smallest N with rmax^(N+1)/(N+1)! / (1-rmax) < 2^-(prec+8), tracked
       in log2 space to survive large [prec]. *)
    let lr = Float.log2 rmax in
    let slack = Float.log2 (1.0 -. rmax) in
    let lterm = ref 0.0 in
    let n_terms = ref 0 in
    let continue = ref true in
    while !continue do
      incr n_terms;
      lterm := !lterm +. lr -. Float.log2 (float_of_int !n_terms);
      if !lterm -. slack < float_of_int (-(prec + 8)) then continue := false
    done;
    let n_terms = !n_terms in
    (* Horner: acc_k = 1 + r/k * acc_{k+1}. *)
    let acc = ref (Ival.of_int 1) in
    for k = n_terms downto 1 do
      let t = Ival.div ~prec:wp (Ival.mul ~prec:wp riv !acc) (Ival.of_int k) in
      acc := Ival.add ~prec:wp (Ival.of_int 1) t
    done;
    (* The remainder bound as a power of two strictly above the log2-space
       estimate (dyadic exponents never underflow). *)
    let rem = D.pow2 (int_of_float (Float.ceil (!lterm -. slack)) + 2) in
    Ival.widen !acc rem
  end

(* ---------- cached constants ---------- *)

(* Enclosure evaluation runs on worker domains during parallel oracle
   table construction, so the shared constant cache is mutex-protected.
   [compute] runs outside the lock (it may recurse into [cached], and a
   duplicated computation is deterministic and merely wasted work). *)
let const_cache : (string * int, Ival.t) Hashtbl.t = Hashtbl.create 16
let const_cache_mutex = Mutex.create ()

let cached key ~prec compute =
  let lookup () =
    Mutex.lock const_cache_mutex;
    let v = Hashtbl.find_opt const_cache (key, prec) in
    Mutex.unlock const_cache_mutex;
    v
  in
  match lookup () with
  | Some v -> v
  | None ->
      let v = compute () in
      Mutex.lock const_cache_mutex;
      (* First writer wins so every domain sees one value per key. *)
      let v =
        match Hashtbl.find_opt const_cache (key, prec) with
        | Some v0 -> v0
        | None ->
            Hashtbl.replace const_cache (key, prec) v;
            v
      in
      Mutex.unlock const_cache_mutex;
      v

(* ln 2 = 2 atanh(1/3). *)
let ln2 ~prec =
  cached "ln2" ~prec (fun () ->
      Ival.mul_2exp (atanh_enclosure (Rat.of_ints 1 3) ~prec:(prec + 4)) 1)

(* ln 10 = 3 ln 2 + 2 atanh(1/9)   (10 = 1.25 * 2^3, t = 1/9). *)
let ln10 ~prec =
  cached "ln10" ~prec (fun () ->
      let wp = prec + 8 in
      let a = Ival.mul ~prec:wp (Ival.of_int 3) (ln2 ~prec:wp) in
      let b = Ival.mul_2exp (atanh_enclosure (Rat.of_ints 1 9) ~prec:wp) 1 in
      Ival.add ~prec:wp a b)

(* ---------- shared enclosure bodies ---------- *)

(* exp of an arbitrary (narrow) interval: reduce by n*ln2. *)
let exp_ival xiv ~prec =
  let wp = prec + 24 in
  let mid = Rat.to_float (D.to_rat (Ival.lo xiv)) in
  if Float.abs mid > 1.0e7 then
    invalid_arg "Oracle: exponent argument too large for direct enclosure";
  let n = int_of_float (Float.round (mid /. Float.log 2.0)) in
  let r = Ival.sub ~prec:wp xiv (Ival.mul ~prec:wp (Ival.of_int n) (ln2 ~prec:wp)) in
  Ival.mul_2exp (exp_reduced r ~prec) n

(* ln of an exact positive rational. *)
let log_enclosure x ~prec =
  assert (Rat.sign x > 0);
  let wp = prec + 24 in
  (* x = m * 2^k with m in [1, 2). *)
  let k =
    let c = B.numbits (Rat.num x) - B.numbits (Rat.den x) in
    if Rat.compare x (Rat.mul_pow2 Rat.one c) >= 0 then c else c - 1
  in
  let m = Rat.mul_pow2 x (-k) in
  let t = Rat.div (Rat.sub m Rat.one) (Rat.add m Rat.one) in
  let atan_part = Ival.mul_2exp (atanh_enclosure t ~prec:wp) 1 in
  Ival.add ~prec:wp (Ival.mul ~prec:wp (Ival.of_int k) (ln2 ~prec:wp)) atan_part

(* ---------- exactly representable results ---------- *)

let is_pow2 n = B.sign n > 0 && B.numbits n - 1 = B.trailing_zeros n

(* x = 2^k exactly? *)
let pow2_exponent x =
  let n = Rat.num x and d = Rat.den x in
  if B.sign n <= 0 then None
  else if B.is_one d && is_pow2 n then Some (B.numbits n - 1)
  else if B.is_one n && is_pow2 d then Some (-(B.numbits d - 1))
  else None

(* x = 10^k exactly? *)
let pow10_exponent x =
  if Rat.sign x <= 0 then None
  else begin
    let lf = Float.log10 (Rat.to_float x) in
    if not (Float.is_finite lf) || Float.abs lf > 400.0 then None
    else begin
      let k = int_of_float (Float.round lf) in
      if Rat.equal x (Rat.pow (Rat.of_int 10) k) then Some k else None
    end
  end

(* ---------- domain predicates ---------- *)

let any_rational (_ : Rat.t) = true
let positive x = Rat.sign x > 0

(* ---------- the registry ---------- *)

(* Correctly rounded doubles of log2(e), log2(10), ln 2, log10(2) — the
   family constants every reduction / threshold check shares. *)
let log2e = 1.4426950408889634
let log2_10 = 3.321928094887362
let rn_ln2 = 0.6931471805599453
let log10_2 = 0.30102999566398120

let spec_exp =
  {
    func = Exp;
    name = "exp";
    aliases = [];
    family = Exp_family { log2_base = log2e };
    domain_ok = any_rational;
    (* By Lindemann–Weierstrass, exp x is rational only at x = 0. *)
    exact_value = (fun x -> if Rat.is_zero x then Some Rat.one else None);
    enclosure =
      (fun x ~prec ->
        let wp = prec + 24 in
        exp_ival (Ival.of_rat ~prec:wp x) ~prec);
    mini = { pieces = 2; min_degree = 3 };
    float32 = { pieces = 16; min_degree = 3 };
  }

let spec_exp2 =
  {
    func = Exp2;
    name = "exp2";
    aliases = [];
    family = Exp_family { log2_base = 1.0 };
    domain_ok = any_rational;
    (* By Gelfond–Schneider, 2^x is rational only at integer x. *)
    exact_value =
      (fun x ->
        if Rat.is_integer x && B.numbits (Rat.num x) <= 24 then
          Some (Rat.mul_pow2 Rat.one (B.to_int_exn (Rat.num x)))
        else None);
    enclosure =
      (fun x ~prec ->
        (* 2^x = 2^n * exp(f ln2), n = floor x, f = x - n in [0,1). *)
        let wp = prec + 24 in
        let n = B.to_int_exn (Rat.floor x) in
        let frac = Rat.sub x (Rat.of_int n) in
        let r = Ival.mul ~prec:wp (Ival.of_rat ~prec:wp frac) (ln2 ~prec:wp) in
        Ival.mul_2exp (exp_reduced r ~prec) n);
    mini = { pieces = 1; min_degree = 3 };
    float32 = { pieces = 16; min_degree = 3 };
  }

let spec_exp10 =
  {
    func = Exp10;
    name = "exp10";
    aliases = [];
    family = Exp_family { log2_base = log2_10 };
    domain_ok = any_rational;
    exact_value =
      (fun x ->
        if Rat.is_integer x && B.numbits (Rat.num x) <= 16 then
          Some (Rat.pow (Rat.of_int 10) (B.to_int_exn (Rat.num x)))
        else None);
    enclosure =
      (fun x ~prec ->
        let wp = prec + 24 in
        let t = Ival.mul ~prec:wp (Ival.of_rat ~prec:wp x) (ln10 ~prec:wp) in
        exp_ival t ~prec);
    mini = { pieces = 2; min_degree = 3 };
    float32 = { pieces = 16; min_degree = 3 };
  }

let spec_log =
  {
    func = Log;
    name = "log";
    aliases = [ "ln" ];
    family = Log_family { k_scale = rn_ln2; k_exact = false };
    domain_ok = positive;
    (* ln x is rational only at x = 1. *)
    exact_value = (fun x -> if Rat.equal x Rat.one then Some Rat.zero else None);
    enclosure = (fun x ~prec -> log_enclosure x ~prec);
    mini = { pieces = 2; min_degree = 2 };
    float32 = { pieces = 1; min_degree = 4 };
  }

let spec_log2 =
  {
    func = Log2;
    name = "log2";
    aliases = [];
    family = Log_family { k_scale = 1.0; k_exact = true };
    domain_ok = positive;
    exact_value = (fun x -> Option.map Rat.of_int (pow2_exponent x));
    enclosure =
      (fun x ~prec ->
        let wp = prec + 24 in
        Ival.div ~prec:wp (log_enclosure x ~prec:wp) (ln2 ~prec:wp));
    mini = { pieces = 1; min_degree = 2 };
    float32 = { pieces = 1; min_degree = 4 };
  }

let spec_log10 =
  {
    func = Log10;
    name = "log10";
    aliases = [];
    family = Log_family { k_scale = log10_2; k_exact = false };
    domain_ok = positive;
    exact_value = (fun x -> Option.map Rat.of_int (pow10_exponent x));
    enclosure =
      (fun x ~prec ->
        let wp = prec + 24 in
        Ival.div ~prec:wp (log_enclosure x ~prec:wp) (ln10 ~prec:wp));
    mini = { pieces = 2; min_degree = 2 };
    float32 = { pieces = 1; min_degree = 4 };
  }

(* The one dispatch site: every other module resolves per-function
   behaviour through this lookup (or through the [specs] list). *)
let get = function
  | Exp -> spec_exp
  | Exp2 -> spec_exp2
  | Exp10 -> spec_exp10
  | Log -> spec_log
  | Log2 -> spec_log2
  | Log10 -> spec_log10

let all = [ Exp; Exp2; Exp10; Log; Log2; Log10 ]

let name f = (get f).name

let of_name s =
  List.find_opt
    (fun f ->
      let spec = get f in
      String.equal spec.name s || List.exists (String.equal s) spec.aliases)
    all

(* Damerau–Levenshtein distance (with adjacent transposition), for the
   typo suggestion in [resolve]: "lgo2" should point at "log2". *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do
    d.(i).(0) <- i
  done;
  for j = 0 to lb do
    d.(0).(j) <- j
  done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      let best =
        Stdlib.min
          (Stdlib.min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1))
          (d.(i - 1).(j - 1) + cost)
      in
      d.(i).(j) <-
        (if
           i > 1 && j > 1
           && a.[i - 1] = b.[j - 2]
           && a.[i - 2] = b.[j - 1]
         then Stdlib.min best (d.(i - 2).(j - 2) + 1)
         else best)
    done
  done;
  d.(la).(lb)

let resolve s =
  match of_name s with
  | Some f -> Ok f
  | None ->
      let names =
        List.concat_map (fun f -> (get f).name :: (get f).aliases) all
      in
      let lower = String.lowercase_ascii s in
      let best =
        List.fold_left
          (fun acc n ->
            let dist = edit_distance lower n in
            match acc with
            | Some (_, d0) when d0 <= dist -> acc
            | _ -> Some (n, dist))
          None names
      in
      (* Offer a suggestion only when it is plausibly a typo: within 2
         edits, and not more edits than half the name. *)
      let suggestion =
        match best with
        | Some (n, d)
          when d <= 2 && 2 * d <= Stdlib.max (String.length n) (String.length s)
          ->
            Some n
        | _ -> None
      in
      Error (Diag.Error.Bad_spec { name = s; suggestion })

let is_exp_family f =
  match (get f).family with Exp_family _ -> true | Log_family _ -> false

let log2_scale f =
  match (get f).family with
  | Exp_family { log2_base } -> Some log2_base
  | Log_family _ -> None
