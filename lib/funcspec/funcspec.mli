(** The function-specification registry: every piece of per-function
    knowledge the generator needs, as data in one table.

    The paper's generator is function-agnostic — any elementary function
    with a range reduction and an oracle fits Algorithm 2 — but the
    reproduction used to hardcode its six functions as a closed variant
    with dispatch scattered across seven modules ([Oracle], [Config],
    [Reduction], [Genlibm], the executables and the bench harness).
    This module collapses all of it into one registry: a {!spec} record
    per function carrying the name and aliases, the domain predicate,
    the exact-value rule, the rigorous enclosure builder, the
    range-reduction family (with its overflow/underflow threshold
    scale), and the generation-config presets.  Everybody else asks
    {!get}; adding a function family is a change to this file alone
    (new constructor, new registry entry) instead of a seven-file hunt.

    The variant {!func} stays a closed enumeration on purpose: it is a
    value-carrying key (hash-table keys, [Marshal]ed artifacts, cache
    keys via {!name}), and constant constructors keep the on-disk
    representation of every persisted artifact stable. *)

type func = Exp | Exp2 | Exp10 | Log | Log2 | Log10

(** Range-reduction family, with the per-family constants every
    downstream layer needs:

    - [Exp_family]: reduce through [t = x * log2_base]; [log2_base] is
      also the overflow/underflow threshold scale ([t] against the
      target's exponent range decides the analytic shortcut).
    - [Log_family]: table-based reduction [x = 2^k * m]; output
      compensation adds [k * k_scale + T[j]], where [k_scale = log_b 2]
      and [k_exact] says the product is exact (log2, where
      [k_scale = 1]). *)
type family =
  | Exp_family of { log2_base : float }
  | Log_family of { k_scale : float; k_exact : bool }

(** Generation-config preset: the per-function knobs of
    {!Rlibm.Config.mini_for} / [float32_for] (every other field comes
    from the scale-wide defaults). *)
type preset = { pieces : int; min_degree : int }

type spec = {
  func : func;
  name : string;  (** canonical name; also the cache-key component *)
  aliases : string list;  (** extra {!of_name} spellings, e.g. ["ln"] *)
  family : family;
  domain_ok : Rat.t -> bool;  (** open domain of the function *)
  exact_value : Rat.t -> Rat.t option;
      (** [Some y] when [f x] is exactly the rational [y] (where a Ziv
          loop could not terminate) *)
  enclosure : Rat.t -> prec:int -> Ival.t;
      (** rigorous interval around [f x], width ~[2^-prec]; only called
          on in-domain inputs *)
  mini : preset;  (** reduced-width exhaustive-universe preset *)
  float32 : preset;  (** binary32 sampled-generation preset *)
}

(** {1 The registry} *)

val all : func list
(** Every registered function, in registration order. *)

val get : func -> spec
(** The one dispatch site: constant-time lookup of a function's spec. *)

val name : func -> string
val of_name : string -> func option

val resolve : string -> (func, Diag.Error.t) result
(** [of_name] with a typed failure: an unknown name yields
    [Bad_spec { name; suggestion }], where [suggestion] is the closest
    registered name or alias when it is within a plausible typo distance
    (Damerau–Levenshtein ≤ 2). *)

(** {1 Registry-backed helpers} *)

val is_exp_family : func -> bool

val log2_scale : func -> float option
(** The exponential family's threshold scale ([Some log2_base]);
    [None] for the logarithms. *)

(** {1 Shared constants}

    Cached enclosures of the constants the enclosure kernels reduce
    through; exposed for the oracle's public API and tests. *)

val ln2 : prec:int -> Ival.t
val ln10 : prec:int -> Ival.t
