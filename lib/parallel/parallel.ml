(* Fixed-size domain pool with deterministic chunked fan-out.

   A fan-out splits [0, n) into a static chunk grid (depending only on n
   and the job count), queues one task per chunk, and lets the pool's
   workers *and the calling domain* drain the queue; the caller then
   blocks until every chunk of its batch has completed.  Chunk results
   land in per-chunk slots and are concatenated in chunk-index order, so
   scheduling never influences the output.  All cross-domain publication
   happens under the pool mutex, which gives the necessary happens-before
   edges for the result slots. *)

(* ---------- job count ---------- *)

(* A malformed RLIBM_JOBS used to be silently swallowed, while the -j
   flag exits 2 on the same input — the env path now reports what it
   ignored through the diag stream (once; default_jobs is called
   repeatedly).  The default warn-level stderr sink keeps this visible
   even in unconfigured library embeddings. *)
let warned_bad_jobs_env = ref false

let default_jobs () =
  match Sys.getenv_opt "RLIBM_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s when String.trim s = "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ ->
          let fallback = Domain.recommended_domain_count () in
          if not !warned_bad_jobs_env then begin
            warned_bad_jobs_env := true;
            Diag.event ~level:Diag.Warn "parallel.bad-jobs-env" (fun () ->
                [
                  ("ignored", Diag.String s);
                  ("expected", Diag.String "a positive integer");
                  ("using", Diag.Int fallback);
                ])
          end;
          fallback)

let current_jobs = ref 0 (* 0 = not yet initialized *)

let jobs () =
  if !current_jobs = 0 then current_jobs := default_jobs ();
  !current_jobs

(* ---------- pool ---------- *)

type pool = {
  mutex : Mutex.t;
  work : Condition.t; (* queue became non-empty, or stopping *)
  batch_done : Condition.t; (* some batch's pending count hit zero *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let the_pool : pool option ref = ref None
let exit_hooked = ref false

let worker pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    let rec next () =
      if pool.stop then None
      else
        match Queue.take_opt pool.queue with
        | Some t -> Some t
        | None ->
            Condition.wait pool.work pool.mutex;
            next ()
    in
    match next () with
    | None -> Mutex.unlock pool.mutex
    | Some task ->
        Mutex.unlock pool.mutex;
        task ();
        loop ()
  in
  loop ()

let shutdown () =
  match !the_pool with
  | None -> ()
  | Some pool ->
      Mutex.lock pool.mutex;
      pool.stop <- true;
      Condition.broadcast pool.work;
      Mutex.unlock pool.mutex;
      Array.iter Domain.join pool.domains;
      the_pool := None

(* Pool of [j - 1] workers; the driver is the j-th executor. *)
let ensure_pool j =
  (match !the_pool with
  | Some p when Array.length p.domains = j - 1 -> ()
  | Some _ -> shutdown ()
  | None -> ());
  match !the_pool with
  | Some p -> p
  | None ->
      let pool =
        {
          mutex = Mutex.create ();
          work = Condition.create ();
          batch_done = Condition.create ();
          queue = Queue.create ();
          stop = false;
          domains = [||];
        }
      in
      pool.domains <-
        Array.init (j - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
      the_pool := Some pool;
      if not !exit_hooked then begin
        exit_hooked := true;
        at_exit shutdown
      end;
      pool

let set_jobs j =
  let j = Stdlib.max 1 j in
  if j <> jobs () then begin
    (* Tear the old pool down now; the next fan-out rebuilds it. *)
    shutdown ();
    current_jobs := j
  end

(* Run every task (each must be exception-free: callers wrap their chunk
   bodies) and return once all have finished.  The caller participates in
   draining the queue, so j jobs means j domains doing work. *)
let run_tasks pool (tasks : (unit -> unit) array) =
  let pending = ref (Array.length tasks) in
  let wrap task () =
    task ();
    Mutex.lock pool.mutex;
    decr pending;
    if !pending = 0 then Condition.broadcast pool.batch_done;
    Mutex.unlock pool.mutex
  in
  Mutex.lock pool.mutex;
  Array.iter (fun t -> Queue.add (wrap t) pool.queue) tasks;
  Condition.broadcast pool.work;
  let rec drain () =
    match Queue.take_opt pool.queue with
    | Some t ->
        Mutex.unlock pool.mutex;
        t ();
        Mutex.lock pool.mutex;
        drain ()
    | None -> ()
  in
  drain ();
  while !pending > 0 do
    Condition.wait pool.batch_done pool.mutex
  done;
  Mutex.unlock pool.mutex

(* ---------- chunked fan-out ---------- *)

(* Several chunks per job: per-item cost is uneven (Ziv precision levels
   differ wildly across oracle inputs), so over-decomposition plus the
   shared queue gives load balancing without sacrificing determinism. *)
let chunk_factor = 8

(* Chunk k of c over n items: [k*n/c, (k+1)*n/c). *)
let chunk_lo n c k = k * n / c
let chunk_hi n c k = (k + 1) * n / c
let chunk_count j n = Stdlib.min n (j * chunk_factor)

(* Fan [n] items out as [c] chunk tasks; [body k lo hi] fills chunk k's
   result slot.  The exception of the lowest-numbered failing chunk is
   re-raised after the whole batch has finished, so no worker is ever
   abandoned mid-write. *)
let fan_out j n body =
  let c = chunk_count j n in
  Diag.event ~level:Diag.Debug "parallel.fan-out" (fun () ->
      [ ("jobs", Diag.Int j); ("items", Diag.Int n); ("chunks", Diag.Int c) ]);
  let failed = Array.make c None in
  let tasks =
    Array.init c (fun k () ->
        let lo = chunk_lo n c k and hi = chunk_hi n c k in
        try body k lo hi
        with e -> failed.(k) <- Some (e, Printexc.get_raw_backtrace ()))
  in
  run_tasks (ensure_pool j) tasks;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    failed;
  c

(* map_array / init write chunk results straight into one preallocated
   result array — per-chunk slice arrays plus the final [Array.concat]
   copied every element twice and left a garbage slice per chunk.
   ['b array] cannot be preallocated without a value of type ['b], so
   the driver computes element 0 up front as the fill seed and the
   chunk covering index 0 starts at 1.  Chunks write disjoint ranges;
   the pool mutex publishes the writes back to the driver. *)

let map_array ?(min = 2) f a =
  let n = Array.length a in
  let j = jobs () in
  if j <= 1 || n < min || n <= 1 then Array.map f a
  else begin
    let out = Array.make n (f a.(0)) in
    let _c =
      fan_out j n (fun _k lo hi ->
          for i = (if lo = 0 then 1 else lo) to hi - 1 do
            out.(i) <- f a.(i)
          done)
    in
    out
  end

let init ?(min = 2) n f =
  let j = jobs () in
  if j <= 1 || n < min || n <= 1 then Array.init n f
  else begin
    let out = Array.make n (f 0) in
    let _c =
      fan_out j n (fun _k lo hi ->
          for i = (if lo = 0 then 1 else lo) to hi - 1 do
            out.(i) <- f i
          done)
    in
    out
  end

let iter_chunks ?(min = 2) n f =
  let j = jobs () in
  if n <= 0 then ()
  else if j <= 1 || n < min || n <= 1 then f 0 n
  else ignore (fan_out j n (fun _k lo hi -> f lo hi))
