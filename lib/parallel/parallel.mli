(** Deterministic multicore fan-out over a fixed-size domain pool.

    The whole RLibm pipeline is embarrassingly parallel over inputs and
    reduced points; this module is the single substrate every hot layer
    (oracle table construction, the generate/validate loop, exhaustive
    verification, the benchmark grid) uses to fan that work out across
    OCaml 5 domains.

    {2 Determinism contract}

    Work on [n] items is split into chunks by a static partition that
    depends only on [n] and the job count; chunk [k] covers
    [\[k*n/c, (k+1)*n/c)].  Workers may execute chunks in any order, but
    results are always merged in chunk-index order, so for a pure [f] the
    output is bit-identical to the sequential path regardless of the
    worker count or scheduling.  With [jobs () = 1] no domain is ever
    spawned and every combinator degrades to its exact [Stdlib.Array]
    sequential equivalent on the calling domain.

    {2 Requirements on [f]}

    [f] runs on worker domains: it must not raise data races — it may
    read shared structures freely as long as nothing mutates them during
    the call (e.g. oracle hash tables are read-only inside a fan-out and
    memoized on the driver afterwards), and any writes must target
    per-index disjoint locations.  Driver-domain-only state (the
    generator's RNG, LP warm starts) must stay out of [f].

    If [f] raises, the exception from the lowest-numbered failing chunk
    is re-raised on the caller's domain after all chunks finish. *)

(** Number of jobs the next fan-out will use.  Precedence: {!set_jobs}
    (the [-j] flag of the executables) wins over the [RLIBM_JOBS]
    environment variable, which wins over
    [Domain.recommended_domain_count ()]. *)
val jobs : unit -> int

(** [set_jobs j] fixes the job count (clamped to at least 1).  An
    existing pool of a different size is torn down; the next fan-out
    lazily starts [j - 1] workers (the caller is the [j]-th). *)
val set_jobs : int -> unit

(** The default job count: [RLIBM_JOBS] if set (non-empty) and a
    positive integer, otherwise [Domain.recommended_domain_count ()].
    A malformed value falls back to the core count with a one-time
    warning on stderr (the [-j] flag, by contrast, rejects bad values
    outright — the flag always wins over the environment). *)
val default_jobs : unit -> int

(** [map_array ?min f a] is [Array.map f a], fanned out when
    [jobs () > 1] and [Array.length a >= min] (default [2]: parallel
    whenever possible).  [min] exists so callers with very cheap [f] can
    skip the fan-out overhead on small arrays.  Chunks write disjoint
    ranges of a single preallocated result array (no per-chunk slices,
    no concatenation copy); the driver evaluates [f a.(0)] first as the
    allocation seed. *)
val map_array : ?min:int -> ('a -> 'b) -> 'a array -> 'b array

(** [init ?min n f] is [Array.init n f] with the same fan-out rule and
    the same direct-write merge; chunks tabulate disjoint index
    ranges. *)
val init : ?min:int -> int -> (int -> 'a) -> 'a array

(** [iter_chunks ?min n f] partitions [0..n-1] into the static chunk
    grid and calls [f lo hi] for each half-open range [\[lo, hi)].
    Sequentially ([jobs () = 1] or [n < min]) this is the single call
    [f 0 n].  [f] must treat each index independently (fill disjoint
    slots of a preallocated array) for the determinism contract to
    hold. *)
val iter_chunks : ?min:int -> int -> (int -> int -> unit) -> unit

(** Join and discard the worker pool (idempotent; registered with
    [at_exit]).  The next fan-out rebuilds it. *)
val shutdown : unit -> unit
