(* The four evaluation configurations of the paper plus Horner+FMA.

   Each scheme is defined twice on purpose: once as an Expr DAG (reference
   semantics + cost model) and once as a specialized closure used by the
   benchmarks.  The test suite checks bit-for-bit agreement between the
   two on random inputs, so the specializations cannot drift. *)

type scheme = Horner | HornerFma | Knuth | Estrin | EstrinFma

let paper_schemes = [ Horner; Knuth; Estrin; EstrinFma ]
let all_schemes = [ Horner; HornerFma; Knuth; Estrin; EstrinFma ]

let scheme_name = function
  | Horner -> "horner"
  | HornerFma -> "horner-fma"
  | Knuth -> "knuth"
  | Estrin -> "estrin"
  | EstrinFma -> "estrin-fma"

let scheme_of_name = function
  | "horner" -> Some Horner
  | "horner-fma" -> Some HornerFma
  | "knuth" -> Some Knuth
  | "estrin" -> Some Estrin
  | "estrin-fma" -> Some EstrinFma
  | _ -> None

let fma = Float.fma

(* ---------- direct evaluators ---------- *)

let horner c x =
  let n = Array.length c in
  match n with
  | 0 -> 0.0
  | 1 -> c.(0)
  | 2 -> c.(0) +. (x *. c.(1))
  | 3 -> c.(0) +. (x *. (c.(1) +. (x *. c.(2))))
  | 4 -> c.(0) +. (x *. (c.(1) +. (x *. (c.(2) +. (x *. c.(3))))))
  | 5 ->
      c.(0)
      +. (x *. (c.(1) +. (x *. (c.(2) +. (x *. (c.(3) +. (x *. c.(4))))))))
  | 6 ->
      c.(0)
      +. (x
         *. (c.(1)
            +. (x
               *. (c.(2) +. (x *. (c.(3) +. (x *. (c.(4) +. (x *. c.(5))))))))
         ))
  | 7 ->
      c.(0)
      +. (x
         *. (c.(1)
            +. (x
               *. (c.(2)
                  +. (x
                     *. (c.(3)
                        +. (x *. (c.(4) +. (x *. (c.(5) +. (x *. c.(6))))))))
               ))))
  | _ ->
      let acc = ref c.(n - 1) in
      for i = n - 2 downto 0 do
        acc := c.(i) +. (x *. !acc)
      done;
      !acc

let horner_fma c x =
  let n = Array.length c in
  match n with
  | 0 -> 0.0
  | 1 -> c.(0)
  | 2 -> fma x c.(1) c.(0)
  | 3 -> fma x (fma x c.(2) c.(1)) c.(0)
  | 4 -> fma x (fma x (fma x c.(3) c.(2)) c.(1)) c.(0)
  | 5 -> fma x (fma x (fma x (fma x c.(4) c.(3)) c.(2)) c.(1)) c.(0)
  | 6 ->
      fma x (fma x (fma x (fma x (fma x c.(5) c.(4)) c.(3)) c.(2)) c.(1))
        c.(0)
  | 7 ->
      fma x
        (fma x
           (fma x (fma x (fma x (fma x c.(6) c.(5)) c.(4)) c.(3)) c.(2))
           c.(1))
        c.(0)
  | _ ->
      let acc = ref c.(n - 1) in
      for i = n - 2 downto 0 do
        acc := fma x !acc c.(i)
      done;
      !acc

(* Estrin without fma, specialized per degree.  The pairing follows
   Algorithm 1 of the paper: v_i = u_{2i} + u_{2i+1} x, then recurse on
   y = x^2; a trailing even coefficient passes through unpaired. *)

let estrin_generic ~use_fma c x =
  let pair a b x = if use_fma then fma b x a else a +. (b *. x) in
  let rec go (v : float array) x =
    let n = Array.length v in
    if n = 1 then v.(0)
    else begin
      let half = (n + 1) / 2 in
      let w =
        Array.init half (fun i ->
            if (2 * i) + 1 < n then pair v.(2 * i) v.((2 * i) + 1) x
            else v.(2 * i))
      in
      go w (x *. x)
    end
  in
  if Array.length c = 0 then 0.0 else go c x

let estrin c x =
  match Array.length c with
  | 0 -> 0.0
  | 1 -> c.(0)
  | 2 -> c.(0) +. (c.(1) *. x)
  | 3 ->
      (* degree 2 *)
      let t0 = c.(0) +. (c.(1) *. x) in
      t0 +. (c.(2) *. (x *. x))
  | 4 ->
      (* degree 3 *)
      let t0 = c.(0) +. (c.(1) *. x) in
      let t1 = c.(2) +. (c.(3) *. x) in
      t0 +. (t1 *. (x *. x))
  | 5 ->
      (* degree 4 *)
      let t0 = c.(0) +. (c.(1) *. x) in
      let t1 = c.(2) +. (c.(3) *. x) in
      let y = x *. x in
      let s = t0 +. (t1 *. y) in
      s +. (c.(4) *. (y *. y))
  | 6 ->
      (* degree 5 *)
      let t0 = c.(0) +. (c.(1) *. x) in
      let t1 = c.(2) +. (c.(3) *. x) in
      let t2 = c.(4) +. (c.(5) *. x) in
      let y = x *. x in
      let s = t0 +. (t1 *. y) in
      s +. (t2 *. (y *. y))
  | 7 ->
      (* degree 6 *)
      let t0 = c.(0) +. (c.(1) *. x) in
      let t1 = c.(2) +. (c.(3) *. x) in
      let t2 = c.(4) +. (c.(5) *. x) in
      let y = x *. x in
      let s0 = t0 +. (t1 *. y) in
      let s1 = t2 +. (c.(6) *. y) in
      s0 +. (s1 *. (y *. y))
  | _ -> estrin_generic ~use_fma:false c x

let estrin_fma c x =
  match Array.length c with
  | 0 -> 0.0
  | 1 -> c.(0)
  | 2 -> fma c.(1) x c.(0)
  | 3 ->
      let t0 = fma c.(1) x c.(0) in
      fma c.(2) (x *. x) t0
  | 4 ->
      let t0 = fma c.(1) x c.(0) in
      let t1 = fma c.(3) x c.(2) in
      fma t1 (x *. x) t0
  | 5 ->
      let t0 = fma c.(1) x c.(0) in
      let t1 = fma c.(3) x c.(2) in
      let y = x *. x in
      let s = fma t1 y t0 in
      fma c.(4) (y *. y) s
  | 6 ->
      let t0 = fma c.(1) x c.(0) in
      let t1 = fma c.(3) x c.(2) in
      let t2 = fma c.(5) x c.(4) in
      let y = x *. x in
      let s = fma t1 y t0 in
      fma t2 (y *. y) s
  | 7 ->
      let t0 = fma c.(1) x c.(0) in
      let t1 = fma c.(3) x c.(2) in
      let t2 = fma c.(5) x c.(4) in
      let y = x *. x in
      let s0 = fma t1 y t0 in
      let s1 = fma c.(6) y t2 in
      fma s1 (y *. y) s0
  | _ -> estrin_generic ~use_fma:true c x

(* Knuth's adapted forms: equations (3), (5) and (8). *)
let eval_knuth ~degree (a : float array) x =
  match degree with
  | 4 ->
      let y = ((x +. a.(0)) *. x) +. a.(1) in
      (((y +. x +. a.(2)) *. y) +. a.(3)) *. a.(4)
  | 5 ->
      let t = x +. a.(0) in
      let y = t *. t in
      (((((y +. a.(1)) *. y) +. a.(2)) *. (x +. a.(3))) +. a.(4)) *. a.(5)
  | 6 ->
      let z = ((x +. a.(0)) *. x) +. a.(1) in
      let w = ((x +. a.(2)) *. z) +. a.(3) in
      (((w +. z +. a.(4)) *. w) +. a.(5)) *. a.(6)
  | _ -> invalid_arg "Polyeval.eval_knuth: degree must be 4, 5 or 6"

(* ---------- batch evaluators ---------- *)

(* One loop per (scheme, length): the coefficient loads are hoisted out of
   the loop into locals, and the loop body is the *textually identical*
   float expression of the scalar evaluator above, so the batch result is
   bit-for-bit the scalar result (enforced by the test suite).  The
   [floatarray] src/dst keep every element unboxed; with the coefficients
   in locals the specialized bodies perform no per-element allocation.

   Lengths above 7 never occur in generated functions (Config.max_degree
   is 6); the generic fallbacks only exist so the batch API is total. *)

let horner_into (c : float array) (src : floatarray) (dst : floatarray) lo hi =
  match Array.length c with
  | 0 -> Float.Array.fill dst lo (hi - lo) 0.0
  | 1 -> Float.Array.fill dst lo (hi - lo) c.(0)
  | 2 ->
      let c0 = c.(0) and c1 = c.(1) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i (c0 +. (x *. c1))
      done
  | 3 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i (c0 +. (x *. (c1 +. (x *. c2))))
      done
  | 4 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i
          (c0 +. (x *. (c1 +. (x *. (c2 +. (x *. c3))))))
      done
  | 5 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3)
      and c4 = c.(4) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i
          (c0 +. (x *. (c1 +. (x *. (c2 +. (x *. (c3 +. (x *. c4))))))))
      done
  | 6 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3)
      and c4 = c.(4) and c5 = c.(5) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i
          (c0
          +. (x
             *. (c1
                +. (x *. (c2 +. (x *. (c3 +. (x *. (c4 +. (x *. c5))))))))))
      done
  | 7 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3)
      and c4 = c.(4) and c5 = c.(5) and c6 = c.(6) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i
          (c0
          +. (x
             *. (c1
                +. (x
                   *. (c2
                      +. (x
                         *. (c3 +. (x *. (c4 +. (x *. (c5 +. (x *. c6))))))))))))
      done
  | n ->
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let acc = ref c.(n - 1) in
        for k = n - 2 downto 0 do
          acc := c.(k) +. (x *. !acc)
        done;
        Float.Array.unsafe_set dst i !acc
      done

let horner_fma_into (c : float array) (src : floatarray) (dst : floatarray) lo
    hi =
  match Array.length c with
  | 0 -> Float.Array.fill dst lo (hi - lo) 0.0
  | 1 -> Float.Array.fill dst lo (hi - lo) c.(0)
  | 2 ->
      let c0 = c.(0) and c1 = c.(1) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i (fma x c1 c0)
      done
  | 3 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i (fma x (fma x c2 c1) c0)
      done
  | 4 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i (fma x (fma x (fma x c3 c2) c1) c0)
      done
  | 5 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3)
      and c4 = c.(4) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i
          (fma x (fma x (fma x (fma x c4 c3) c2) c1) c0)
      done
  | 6 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3)
      and c4 = c.(4) and c5 = c.(5) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i
          (fma x (fma x (fma x (fma x (fma x c5 c4) c3) c2) c1) c0)
      done
  | 7 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3)
      and c4 = c.(4) and c5 = c.(5) and c6 = c.(6) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i
          (fma x (fma x (fma x (fma x (fma x (fma x c6 c5) c4) c3) c2) c1) c0)
      done
  | n ->
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let acc = ref c.(n - 1) in
        for k = n - 2 downto 0 do
          acc := fma x !acc c.(k)
        done;
        Float.Array.unsafe_set dst i !acc
      done

let estrin_into (c : float array) (src : floatarray) (dst : floatarray) lo hi =
  match Array.length c with
  | 0 -> Float.Array.fill dst lo (hi - lo) 0.0
  | 1 -> Float.Array.fill dst lo (hi - lo) c.(0)
  | 2 ->
      let c0 = c.(0) and c1 = c.(1) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i (c0 +. (c1 *. x))
      done
  | 3 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let t0 = c0 +. (c1 *. x) in
        Float.Array.unsafe_set dst i (t0 +. (c2 *. (x *. x)))
      done
  | 4 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let t0 = c0 +. (c1 *. x) in
        let t1 = c2 +. (c3 *. x) in
        Float.Array.unsafe_set dst i (t0 +. (t1 *. (x *. x)))
      done
  | 5 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3)
      and c4 = c.(4) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let t0 = c0 +. (c1 *. x) in
        let t1 = c2 +. (c3 *. x) in
        let y = x *. x in
        let s = t0 +. (t1 *. y) in
        Float.Array.unsafe_set dst i (s +. (c4 *. (y *. y)))
      done
  | 6 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3)
      and c4 = c.(4) and c5 = c.(5) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let t0 = c0 +. (c1 *. x) in
        let t1 = c2 +. (c3 *. x) in
        let t2 = c4 +. (c5 *. x) in
        let y = x *. x in
        let s = t0 +. (t1 *. y) in
        Float.Array.unsafe_set dst i (s +. (t2 *. (y *. y)))
      done
  | 7 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3)
      and c4 = c.(4) and c5 = c.(5) and c6 = c.(6) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let t0 = c0 +. (c1 *. x) in
        let t1 = c2 +. (c3 *. x) in
        let t2 = c4 +. (c5 *. x) in
        let y = x *. x in
        let s0 = t0 +. (t1 *. y) in
        let s1 = t2 +. (c6 *. y) in
        Float.Array.unsafe_set dst i (s0 +. (s1 *. (y *. y)))
      done
  | _ ->
      for i = lo to hi - 1 do
        Float.Array.unsafe_set dst i
          (estrin_generic ~use_fma:false c (Float.Array.unsafe_get src i))
      done

let estrin_fma_into (c : float array) (src : floatarray) (dst : floatarray) lo
    hi =
  match Array.length c with
  | 0 -> Float.Array.fill dst lo (hi - lo) 0.0
  | 1 -> Float.Array.fill dst lo (hi - lo) c.(0)
  | 2 ->
      let c0 = c.(0) and c1 = c.(1) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        Float.Array.unsafe_set dst i (fma c1 x c0)
      done
  | 3 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let t0 = fma c1 x c0 in
        Float.Array.unsafe_set dst i (fma c2 (x *. x) t0)
      done
  | 4 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let t0 = fma c1 x c0 in
        let t1 = fma c3 x c2 in
        Float.Array.unsafe_set dst i (fma t1 (x *. x) t0)
      done
  | 5 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3)
      and c4 = c.(4) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let t0 = fma c1 x c0 in
        let t1 = fma c3 x c2 in
        let y = x *. x in
        let s = fma t1 y t0 in
        Float.Array.unsafe_set dst i (fma c4 (y *. y) s)
      done
  | 6 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3)
      and c4 = c.(4) and c5 = c.(5) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let t0 = fma c1 x c0 in
        let t1 = fma c3 x c2 in
        let t2 = fma c5 x c4 in
        let y = x *. x in
        let s = fma t1 y t0 in
        Float.Array.unsafe_set dst i (fma t2 (y *. y) s)
      done
  | 7 ->
      let c0 = c.(0) and c1 = c.(1) and c2 = c.(2) and c3 = c.(3)
      and c4 = c.(4) and c5 = c.(5) and c6 = c.(6) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let t0 = fma c1 x c0 in
        let t1 = fma c3 x c2 in
        let t2 = fma c5 x c4 in
        let y = x *. x in
        let s0 = fma t1 y t0 in
        let s1 = fma c6 y t2 in
        Float.Array.unsafe_set dst i (fma s1 (y *. y) s0)
      done
  | _ ->
      for i = lo to hi - 1 do
        Float.Array.unsafe_set dst i
          (estrin_generic ~use_fma:true c (Float.Array.unsafe_get src i))
      done

let knuth_into (a : float array) (src : floatarray) (dst : floatarray) lo hi =
  match Array.length a - 1 with
  | 4 ->
      let a0 = a.(0) and a1 = a.(1) and a2 = a.(2) and a3 = a.(3)
      and a4 = a.(4) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let y = ((x +. a0) *. x) +. a1 in
        Float.Array.unsafe_set dst i ((((y +. x +. a2) *. y) +. a3) *. a4)
      done
  | 5 ->
      let a0 = a.(0) and a1 = a.(1) and a2 = a.(2) and a3 = a.(3)
      and a4 = a.(4) and a5 = a.(5) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let t = x +. a0 in
        let y = t *. t in
        Float.Array.unsafe_set dst i
          ((((((y +. a1) *. y) +. a2) *. (x +. a3)) +. a4) *. a5)
      done
  | 6 ->
      let a0 = a.(0) and a1 = a.(1) and a2 = a.(2) and a3 = a.(3)
      and a4 = a.(4) and a5 = a.(5) and a6 = a.(6) in
      for i = lo to hi - 1 do
        let x = Float.Array.unsafe_get src i in
        let z = ((x +. a0) *. x) +. a1 in
        let w = ((x +. a2) *. z) +. a3 in
        Float.Array.unsafe_set dst i ((((w +. z +. a4) *. w) +. a5) *. a6)
      done
  | _ -> invalid_arg "Polyeval.eval_into: Knuth degree must be 4, 5 or 6"

let eval_into scheme (data : float array) ~(src : floatarray)
    ~(dst : floatarray) ~lo ~hi =
  match scheme with
  | Horner -> horner_into data src dst lo hi
  | HornerFma -> horner_fma_into data src dst lo hi
  | Estrin -> estrin_into data src dst lo hi
  | EstrinFma -> estrin_fma_into data src dst lo hi
  | Knuth -> knuth_into data src dst lo hi

(* ---------- Knuth coefficient adaptation ---------- *)

let adapt_knuth (u : float array) =
  let d = Array.length u - 1 in
  let finite a = Array.for_all Float.is_finite a in
  match d with
  | 4 when u.(4) <> 0.0 ->
      (* Equation (4). *)
      let a0 = 0.5 *. ((u.(3) /. u.(4)) -. 1.0) in
      let beta = (u.(2) /. u.(4)) -. (a0 *. (a0 +. 1.0)) in
      let a1 = (u.(1) /. u.(4)) -. (a0 *. beta) in
      let a2 = beta -. (2.0 *. a1) in
      let a3 = (u.(0) /. u.(4)) -. (a1 *. (a1 +. a2)) in
      let a = [| a0; a1; a2; a3; u.(4) |] in
      if finite a then Some a else None
  | 5 when u.(5) <> 0.0 ->
      (* Equations (6)-(7). *)
      let p = u.(3) /. u.(5) and q = u.(4) /. u.(5) in
      let a0 =
        Cubic.real_root ~c3:(-40.0) ~c2:(24.0 *. q)
          ~c1:(-2.0 *. (p +. (2.0 *. q *. q)))
          ~c0:((p *. q) -. (u.(2) /. u.(5)))
      in
      let a1 = p -. (4.0 *. q *. a0) +. (10.0 *. a0 *. a0) in
      let a3 = q -. (4.0 *. a0) in
      let a2 =
        (u.(1) /. u.(5))
        -. (a0 *. a0 *. (a1 +. (a0 *. a0)))
        -. (2.0 *. a0 *. a3 *. (a1 +. (2.0 *. a0 *. a0)))
      in
      let a4 =
        (u.(0) /. u.(5)) -. (a2 *. a3) -. (a0 *. a0 *. a3 *. (a1 +. (a0 *. a0)))
      in
      let a = [| a0; a1; a2; a3; a4; u.(5) |] in
      if finite a then Some a else None
  | 6 when u.(6) <> 0.0 ->
      (* Equations (9)-(12), after normalizing the leading coefficient. *)
      let v = Array.map (fun c -> c /. u.(6)) u in
      let b1 = 0.5 *. (v.(5) -. 1.0) in
      let b2 = v.(4) -. (b1 *. (b1 +. 1.0)) in
      let b3 = v.(3) -. (b1 *. b2) in
      let b4 = b1 -. b2 in
      let b5 = v.(2) -. (b1 *. b3) in
      let b6 =
        Cubic.real_root ~c3:2.0
          ~c2:((2.0 *. b4) -. b2 +. 1.0)
          ~c1:((2.0 *. b5) -. (b2 *. b4) -. b3)
          ~c0:(v.(1) -. (b2 *. b5))
      in
      let b7 = (b6 *. b6) +. (b4 *. b6) +. b5 in
      let b8 = b3 -. b6 -. b7 in
      let a0 = b2 -. (2.0 *. b6) in
      let a2 = b1 -. a0 in
      let a1 = b6 -. (a0 *. a2) in
      let a3 = b7 -. (a1 *. a2) in
      let a4 = b8 -. b7 -. a1 in
      let a5 = v.(0) -. (b7 *. b8) in
      let a = [| a0; a1; a2; a3; a4; a5; u.(6) |] in
      if finite a then Some a else None
  | _ -> None

(* ---------- DAG builders ---------- *)

let horner_expr ~use_fma degree =
  let open Expr in
  let rec build i acc =
    if i < 0 then acc
    else
      build (i - 1)
        (if use_fma then Fma (acc, Var, Const i)
         else Add (Const i, Mul (acc, Var)))
  in
  if degree = 0 then Const 0 else build (degree - 1) (Const degree)

let estrin_expr ~use_fma degree =
  let open Expr in
  let pair lo hi x = if use_fma then Fma (hi, x, lo) else Add (lo, Mul (hi, x)) in
  let rec go (v : Expr.t array) x =
    let n = Array.length v in
    if n = 1 then v.(0)
    else begin
      let half = (n + 1) / 2 in
      let w =
        Array.init half (fun i ->
            if (2 * i) + 1 < n then pair v.(2 * i) v.((2 * i) + 1) x
            else v.(2 * i))
      in
      go w (Mul (x, x))
    end
  in
  go (Array.init (degree + 1) (fun i -> Const i)) Var

let knuth_expr degree =
  let open Expr in
  match degree with
  | 4 ->
      let y = Add (Mul (Add (Var, Const 0), Var), Const 1) in
      Mul (Add (Mul (Add (Add (y, Var), Const 2), y), Const 3), Const 4)
  | 5 ->
      let t = Add (Var, Const 0) in
      let y = Mul (t, t) in
      let inner = Add (Mul (Add (y, Const 1), y), Const 2) in
      Mul (Add (Mul (inner, Add (Var, Const 3)), Const 4), Const 5)
  | 6 ->
      let z = Add (Mul (Add (Var, Const 0), Var), Const 1) in
      let w = Add (Mul (Add (Var, Const 2), z), Const 3) in
      Mul (Add (Mul (Add (Add (w, z), Const 4), w), Const 5), Const 6)
  | _ -> invalid_arg "Polyeval.scheme_expr: Knuth needs degree 4, 5 or 6"

let scheme_expr scheme ~degree =
  match scheme with
  | Horner -> horner_expr ~use_fma:false degree
  | HornerFma -> horner_expr ~use_fma:true degree
  | Estrin -> estrin_expr ~use_fma:false degree
  | EstrinFma -> estrin_expr ~use_fma:true degree
  | Knuth -> knuth_expr degree

(* ---------- compilation ---------- *)

type compiled = {
  scheme : scheme;
  degree : int;
  data : float array;
  expr : Expr.t;
  eval : float -> float;
}

let compile scheme coeffs =
  (* Snapshot the coefficients: the generator's dither loop reuses its
     candidate buffer across trials, and compiled evaluators run on other
     domains during parallel validation — [data]/[eval] must not alias a
     caller-mutated array. *)
  let coeffs = Array.copy coeffs in
  let degree = Array.length coeffs - 1 in
  if degree < 0 then None
  else
    match scheme with
    | Horner ->
        Some
          {
            scheme;
            degree;
            data = coeffs;
            expr = horner_expr ~use_fma:false degree;
            eval = horner coeffs;
          }
    | HornerFma ->
        Some
          {
            scheme;
            degree;
            data = coeffs;
            expr = horner_expr ~use_fma:true degree;
            eval = horner_fma coeffs;
          }
    | Estrin ->
        Some
          {
            scheme;
            degree;
            data = coeffs;
            expr = estrin_expr ~use_fma:false degree;
            eval = estrin coeffs;
          }
    | EstrinFma ->
        Some
          {
            scheme;
            degree;
            data = coeffs;
            expr = estrin_expr ~use_fma:true degree;
            eval = estrin_fma coeffs;
          }
    | Knuth -> (
        match adapt_knuth coeffs with
        | None -> None
        | Some alphas ->
            Some
              {
                scheme;
                degree;
                data = alphas;
                expr = knuth_expr degree;
                eval = eval_knuth ~degree alphas;
              })

(* Rebuild a compiled evaluator from a previously compiled [data] array
   (e.g. one loaded from the persistent artifact store).  For the dense
   schemes this is just [compile]; for Knuth the array already holds the
   *adapted* constants, so re-running the adaptation would be wrong — the
   evaluator is rebuilt around the constants directly, bit-identical to
   the original compilation. *)
let of_data scheme data =
  match scheme with
  | Horner | HornerFma | Estrin | EstrinFma -> compile scheme data
  | Knuth ->
      let degree = Array.length data - 1 in
      if degree < 4 || degree > 6 || not (Array.for_all Float.is_finite data)
      then None
      else
        let data = Array.copy data in
        Some
          {
            scheme;
            degree;
            data;
            expr = knuth_expr degree;
            eval = eval_knuth ~degree data;
          }

let cost c = Expr.cost c.expr

let eval_exact c x = Expr.eval_rat c.expr ~data:c.data x
