(** Polynomial evaluation schemes for RLibm-generated polynomials: Horner's
    rule (the RLibm baseline), Knuth's coefficient adaptation (§3), Estrin's
    parallel scheme (§4) and Estrin with fused multiply-add — the four
    configurations evaluated in the paper — plus Horner-with-FMA as an
    ablation.

    A polynomial is given by its dense coefficients in increasing-power
    order ([c.(k)] multiplies [x^k]).  {!compile} turns (scheme, coeffs)
    into an executable double-precision evaluator with scheme-specific
    constants: the coefficients themselves, or Knuth's adapted
    coefficients.  Every compiled evaluator agrees bit-for-bit with the
    reference DAG semantics in {!Expr} (enforced by the test suite), so the
    validation step of the generation pipeline sees exactly what runs at
    benchmark time. *)

type scheme = Horner | HornerFma | Knuth | Estrin | EstrinFma

(** The four configurations of the paper, in Table 1/2 order. *)
val paper_schemes : scheme list

val all_schemes : scheme list
val scheme_name : scheme -> string
val scheme_of_name : string -> scheme option

type compiled = {
  scheme : scheme;
  degree : int;
  data : float array;
      (** dense coefficients, or Knuth's adapted coefficients *)
  expr : Expr.t;  (** reference semantics and cost model *)
  eval : float -> float;  (** fast evaluator, bit-identical to [expr] *)
}

(** [compile scheme coeffs] prepares an evaluator.  Returns [None] when the
    scheme cannot handle the polynomial: Knuth adaptation is defined for
    degrees 4–6 only (RLibm never generates higher degrees; lower ones are
    cheap already) and requires the adapted coefficients to be finite. *)
val compile : scheme -> float array -> compiled option

(** [of_data scheme data] rebuilds a compiled evaluator from the [data]
    array of a previous compilation (e.g. loaded back from the persistent
    artifact store).  Unlike {!compile}, [data] holds the scheme's
    {e compiled} constants: for Knuth these are the already-adapted
    coefficients, which are installed directly instead of re-running the
    adaptation.  The rebuilt evaluator is bit-identical to the original.
    [None] when the data cannot belong to a valid compilation of the
    scheme (Knuth outside degrees 4–6, non-finite constants). *)
val of_data : scheme -> float array -> compiled option

val cost : compiled -> Expr.cost

(** {1 Direct evaluators} *)

val horner : float array -> float -> float
val horner_fma : float array -> float -> float
val estrin : float array -> float -> float
val estrin_fma : float array -> float -> float

(** [eval_knuth ~degree alphas x] evaluates the adapted forms of equations
    (3), (5) and (8) of the paper.  [degree] must be 4, 5 or 6 and
    [alphas] must have [degree + 1] entries. *)
val eval_knuth : degree:int -> float array -> float -> float

(** {1 Batch evaluators}

    The serving hot path.  [eval_into scheme data ~src ~dst ~lo ~hi]
    evaluates the scheme's polynomial — [data] is a
    {!compiled}[.data] array: dense coefficients, or Knuth's adapted
    constants — on [src.(i)] for every [i] in [\[lo, hi)], writing the
    results to [dst.(i)].  Each (scheme, length) pair gets its own loop
    with the coefficients hoisted into locals and a loop body that is the
    textually identical float expression of the corresponding scalar
    evaluator, so every result is bit-for-bit equal to
    [compiled.eval src.(i)] (enforced by the test suite) while the loop
    performs no per-element allocation, closure dispatch, or coefficient
    reload.  Lengths above 7 fall back to a generic path (never produced
    by generation, where degrees stop at 6).
    @raise Invalid_argument for [Knuth] data outside lengths 5–7. *)
val eval_into :
  scheme ->
  float array ->
  src:floatarray ->
  dst:floatarray ->
  lo:int ->
  hi:int ->
  unit

(** {1 Knuth coefficient adaptation} *)

(** [adapt_knuth coeffs] computes the adapted coefficients for a dense
    polynomial of degree 4, 5 or 6 (equations (4), (6)–(7), (9)–(12)).
    Degrees 5 and 6 solve a cubic with {!Cubic.real_root} in double
    precision, exactly as the paper's prototype does.  [None] when the
    degree is unsupported, the leading coefficient is zero, or the
    adaptation produces non-finite values. *)
val adapt_knuth : float array -> float array option

(** {1 Scheme DAGs} *)

(** [scheme_expr scheme ~degree] is the evaluation DAG; for [Knuth] the
    constants are the adapted coefficients, otherwise the dense ones.
    @raise Invalid_argument for [Knuth] with degree outside 4–6. *)
val scheme_expr : scheme -> degree:int -> Expr.t

(** Exact algebraic value computed by a compiled evaluator (no rounding);
    for Horner/Estrin variants this equals the dense polynomial. *)
val eval_exact : compiled -> Rat.t -> Rat.t
