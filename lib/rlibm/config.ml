(* Generation configuration: which input representation to cover, how many
   sub-domains, table size for the logarithmic range reduction, degree
   search bounds, and the limits of the generate/check/constrain loop. *)

type t = {
  tin : Softfp.fmt;  (** largest input representation to support *)
  extra_bits : int;
      (** extra precision bits of the round-to-odd target (paper: 2) *)
  pieces : int;  (** sub-domains of the reduced domain (piecewise polys) *)
  table_bits : int;  (** log-family reduction table size (2^table_bits) *)
  min_degree : int;
  max_degree : int;
  max_rounds : int;  (** bound N of Algorithm 2 *)
  max_specials : int;  (** give up when more inputs need special casing *)
}

(** Output format: same exponent range, [extra_bits] more precision, to be
    used with the round-to-odd mode (RLibm-All construction). *)
let tout cfg = Softfp.with_extra_prec cfg.tin cfg.extra_bits

(** The reduced-width "mini" universe used for exhaustive end-to-end runs:
    13-bit inputs with 5 exponent bits; the round-to-odd target has 15
    bits.  Every finite input (7936 of them) is enumerated, and results
    are correct for all representations of 7..13 bits and all five
    standard rounding modes. *)
let mini_tin = Softfp.make_fmt ~ebits:5 ~prec:8

let default_mini =
  {
    tin = mini_tin;
    extra_bits = 2;
    pieces = 1;
    table_bits = 4;
    min_degree = 2;
    max_degree = 6;
    max_rounds = 24;
    max_specials = 8;
  }

(** Per-function mini presets, from the registry.  Piece counts follow
    the shape of Table 1 (exp-family functions get extra pieces; the
    logarithms' table-based reduction already makes their reduced domain
    tiny), and the degree search starts where the family plausibly
    begins — the LP proves lower degrees infeasible anyway, at a cost. *)
let mini_for (f : Oracle.func) =
  let p = (Funcspec.get f).Funcspec.mini in
  { default_mini with pieces = p.Funcspec.pieces; min_degree = p.Funcspec.min_degree }

(** binary32 configuration (sampled generation; exhaustive float32
    enumeration is out of scope for this reproduction, see DESIGN.md).

    The exponential family needs many sub-domains at this scale: fp34
    rounding windows are ~2^-24 wide with arbitrarily thin one-sided
    clearance around the curve, so a single polynomial over the full
    reduced domain [0,1) cannot thread them — the artifact's exp2/exp/10^x
    range reductions use a 64-entry 2^(j/64) table for exactly this
    reason, and our sub-domain split is the equivalent mechanism. *)
let float32_for (f : Oracle.func) =
  let base =
    {
      tin = Softfp.binary32;
      extra_bits = 2;
      pieces = 1;
      table_bits = 7;
      min_degree = 4;
      max_degree = 6;
      max_rounds = 48;
      max_specials = 16;
    }
  in
  let p = (Funcspec.get f).Funcspec.float32 in
  { base with pieces = p.Funcspec.pieces; min_degree = p.Funcspec.min_degree }
