(* Range reduction and output compensation (performed in H = binary64),
   one family for the exponentials and one for the logarithms.

   The exponential family reduces through t = x * log2(base):

     base^x = 2^t = 2^n * 2^r,   n = floor(t),  r = t - n in [0, 1)

   and output-compensates by the exact double scaling v * 2^n.  The
   polynomial approximates 2^r on [0, 1).

   The logarithm family decomposes the input as x = 2^k * m with
   m in [1, 2), looks up F = 1 + j/2^J from the top J bits of m - 1, and
   reduces to r = (m - F)/F in [0, 2^-J):

     log_b(x) = k * log_b(2) + log_b(F) + log_b(1 + r)

   The polynomial approximates log_b(1 + r); output compensation is the
   double addition c + v with the per-input constant
   c = k * log_b 2 + T[j] (T[j] is the correctly rounded double of
   log_b(F), produced by the oracle).

   Numerical errors in either direction are harmless by construction: the
   constraints are attached to the *computed* reduced input, and the
   reduced intervals are validated against the *actual* double output
   compensation (Constraints.reduced_interval), mirroring CalculateL' of
   the RLibm papers. *)

type reduced = {
  r : float;  (** reduced input — the polynomial's argument *)
  piece : int;  (** sub-domain index in [0, pieces) *)
  oc : float -> float;  (** actual double output compensation *)
  oc_inv : Rat.t -> Rat.t;  (** exact inverse of the idealized oc *)
}

type params =
  | Exp_params of { log2_base : float }
  | Log_params of {
      table_bits : int;
      table : float array;
      k_scale : float;
      k_exact : bool;
    }

(* Caller-owned scratch for the allocation-free reduction.  The float
   slots live in their own all-float record: OCaml stores such records
   flat (unboxed fields), whereas a mutable float field in a mixed
   int/float record would be boxed on every assignment — exactly the
   per-element allocation the batch kernels exist to avoid.  The input
   is passed through [sx] rather than as a float argument for the same
   reason: without flambda, a float argument to a closure is boxed at
   the call boundary. *)
type scratch_floats = { mutable sx : float; mutable sr : float; mutable sc : float }
type scratch = { sf : scratch_floats; mutable spiece : int; mutable sn : int }

let scratch () =
  { sf = { sx = 0.0; sr = 0.0; sc = 0.0 }; spiece = 0; sn = 0 }

(* Constants a batch kernel needs to inline the analytic shortcut and the
   output compensation without calling the option-allocating closures.
   The log family needs no constants: its shortcut tests only the sign
   and its compensation is [sc +. v]. *)
type exp_consts = {
  ek_scale : float;  (* log2 base *)
  ek_hi_cut : float;  (* emax + 1.1: overflow threshold on t *)
  ek_lo_cut : float;  (* deep-underflow threshold on t *)
  ek_near_cut : float;  (* |t| below this (x <> 0): result hugs 1 *)
  ek_huge : float;
  ek_tiny : float;
  ek_above_one : float;
  ek_below_one : float;
}

type kernel = Exp_kernel of exp_consts | Log_kernel

type t = {
  func : Oracle.func;
  pieces : int;
  params : params;
  kernel : kernel;
  shortcut : float -> float option;
      (* analytic fast path (deep overflow/underflow, domain errors);
         [Some v] bypasses the polynomial entirely *)
  reduce : float -> reduced;
      (* valid on finite inputs for which [shortcut] returned [None] *)
  reduce_into : scratch -> unit;
      (* allocation-free variant: reads [sf.sx], writes [sf.sr],
         [spiece], and [sn] (exp) / [sf.sc] (log) *)
}

(* ---------- exponential family ---------- *)

(* [scale] is the family's log2_base from the registry: RN(log2 e),
   1.0 or RN(log2 10) for the paper's three exponentials. *)
let exp_family func ~scale ~out_fmt ~pieces =
  let emax = float_of_int (Softfp.emax out_fmt) in
  let emin = Softfp.emin out_fmt and prec = out_fmt.Softfp.prec in
  let lo_cut = float_of_int (emin - prec) -. 1.1 in
  let v_huge = Float.ldexp 1.0 (Softfp.emax out_fmt + 1) in
  let v_tiny = Float.ldexp 1.0 (emin - prec - 2) in
  (* Near 1: for 0 < |t| < 2^-(prec+3) the result lies strictly between 1
     and its neighbour in the target, so round-to-odd is that (odd)
     neighbour and any double strictly inside the gap is a correct return
     value.  The polynomial path cannot produce one once |t| drops below
     double precision (1 + c1*t rounds back to 1.0), so this is an
     analytic branch, exactly like the artifact's small-input paths. *)
  let near_cut = Float.ldexp 1.0 (-(prec + 3)) in
  (* Strictly inside (1, succ 1) / (pred 1, 1) of the target and strictly
     on the correct side of every narrower format's rounding midpoint
     (the nearest midpoints are 1 +/- 2^-(prec+1) for the full-width
     format itself). *)
  let v_above_one = 1.0 +. Float.ldexp 1.0 (-(prec + 1)) in
  let v_below_one = 1.0 -. Float.ldexp 1.0 (-(prec + 2)) in
  let shortcut x =
    let t = x *. scale in
    if t > emax +. 1.1 then Some v_huge
    else if t < lo_cut then Some v_tiny
    else if x <> 0.0 && Float.abs t < near_cut then
      Some (if x > 0.0 then v_above_one else v_below_one)
    else None
  in
  (* The hot-path body.  [reduce] below re-reads the results out of the
     scratch record, so the two entry points cannot drift: every float
     operation runs here, once. *)
  let reduce_into (s : scratch) =
    let x = s.sf.sx in
    let t = x *. scale in
    let n = Float.floor t in
    let r = t -. n in
    s.sf.sr <- r;
    s.sn <- int_of_float n;
    s.spiece <-
      Stdlib.min (pieces - 1) (int_of_float (r *. float_of_int pieces))
  in
  let reduce x =
    let s = scratch () in
    s.sf.sx <- x;
    reduce_into s;
    let n = s.sn in
    {
      r = s.sf.sr;
      piece = s.spiece;
      oc = (fun v -> Float.ldexp v n);
      oc_inv = (fun q -> Rat.mul_pow2 q (-n));
    }
  in
  let kernel =
    Exp_kernel
      {
        ek_scale = scale;
        ek_hi_cut = emax +. 1.1;
        ek_lo_cut = lo_cut;
        ek_near_cut = near_cut;
        ek_huge = v_huge;
        ek_tiny = v_tiny;
        ek_above_one = v_above_one;
        ek_below_one = v_below_one;
      }
  in
  {
    func;
    pieces;
    params = Exp_params { log2_base = scale };
    kernel;
    shortcut;
    reduce;
    reduce_into;
  }

(* ---------- logarithm family ---------- *)

(* T[j] = correctly rounded double of log_b(1 + j/2^J), from the oracle.
   Memoized in-process and persisted through the artifact store: the
   table is the one remaining oracle product a warm pipeline run would
   otherwise have to recompute just to rebuild the reduction closures. *)
let table_cache : (string * int, float array) Hashtbl.t = Hashtbl.create 8

(* Pre-seed the in-process table memo — the servable-snapshot layer
   carries the tables inside its artifact so a snapshot load never has
   to touch the table store (or, worse, the oracle) to rebuild the
   reduction closures.  Mis-sized tables are rejected: the memo must
   only ever hold tables the keyed computation would produce. *)
let install_table func ~table_bits table =
  if Array.length table <> 1 lsl table_bits then
    invalid_arg "Reduction.install_table: wrong table size";
  Hashtbl.replace table_cache (Oracle.name func, table_bits) table

let log_table func ~table_bits =
  let key = (Oracle.name func, table_bits) in
  match Hashtbl.find_opt table_cache key with
  | Some t -> t
  | None ->
      let store_key =
        Printf.sprintf "logtab-%s-J%d-v1" (Oracle.name func) table_bits
      in
      let t =
        match
          (Cache.load ~kind:"table" ~key:store_key
            : (float array option, Diag.Error.t) result)
        with
        | Ok (Some t) when Array.length t = 1 lsl table_bits -> t
        | _ ->
            (* Miss, corrupt (already quarantined), unreadable, or
               mis-sized: regenerate — the table is cheap relative to
               the stages that consume it. *)
            let n = 1 lsl table_bits in
            let t =
              Array.init n (fun j ->
                  if j = 0 then 0.0
                  else
                    Oracle.float64 func
                      (1.0 +. (float_of_int j /. float_of_int n)))
            in
            ignore (Cache.store ~kind:"table" ~key:store_key t);
            t
      in
      Hashtbl.replace table_cache key t;
      t

(* [k_scale] / [k_exact] come from the registry: the per-exponent
   constant log_b 2 and whether [k * k_scale] is exact (log2). *)
let log_family func ~k_scale ~k_exact ~pieces ~table_bits =
  let tbl = log_table func ~table_bits in
  let tsize = float_of_int (1 lsl table_bits) in
  let shortcut x =
    if x = 0.0 then Some Float.neg_infinity
    else if x < 0.0 then Some Float.nan
    else None
  in
  (* Hot-path body.  [Float.frexp] allocates a tuple per call, so the
     decomposition x = 2^k * m, m in [1, 2), is done on the bits: force
     the exponent field to 0 (biased 1023) and read k from the original
     field.  This is exact — the mantissa is untouched — hence
     bit-identical to the frexp route.  Double subnormals (possible only
     for formats with a wider exponent range than binary64's normals)
     are renormalized first by an exact 2^54 scale. *)
  let reduce_into (s : scratch) =
    let x0 = s.sf.sx in
    let scaled = x0 < 0x1p-1022 in
    let x = if scaled then x0 *. 0x1p54 else x0 in
    let bits = Int64.bits_of_float x in
    let e = Int64.to_int (Int64.shift_right_logical bits 52) land 0x7FF in
    let m =
      Int64.float_of_bits
        (Int64.logor
           (Int64.logand bits 0xF_FFFF_FFFF_FFFFL)
           0x3FF0_0000_0000_0000L)
    in
    let k = e - 1023 - if scaled then 54 else 0 in
    let j = int_of_float ((m -. 1.0) *. tsize) in
    let f = 1.0 +. (float_of_int j /. tsize) in
    let r = (m -. f) /. f in
    let kf = float_of_int k in
    s.sf.sr <- r;
    s.sf.sc <- (if k_exact then kf +. tbl.(j) else Float.fma kf k_scale tbl.(j));
    s.spiece <-
      Stdlib.min (pieces - 1)
        (int_of_float (r *. tsize *. float_of_int pieces))
  in
  let reduce x =
    let s = scratch () in
    s.sf.sx <- x;
    reduce_into s;
    let c = s.sf.sc in
    {
      r = s.sf.sr;
      piece = s.spiece;
      oc = (fun v -> c +. v);
      oc_inv = (fun q -> Rat.sub q (Rat.of_float c));
    }
  in
  let params = Log_params { table_bits; table = tbl; k_scale; k_exact } in
  { func; pieces; params; kernel = Log_kernel; shortcut; reduce; reduce_into }

let make func ~out_fmt ~pieces ~table_bits =
  match (Funcspec.get func).Funcspec.family with
  | Funcspec.Exp_family { log2_base } ->
      exp_family func ~scale:log2_base ~out_fmt ~pieces
  | Funcspec.Log_family { k_scale; k_exact } ->
      log_family func ~k_scale ~k_exact ~pieces ~table_bits
