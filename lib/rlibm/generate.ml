(* Algorithm 2 of the paper: the generate / adapt / validate / constrain
   loop, with the fast polynomial evaluation integrated *inside* the
   generation process.

   Per piece:

     1. solve the LP over the current (possibly shrunken) reduced
        intervals (RlibmLPSolve);
     2. round the exact rational coefficients to doubles and compile them
        for the requested evaluation scheme — for Knuth this performs the
        coefficient adaptation (AdaptCoeffsOrParallelFMA);
     3. evaluate the compiled scheme in real double arithmetic on every
        reduced input and compare against the reduced intervals;
     4. shrink the violated bound of each failing constraint by one double
        ulp (ConstrainInterval) and repeat; constraints whose interval
        empties become special-case inputs.

   The driver escalates the polynomial degree when a piece cannot be
   satisfied within the round/special budgets. *)

type piece_outcome =
  | Done of { compiled : Polyeval.compiled; specials : int64 list; rounds : int }
  | Scheme_na  (* the scheme cannot express this degree (Knuth outside 4-6) *)
  | Unsat of { lp_infeasible : bool }
      (* [lp_infeasible]: the LP rejected the *original* intervals (round
         1, nothing shrunk yet) — a hard fact about this degree, as
         opposed to the round/special budget running out. *)

let copy_points pts =
  Array.map
    (fun (p : Constraints.point) -> { p with Constraints.xs = p.xs })
    pts

(* Solve one piece at a fixed degree.

   Validation always runs against the *original* rounding intervals — the
   true requirement.  The shrunken copies only exist to pressure the LP
   into different vertices (ConstrainInterval).  A point whose working
   interval empties stops constraining the LP ("retires"), but candidates
   are still validated against its original interval, so a lucky candidate
   can rescue it from special-casing.

   Across rounds we remember the candidate violating the fewest *inputs*
   (not reduced points): when the round budget runs out, that candidate
   ships and its violated inputs become the special cases — this is how
   the artifact's generator "searches for a polynomial with the minimum
   number of special inputs". *)
let solve_piece ?(log = fun _ -> ()) ~scheme ~degree ~max_rounds ~max_specials
    (points : Constraints.point array) =
  let n = Array.length points in
  let pts = copy_points points in
  let orig_lo = Array.map (fun (p : Constraints.point) -> p.lo) points in
  let orig_hi = Array.map (fun (p : Constraints.point) -> p.hi) points in
  (* Degenerate constraints (exactly representable results) cannot shrink;
     they stay in the LP and, when violated by the double evaluation, drive
     the neighbour perturbation below. *)
  let degenerate = Array.init n (fun i -> orig_lo.(i) = orig_hi.(i)) in
  let active = Array.make n true in
  (* [points] arrive sorted by reduced input, so neighbours are adjacent. *)
  let powers = Array.init (degree + 1) Fun.id in
  let inputs_of idxs =
    List.concat_map (fun i -> pts.(i).Constraints.xs) idxs
  in
  (* Warm-start bookkeeping: the LP reports working-set positions within
     the array it was handed; convert to and from global indices. *)
  let warm_global = ref [] in
  let best = ref None (* (violated-input count, compiled, violated idxs) *) in
  let stagnant = ref 0 in
  let na_rounds = ref 0 in
  (* Deterministic tilt source: vertex walking must be reproducible. *)
  let rng = Random.State.make [| 0x51bb; degree; n |] in
  let random_tilt () =
    let t =
      Array.init (degree + 1) (fun _ ->
          Rat.mul_pow2 (Rat.of_int (Random.State.int rng 65537 - 32768)) (-56))
    in
    (* Knuth's adaptation divides by the leading coefficient, so a vertex
       with a tiny one (common when a lower degree would already suffice)
       is numerically useless; bias the walk toward larger |c_d|. *)
    if scheme = Polyeval.Knuth then t.(degree) <- Rat.of_ints 1 64;
    t
  in
  (* Validate a compiled candidate against the original intervals: the
     per-round sweep over every reduced point, fanned out across the
     domain pool.  Only immutable data is touched ([r] and the original
     interval arrays — never the working [lo]/[hi] fields, which the
     driver mutates between sweeps), and the violated list is collected
     in ascending index order, so the result is identical at any job
     count.  Small pieces skip the fan-out: a sweep below ~2k points is
     cheaper than the queue round-trip. *)
  let validate (compiled : Polyeval.compiled) =
    let ok =
      Parallel.init ~min:2048 n (fun i ->
          let v = compiled.Polyeval.eval pts.(i).Constraints.r in
          orig_lo.(i) <= v && v <= orig_hi.(i))
    in
    let violated = ref [] in
    for i = n - 1 downto 0 do
      if not ok.(i) then violated := i :: !violated
    done;
    !violated
  in
  (* Ulp-level local search around an LP candidate: the LP fixes the
     rational feasible region, but whether the *double* evaluation of the
     compiled scheme lands inside every interval depends on last-ulp
     effects the LP cannot see.  Dithering each coefficient by a few ulps
     and re-validating (microseconds per trial) explores that space far
     faster than re-solving the LP — it is this reproduction's analogue of
     the artifact generator's hours-long search for a polynomial with the
     minimum number of special-case inputs. *)
  let dither coeffs0 seed_best =
    let best_local = ref seed_best in
    let coeffs = Array.copy coeffs0 in
    let trials = 400 in
    (try
       for _ = 1 to trials do
         Array.blit coeffs0 0 coeffs 0 (Array.length coeffs0);
         let k = 1 + Random.State.int rng (Array.length coeffs - 1) in
         for _ = 1 to k do
           let j = Random.State.int rng (Array.length coeffs) in
           let steps = 1 + Random.State.int rng 3 in
           let c = ref coeffs.(j) in
           for _ = 1 to steps do
             c := if Random.State.bool rng then Float.succ !c else Float.pred !c
           done;
           coeffs.(j) <- !c
         done;
         match Polyeval.compile scheme coeffs with
         | None -> ()
         | Some cand ->
             let violated = validate cand in
             let nv = List.length (inputs_of violated) in
             (match !best_local with
             | Some (bn, _, _) when bn <= nv -> ()
             | _ -> best_local := Some (nv, cand, violated));
             if nv = 0 then raise Exit
       done
     with Exit -> ());
    !best_local
  in
  let rec loop round =
    let finish ?(lp_infeasible = false) () =
      match !best with
      | Some (nv, compiled, violated) when nv <= max_specials ->
          Done { compiled; specials = inputs_of violated; rounds = round }
      | _ -> Unsat { lp_infeasible }
    in
    if round > max_rounds || !stagnant > 6 then finish ()
    else begin
      let act_idx =
        Array.of_list
          (List.filter (fun i -> active.(i)) (List.init n Fun.id))
      in
      let lp_points =
        Array.map
          (fun i ->
            let p = pts.(i) in
            { Lp.x = Rat.of_float p.Constraints.r;
              lo = Rat.of_float p.Constraints.lo;
              hi = Rat.of_float p.Constraints.hi })
          act_idx
      in
      let pos_of_global = Hashtbl.create 64 in
      Array.iteri (fun pos g -> Hashtbl.replace pos_of_global g pos) act_idx;
      let initial_working =
        List.filter_map (fun g -> Hashtbl.find_opt pos_of_global g) !warm_global
      in
      let tilt = if round = 1 then None else Some (random_tilt ()) in
      match
        Lp.solve_interval_system ~initial_working ?tilt ~mono_bits:64 ~powers
          lp_points
      with
      | Lp.Unsat ->
          log
            (Printf.sprintf "degree %d: LP infeasible at round %d" degree round);
          finish ~lp_infeasible:(round = 1) ()
      | Lp.Sat (coeffs_rat, working) -> (
          warm_global := List.map (fun pos -> act_idx.(pos)) working;
          let coeffs = Array.map Rat.to_float coeffs_rat in
          match Polyeval.compile scheme coeffs with
          | None ->
              (* The scheme rejected these coefficients (e.g. Knuth with a
                 ~zero leading coefficient).  The tilt biases later rounds
                 toward usable vertices, so keep iterating for a while
                 before declaring the scheme inapplicable. *)
              incr na_rounds;
              if !na_rounds > 6 || (scheme = Polyeval.Knuth && (degree < 4 || degree > 6))
              then Scheme_na
              else loop (round + 1)
          | Some compiled -> (
              na_rounds := 0;
              (* Validate the actual double evaluation against the
                 original intervals, then dither around the candidate. *)
              let violated0 = validate compiled in
              let nv0 = List.length (inputs_of violated0) in
              match
                if nv0 = 0 then Some (0, compiled, [])
                else dither coeffs (Some (nv0, compiled, violated0))
              with
              | None -> assert false
              | Some (n_viol, compiled, violated) ->
              let violated = ref violated in
              (match !best with
              | Some (nv, _, _) when nv <= n_viol -> incr stagnant
              | _ ->
                  stagnant := 0;
                  best := Some (n_viol, compiled, !violated));
              if n_viol = 0 then Done { compiled; specials = []; rounds = round }
              else begin
                (* ConstrainInterval: shrink the violated side of the
                   *working* interval by one ulp of H.  Degenerate and
                   retired points cannot shrink themselves; instead we
                   shrink their nearest active neighbours in the direction
                   that pushes the polynomial toward the missed target, so
                   the LP keeps producing *different* candidates — this is
                   the cheap analogue of the artifact generator's long
                   search for a polynomial with minimal special cases. *)
                let shrink_toward i up =
                  (* Returns true if it actually shrank. *)
                  let p = pts.(i) in
                  if
                    active.(i)
                    && (not degenerate.(i))
                    && Float.succ p.Constraints.lo < p.Constraints.hi
                  then begin
                    if up then p.Constraints.lo <- Float.succ p.Constraints.lo
                    else p.Constraints.hi <- Float.pred p.Constraints.hi;
                    true
                  end
                  else false
                in
                let nudge_neighbours i up =
                  (* Walk outward from i over the (r-sorted) points. *)
                  let shrunk = ref 0 in
                  let radius = ref 1 in
                  while !shrunk < 4 && !radius < n do
                    if i - !radius >= 0 && shrink_toward (i - !radius) up then
                      incr shrunk;
                    if i + !radius < n && shrink_toward (i + !radius) up then
                      incr shrunk;
                    incr radius
                  done
                in
                List.iter
                  (fun i ->
                    let p = pts.(i) in
                    let v = compiled.Polyeval.eval p.Constraints.r in
                    let up = Float.is_nan v || v < orig_lo.(i) in
                    if active.(i) && not degenerate.(i) then begin
                      if up then
                        p.Constraints.lo <- Float.succ p.Constraints.lo
                      else p.Constraints.hi <- Float.pred p.Constraints.hi;
                      if p.Constraints.lo > p.Constraints.hi then
                        active.(i) <- false
                    end
                    else nudge_neighbours i up)
                  !violated;
                log
                  (Printf.sprintf "degree %d round %d: %d violated inputs"
                     degree round n_viol);
                loop (round + 1)
              end))
    end
  in
  loop 1

type generated = {
  cfg : Config.t;
  family : Reduction.t;
  scheme : Polyeval.scheme;
  pieces : Polyeval.compiled array;
  specials : (int64, float) Hashtbl.t;  (* input bits -> double result *)
  spec_keys : int array;  (* the same specials, sorted by bit pattern… *)
  spec_vals : float array;  (* …for the binary-search hot path *)
  oracle : (int64, int64) Hashtbl.t;  (* input bits -> round-to-odd bits *)
  degrees : int array;  (* per piece *)
  rounds : int array;  (* per piece *)
  n_constraints : int array;  (* per piece *)
}

let n_specials g = Hashtbl.length g.specials

(* Closure-free product of the LP/adapt/validate/constrain loop: what the
   staged pipeline persists for the polynomial stage.  [sv_data] holds
   each piece's *compiled* constants (Polyeval.compiled.data — adapted
   ones for Knuth); Polyeval.of_data rebuilds bit-identical evaluators. *)
type solved = {
  sv_data : float array array;  (* per piece *)
  sv_degrees : int array;
  sv_rounds : int array;
  sv_n_constraints : int array;
  sv_specials : (int64 * float) list;  (* in discovery order *)
}

(* Pure stage body: solve every piece over an already-built constraint
   set.  All randomness (vertex tilt, dither) is seeded per piece and
   degree, so the result is a deterministic function of the inputs. *)
let solve ?(log = fun _ -> ()) ~(cfg : Config.t) ~scheme ~func
    ~(built : Constraints.build_result) () =
  let tin = cfg.tin and tout = Config.tout cfg in
  let decoded_result x =
    (* The oracle table normally covers every special input; recompute on
       a miss (same value) so a partially resumed table stays safe. *)
    let y =
      match Hashtbl.find_opt built.oracle x with
      | Some y -> y
      | None ->
          Oracle.correctly_round func (Softfp.to_rat tin x) ~fmt:tout
            ~mode:Softfp.RTO
    in
    Softfp.to_float tout y
  in
  let pieces = Array.length built.points in
  let data = Array.make pieces [||] in
  let degrees = Array.make pieces 0 in
  let rounds = Array.make pieces 0 in
  let n_constraints = Array.map Array.length built.points in
  let specials = ref (List.rev built.immediate_specials) in
  let failure = ref None in
  for pi = 0 to pieces - 1 do
    if !failure = None then begin
      let pts = built.points.(pi) in
      if Array.length pts = 0 then begin
        (match Polyeval.compile scheme [| 0.0 |] with
        | Some c -> data.(pi) <- c.Polyeval.data
        | None -> data.(pi) <- [| 0.0 |]);
        degrees.(pi) <- 0
      end
      else begin
        (* Degree escalation; Knuth only exists for 4-6, so start there. *)
        let d0 =
          match scheme with
          | Polyeval.Knuth -> Stdlib.max cfg.min_degree 4
          | _ -> cfg.min_degree
        in
        let rec try_degree ~last_lp d =
          if d > cfg.max_degree then
            failure :=
              Some
                (if last_lp then
                   Diag.Error.Lp_infeasible
                     {
                       func = Oracle.name func;
                       scheme = Polyeval.scheme_name scheme;
                       piece = pi;
                       degree = cfg.max_degree;
                     }
                 else
                   Diag.Error.Budget_exhausted
                     {
                       func = Oracle.name func;
                       scheme = Polyeval.scheme_name scheme;
                       piece = pi;
                       max_degree = cfg.max_degree;
                     })
          else begin
            log
              (Printf.sprintf "%s/%s piece %d: trying degree %d (%d constraints)"
                 (Oracle.name func) (Polyeval.scheme_name scheme) pi d
                 (Array.length pts));
            match
              solve_piece ~log ~scheme ~degree:d ~max_rounds:cfg.max_rounds
                ~max_specials:cfg.max_specials pts
            with
            | Done { compiled = c; specials = sp; rounds = r } ->
                data.(pi) <- c.Polyeval.data;
                degrees.(pi) <- d;
                rounds.(pi) <- r;
                List.iter
                  (fun x -> specials := (x, decoded_result x) :: !specials)
                  sp
            | Scheme_na -> try_degree ~last_lp:false (d + 1)
            | Unsat { lp_infeasible } -> try_degree ~last_lp:lp_infeasible (d + 1)
          end
        in
        try_degree ~last_lp:false d0
      end
    end
  done;
  match !failure with
  | Some err -> Error err
  | None ->
      Ok
        {
          sv_data = data;
          sv_degrees = degrees;
          sv_rounds = rounds;
          sv_n_constraints = n_constraints;
          sv_specials = List.rev !specials;
        }

(* Rebuild the runnable implementation from the closure-free artifact:
   recompile each piece's constants, rebuild the range reduction, and
   re-attach the shared oracle table. *)
let assemble ~(cfg : Config.t) ~scheme ~func
    ~(oracle : (int64, int64) Hashtbl.t) (sv : solved) =
  let tout = Config.tout cfg in
  let family =
    Reduction.make func ~out_fmt:tout ~pieces:cfg.pieces
      ~table_bits:cfg.table_bits
  in
  let pieces =
    Array.map
      (fun d ->
        match Polyeval.of_data scheme d with
        | Some c -> c
        | None ->
            invalid_arg
              (Printf.sprintf "Generate.assemble: stale %s piece data"
                 (Polyeval.scheme_name scheme)))
      sv.sv_data
  in
  let specials = Hashtbl.create 16 in
  List.iter (fun (x, v) -> Hashtbl.replace specials x v) sv.sv_specials;
  (* Sorted-array mirror of the special table, probed by binary search on
     the hot path (Genlibm.eval_bits and the batch kernels) instead of a
     per-call Hashtbl.find_opt that allocates an option.  Patterns occupy
     the low <= 63 bits of the int64 (a Softfp.make_fmt invariant), so a
     native-int key array gives unboxed comparisons.  Built from the
     table, not the discovery-order list, so duplicate discoveries
     collapse exactly as the Hashtbl replace semantics dictate. *)
  let spec_pairs =
    Hashtbl.fold (fun x v acc -> (Int64.to_int x, v) :: acc) specials []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
    |> Array.of_list
  in
  let spec_keys = Array.map fst spec_pairs in
  let spec_vals = Array.map snd spec_pairs in
  {
    cfg;
    family;
    scheme;
    pieces;
    specials;
    spec_keys;
    spec_vals;
    oracle;
    degrees = sv.sv_degrees;
    rounds = sv.sv_rounds;
    n_constraints = sv.sv_n_constraints;
  }

let run ?log ~(cfg : Config.t) ~scheme ~func ~(inputs : int64 array) () =
  let tout = Config.tout cfg in
  let family =
    Reduction.make func ~out_fmt:tout ~pieces:cfg.pieces
      ~table_bits:cfg.table_bits
  in
  let built = Constraints.build ~cfg ~family ~inputs in
  match solve ?log ~cfg ~scheme ~func ~built () with
  | Error _ as e -> e
  | Ok sv -> Ok (assemble ~cfg ~scheme ~func ~oracle:built.oracle sv)
