(** Range reduction and output compensation in H = binary64 (§2).

    Two families cover the paper's six functions:

    - exponentials: [base^x = 2^(n + r)] with [n = floor(x * log2 base)]
      and [r] in [[0, 1)]; output compensation is the exact double scaling
      [v * 2^n];
    - logarithms: [x = 2^k * m], [m] in [[1, 2)], table lookup
      [F = 1 + j/2^J] from the top [J] bits of [m - 1], reduced input
      [r = (m - F)/F] in [[0, 2^-J)]; output compensation is the double
      addition [c + v] with [c = k * log_b 2 + T[j]] ([T[j]] the correctly
      rounded double of [log_b F], obtained from the oracle).

    Numerical error anywhere in this file is harmless by construction:
    constraints attach to the {e computed} reduced input, and reduced
    intervals are validated against the {e actual} double output
    compensation (see {!Constraints.reduced_interval}). *)

type reduced = {
  r : float;  (** reduced input — the polynomial's argument *)
  piece : int;  (** sub-domain index in [[0, pieces)] *)
  oc : float -> float;  (** actual double output compensation *)
  oc_inv : Rat.t -> Rat.t;  (** exact inverse of the idealized oc *)
}

(** Everything a code generator needs to re-emit the reduction. *)
type params =
  | Exp_params of { log2_base : float }
      (** t = x * log2_base; n = floor t; r = t - n; result = p(r) * 2^n *)
  | Log_params of {
      table_bits : int;
      table : float array;  (** T[j] = round(log_b(1 + j/2^J)) *)
      k_scale : float;  (** log_b 2: the per-exponent constant *)
      k_exact : bool;  (** true for log2, where k * k_scale is exact *)
    }

(** Caller-owned scratch for {!t.reduce_into}.  The float slots live in a
    nested all-float record so they stay unboxed under mutation (a
    mutable float field of a mixed record would be boxed on every
    assignment); the input is passed through [sf.sx] instead of as a
    float argument so no call-boundary boxing occurs either.  Allocate
    one per chunk with {!scratch} and reuse it for every element. *)
type scratch_floats = {
  mutable sx : float;  (** in: the input *)
  mutable sr : float;  (** out: reduced input *)
  mutable sc : float;  (** out (log family): output-compensation addend *)
}

type scratch = {
  sf : scratch_floats;
  mutable spiece : int;  (** out: sub-domain index *)
  mutable sn : int;  (** out (exp family): output-compensation exponent *)
}

val scratch : unit -> scratch

(** Constants a batch kernel needs to inline the analytic shortcut and
    the output compensation of the exponential family without going
    through the option-allocating {!t.shortcut} closure. *)
type exp_consts = {
  ek_scale : float;  (** log2 of the base: t = x * ek_scale *)
  ek_hi_cut : float;  (** t above this overflows: return [ek_huge] *)
  ek_lo_cut : float;  (** t below this underflows: return [ek_tiny] *)
  ek_near_cut : float;
      (** 0 < |t| below this: return [ek_above_one] / [ek_below_one] *)
  ek_huge : float;
  ek_tiny : float;
  ek_above_one : float;
  ek_below_one : float;
}

(** Family tag for batch kernels.  [Log_kernel] carries nothing: the log
    shortcut tests only [x <= 0.0] and its compensation is
    [scratch.sf.sc +. v]. *)
type kernel = Exp_kernel of exp_consts | Log_kernel

type t = {
  func : Oracle.func;
  pieces : int;
  params : params;
  kernel : kernel;  (** inlinable form of [shortcut] + compensation *)
  shortcut : float -> float option;
      (** analytic fast path: deep overflow/underflow for the
          exponentials, domain errors for the logarithms; [Some v]
          bypasses the polynomial entirely, and [v] rounds correctly in
          every representation and mode *)
  reduce : float -> reduced;
      (** defined on finite doubles for which [shortcut] returns [None] *)
  reduce_into : scratch -> unit;
      (** allocation-free [reduce]: reads the input from [sf.sx] and
          writes [sf.sr] and [spiece], plus [sn] (exp family) or [sf.sc]
          (log family).  [reduce] is a thin wrapper around this body, so
          the two entry points are bit-identical by construction. *)
}

(** [make func ~out_fmt ~pieces ~table_bits] builds the reduction family
    for [func], dispatching on the {!Funcspec} registry's family record;
    [out_fmt] fixes the overflow/underflow thresholds of the shortcut,
    [table_bits] the logarithm table size [J]. *)
val make :
  Oracle.func -> out_fmt:Softfp.fmt -> pieces:int -> table_bits:int -> t

(** [install_table func ~table_bits table] pre-seeds the in-process
    memo of the logarithm reduction table, so {!make} rebuilds the
    reduction without touching the table store or the oracle — the
    servable-snapshot layer ships tables inside its artifact and
    installs them before assembling.
    @raise Invalid_argument when [table] is not [2^table_bits] long. *)
val install_table : Oracle.func -> table_bits:int -> float array -> unit
