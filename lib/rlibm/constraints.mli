(** Constraint construction: CalcRndIntervals, CalcRedIntervals and
    CombineRedIntervals of the RLibm pipeline.

    Every covered input contributes the rounding interval of its
    round-to-odd oracle result, pulled back through the inverse output
    compensation and repaired against the actual double OC; constraints
    that share a reduced input are intersected (CalculatePhi).  Oracle
    results are memoized in-process and persisted through the hardened
    {!Cache} store (default ./.oracle-cache; relocate with
    RLIBM_CACHE_DIR, disable with RLIBM_NO_DISK_CACHE) since they are
    shared by all four evaluation schemes.  Corrupt or stale entries are
    detected, quarantined and regenerated — they never flow into rounding
    intervals. *)

type point = {
  r : float;  (** reduced input *)
  piece : int;
  mutable lo : float;  (** current reduced interval (mutated by the
                           generation loop's ConstrainInterval) *)
  mutable hi : float;
  mutable xs : int64 list;  (** input patterns merged into this point *)
}

type build_result = {
  points : point array array;
      (** per piece, sorted by reduced input; intervals are nonempty *)
  immediate_specials : (int64 * float) list;
      (** inputs whose constraint could not be expressed (empty reduced
          interval or empty intersection); the stored double is the
          decoded oracle result, which always lies in the rounding
          interval *)
  oracle : (int64, int64) Hashtbl.t;
      (** input bits -> round-to-odd result bits, for every non-shortcut
          input *)
}

(** [reduced_interval red iv] pulls [iv] back through [red]'s output
    compensation: exact rational inverse first, then the
    AdjHigher/AdjLower fix-up loop of CalculateL' against the actual
    double OC.  [None] when no double reduced value maps inside [iv]. *)
val reduced_interval :
  Reduction.reduced -> Intervals.t -> (float * float) option

(** [build ~cfg ~family ~inputs] assembles the merged constraint set for
    the given input patterns (finite ones; others are ignored).

    The per-input oracle evaluations and interval pull-backs fan out
    across the {!Parallel} pool; the CalculatePhi merge runs on the
    driver in input order, so the result is bit-identical for every job
    count.  [build] is the composition of the three stage bodies below;
    the staged pipeline (lib/pipeline) calls them separately so each
    product persists and resumes on its own. *)
val build :
  cfg:Config.t ->
  family:Reduction.t ->
  inputs:int64 array ->
  build_result

(** {1 Stage bodies}

    Pure computations (no disk I/O beyond the shared oracle memo the
    caller hands in) with the same determinism contract as [build]. *)

(** [oracle_range ~cfg ~family ~inputs ~lo ~hi ~known] computes the
    round-to-odd result of every finite, non-shortcut input of
    [inputs.(lo .. hi-1)] for which [known] is [false], as
    [(input, result)] pairs in input order (parallel fan-out,
    driver-ordered assembly).  [known] is a coverage predicate — pass
    [Hashtbl.mem table] to skip entries a shared table already holds, or
    [fun _ -> false] for the pure form whose output depends only on
    [(func, tin, tout, lo, hi)]; the latter is what the staged
    pipeline's content-keyed oracle {e shards} persist. *)
val oracle_range :
  cfg:Config.t ->
  family:Reduction.t ->
  inputs:int64 array ->
  lo:int ->
  hi:int ->
  known:(int64 -> bool) ->
  (int64 * int64) array

(** [ensure_oracle ~cfg ~family ~inputs ~oracle] fills [oracle] with the
    round-to-odd result of every finite, non-shortcut input that is not
    already present ({!oracle_range} over the whole input set with
    [known = Hashtbl.mem oracle], installed on the driver in input
    order).  Returns the number of entries computed; [0] means the table
    already covered the inputs. *)
val ensure_oracle :
  cfg:Config.t ->
  family:Reduction.t ->
  inputs:int64 array ->
  oracle:(int64, int64) Hashtbl.t ->
  int

(** One covered input's rounding interval (CalcRndIntervals): the oracle
    round-to-odd bits and the interval they induce in H = binary64. *)
type rounding_interval = {
  ri_x : int64;  (** input bits *)
  ri_y : int64;  (** oracle round-to-odd result bits *)
  ri_lo : float;
  ri_hi : float;
}

(** [rounding_intervals ~cfg ~family ~inputs ~oracle] lists, in input
    order, the rounding interval of every finite non-shortcut input.
    Depends only on (func, tin, tout) — never on the piece split or the
    reduction table — which is what makes it a separately keyable
    artifact.  Missing oracle entries are recomputed on the fly (same
    value), so a partially resumed table is safe. *)
val rounding_intervals :
  cfg:Config.t ->
  family:Reduction.t ->
  inputs:int64 array ->
  oracle:(int64, int64) Hashtbl.t ->
  rounding_interval array

(** [combine ~cfg ~family ~rivals] pulls every rounding interval back
    through the inverse output compensation (parallel) and runs the
    CalculatePhi merge (driver, entry order): CalcRedIntervals +
    CombineRedIntervals.  Returns the per-piece sorted points and the
    immediate specials, i.e. [build_result] minus the oracle table. *)
val combine :
  cfg:Config.t ->
  family:Reduction.t ->
  rivals:rounding_interval array ->
  point array array * (int64 * float) list

(** Drop every in-process memoized oracle table (the on-disk cache is
    untouched).  For tests that need to re-pay the oracle computation —
    e.g. the [-j 1] vs [-j N] determinism check. *)
val clear_memory_cache : unit -> unit

(** The shared oracle table for [(func, tin, tout)]: the in-process memo
    if present, else loaded from the persistent store, else fresh and
    empty.  The same physical table is returned for the same triple, so
    entries accumulate across builds of different schemes. *)
val oracle_table :
  func:Oracle.func ->
  tin:Softfp.fmt ->
  tout:Softfp.fmt ->
  (int64, int64) Hashtbl.t

(** Publish the memoized oracle table of [(func, tin, tout)] through the
    persistent store ([Ok ()] if the triple was never materialized).
    [Error (Store_io _)] when the publish failed — callers that exist to
    fill the store must propagate it instead of ignoring. *)
val persist_oracle_table :
  func:Oracle.func ->
  tin:Softfp.fmt ->
  tout:Softfp.fmt ->
  (unit, Diag.Error.t) result

(** The collision-free persistent-store key of the oracle table for
    [(func, tin, tout)]: covers both formats' exponent width {e and}
    precision plus the table's layout version, so formats with equal
    precision but different exponent ranges never share an entry, and a
    layout bump orphans (never trusts) older entries.  Pair with
    {!Cache.path_of_key} to locate the file — used by the cache-poisoning
    tests and tools/check.sh. *)
val oracle_cache_key :
  func:Oracle.func -> tin:Softfp.fmt -> tout:Softfp.fmt -> string
