(** Constraint construction: CalcRndIntervals, CalcRedIntervals and
    CombineRedIntervals of the RLibm pipeline.

    Every covered input contributes the rounding interval of its
    round-to-odd oracle result, pulled back through the inverse output
    compensation and repaired against the actual double OC; constraints
    that share a reduced input are intersected (CalculatePhi).  Oracle
    results are memoized in-process and persisted through the hardened
    {!Cache} store (default ./.oracle-cache; relocate with
    RLIBM_CACHE_DIR, disable with RLIBM_NO_DISK_CACHE) since they are
    shared by all four evaluation schemes.  Corrupt or stale entries are
    detected, quarantined and regenerated — they never flow into rounding
    intervals. *)

type point = {
  r : float;  (** reduced input *)
  piece : int;
  mutable lo : float;  (** current reduced interval (mutated by the
                           generation loop's ConstrainInterval) *)
  mutable hi : float;
  mutable xs : int64 list;  (** input patterns merged into this point *)
}

type build_result = {
  points : point array array;
      (** per piece, sorted by reduced input; intervals are nonempty *)
  immediate_specials : (int64 * float) list;
      (** inputs whose constraint could not be expressed (empty reduced
          interval or empty intersection); the stored double is the
          decoded oracle result, which always lies in the rounding
          interval *)
  oracle : (int64, int64) Hashtbl.t;
      (** input bits -> round-to-odd result bits, for every non-shortcut
          input *)
}

(** [reduced_interval red iv] pulls [iv] back through [red]'s output
    compensation: exact rational inverse first, then the
    AdjHigher/AdjLower fix-up loop of CalculateL' against the actual
    double OC.  [None] when no double reduced value maps inside [iv]. *)
val reduced_interval :
  Reduction.reduced -> Intervals.t -> (float * float) option

(** [build ~cfg ~family ~inputs] assembles the merged constraint set for
    the given input patterns (finite ones; others are ignored).

    The per-input oracle evaluations and interval pull-backs fan out
    across the {!Parallel} pool; the CalculatePhi merge runs on the
    driver in input order, so the result is bit-identical for every job
    count. *)
val build :
  cfg:Config.t ->
  family:Reduction.t ->
  inputs:int64 array ->
  build_result

(** Drop every in-process memoized oracle table (the on-disk cache is
    untouched).  For tests that need to re-pay the oracle computation —
    e.g. the [-j 1] vs [-j N] determinism check. *)
val clear_memory_cache : unit -> unit

(** The collision-free persistent-store key of the oracle table for
    [(func, tin, tout)]: covers both formats' exponent width {e and}
    precision plus the table's layout version, so formats with equal
    precision but different exponent ranges never share an entry, and a
    layout bump orphans (never trusts) older entries.  Pair with
    {!Cache.path_of_key} to locate the file — used by the cache-poisoning
    tests and tools/check.sh. *)
val oracle_cache_key :
  func:Oracle.func -> tin:Softfp.fmt -> tout:Softfp.fmt -> string
