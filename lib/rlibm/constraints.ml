(* Constraint construction: CalcRndIntervals + CalcRedIntervals +
   CombineRedIntervals of the RLibm pipeline (Figure 1 / Section 2).

   For every covered input x we obtain the oracle's round-to-odd result in
   the widened target, turn it into a rounding interval in H = binary64
   (Intervals), pull the interval back through the inverse of the output
   compensation, repair the boundaries against the *actual* double OC
   (AdjHigher/AdjLower of CalculateL'), and merge constraints that share a
   reduced input (CalculatePhi). *)

type point = {
  r : float;
  piece : int;
  mutable lo : float;
  mutable hi : float;
  mutable xs : int64 list;  (* input patterns merged into this constraint *)
}

type build_result = {
  points : point array array;  (* indexed by piece *)
  immediate_specials : (int64 * float) list;
      (* inputs whose constraint could not be expressed; the stored result
         is the decoded oracle value, which always lies in the rounding
         interval *)
  oracle : (int64, int64) Hashtbl.t;  (* input bits -> round-to-odd bits *)
}

(* Pull [iv] back through the output compensation: exact inverse first,
   then nudge the double endpoints until the real OC maps them inside the
   target interval.  Returns None when no double survives. *)
let reduced_interval (red : Reduction.reduced) (iv : Intervals.t) =
  let inside v = iv.Intervals.lo <= v && v <= iv.Intervals.hi in
  let g_lo = ref (Rat.to_float_dir Rat.Up (red.oc_inv (Rat.of_float iv.Intervals.lo))) in
  let g_hi = ref (Rat.to_float_dir Rat.Down (red.oc_inv (Rat.of_float iv.Intervals.hi))) in
  (* Each direction gets its own nudge budget: with a single shared
     budget a hard lower boundary drains it before the upper fix-up runs,
     misclassifying a recoverable constraint as infeasible. *)
  let budget_lo = ref 256 in
  while !budget_lo > 0 && !g_lo <= !g_hi && not (inside (red.oc !g_lo)) do
    g_lo := Float.succ !g_lo;
    decr budget_lo
  done;
  let budget_hi = ref 256 in
  while !budget_hi > 0 && !g_lo <= !g_hi && not (inside (red.oc !g_hi)) do
    g_hi := Float.pred !g_hi;
    decr budget_hi
  done;
  if !g_lo <= !g_hi && inside (red.oc !g_lo) && inside (red.oc !g_hi)
  then Some (!g_lo, !g_hi)
  else None

(* The oracle results are the expensive part of generation and depend only
   on (function, input format, target format) — share them across the four
   evaluation schemes, and persist them through the hardened {!Cache}
   store (the moral equivalent of the artifact's pre-generated oracle
   files) so repeated runs of the tests, benchmarks and examples do not
   re-pay the Ziv loops.  Set RLIBM_NO_DISK_CACHE to disable persistence,
   RLIBM_CACHE_DIR to relocate it. *)
let oracle_cache : (string, (int64, int64) Hashtbl.t) Hashtbl.t =
  Hashtbl.create 8

(* Layout version of the marshalled oracle table.  Part of the store key:
   bumping it makes every older entry unreachable (regenerated, never
   trusted), which is how payload-type drift is kept away from Marshal. *)
let store_version = 1

let oracle_cache_key ~func ~(tin : Softfp.fmt) ~(tout : Softfp.fmt) =
  (* The table depends on the *full* identity of both formats.  The old
     key ("%s-%d-%d-%d") omitted tout.ebits, so two target formats with
     equal precision but different exponent ranges silently shared one
     table; old-format file names are never generated, so un-versioned
     entries are simply ignored. *)
  Printf.sprintf "%s-in%d.%d-out%d.%d-v%d" (Oracle.name func)
    tin.Softfp.ebits tin.Softfp.prec tout.Softfp.ebits tout.Softfp.prec
    store_version

let clear_memory_cache () = Hashtbl.reset oracle_cache

let oracle_table ~func ~(tin : Softfp.fmt) ~(tout : Softfp.fmt) =
  let key = oracle_cache_key ~func ~tin ~tout in
  match Hashtbl.find_opt oracle_cache key with
  | Some t -> t
  | None ->
      let t =
        match
          (Cache.load ~kind:"oracle" ~key
            : ((int64, int64) Hashtbl.t option, Diag.Error.t) result)
        with
        | Ok (Some t) -> t
        | Ok None | Error _ ->
            (* Corrupt entries are quarantined by the store; an empty
               table just means every range recomputes, so the oracle
               layer self-heals rather than failing the stage. *)
            Hashtbl.create 4096
      in
      Hashtbl.replace oracle_cache key t;
      t

let persist_oracle_table ~func ~(tin : Softfp.fmt) ~(tout : Softfp.fmt) =
  let key = oracle_cache_key ~func ~tin ~tout in
  match Hashtbl.find_opt oracle_cache key with
  | Some t -> Cache.store ~kind:"oracle" ~key t
  | None -> Ok ()

(* ---------- stage bodies ----------

   [build] used to fuse three conceptually distinct computations: the
   Ziv-loop oracle evaluations, the rounding-interval construction, and
   the pull-back/CalculatePhi merge.  They are now separate pure bodies
   so the staged artifact pipeline (lib/pipeline) can persist and resume
   each one independently; [build] composes them unchanged. *)

(* Stage body 1, per-range form: the round-to-odd result of every
   finite, non-shortcut input of [inputs.(lo .. hi-1)] not claimed by
   [known], as (input, result) pairs in input order.  The Ziv loops fan
   out across the domain pool; the pair list is assembled on the driver,
   so the result is bit-identical at every job count.  With
   [known = fun _ -> false] the output is a pure function of
   (func, tin, tout, range) — which is what makes a range a
   content-keyable shard artifact (lib/pipeline's oracle shards). *)
let oracle_range ~(cfg : Config.t) ~(family : Reduction.t)
    ~(inputs : int64 array) ~lo ~hi ~(known : int64 -> bool) =
  let tin = cfg.tin and tout = Config.tout cfg in
  let slice = Array.sub inputs lo (Stdlib.max 0 (hi - lo)) in
  let fresh =
    Parallel.map_array
      (fun x ->
        if not (Softfp.is_finite tin x) then None
        else
          let xf = Softfp.to_float tin x in
          match family.shortcut xf with
          | Some _ -> None (* analytic fast path; checked during verification *)
          | None ->
              if known x then None
              else
                Some
                  ( x,
                    Oracle.correctly_round family.func (Softfp.to_rat tin x)
                      ~fmt:tout ~mode:Softfp.RTO ))
      slice
  in
  let pairs = ref [] in
  for i = Array.length fresh - 1 downto 0 do
    match fresh.(i) with None -> () | Some p -> pairs := p :: !pairs
  done;
  Array.of_list !pairs

(* Stage body 1: ensure [oracle] holds the round-to-odd result of every
   finite, non-shortcut input.  Missing entries are computed by the pure
   per-range body above (the table is read, never written, during the
   sweep) and installed on the driver in input order.  Returns the
   number of entries computed — 0 means the table was already
   complete. *)
let ensure_oracle ~(cfg : Config.t) ~(family : Reduction.t)
    ~(inputs : int64 array) ~(oracle : (int64, int64) Hashtbl.t) =
  let pairs =
    oracle_range ~cfg ~family ~inputs ~lo:0 ~hi:(Array.length inputs)
      ~known:(fun x -> Hashtbl.mem oracle x)
  in
  Array.iter (fun (x, y) -> Hashtbl.replace oracle x y) pairs;
  Array.length pairs

(* One covered input's rounding interval: the round-to-odd oracle result
   and the target interval it induces in H = binary64. *)
type rounding_interval = {
  ri_x : int64;
  ri_y : int64;
  ri_lo : float;
  ri_hi : float;
}

(* Stage body 2: CalcRndIntervals.  One entry per finite, non-shortcut
   input, in input order.  Derived entirely from the oracle table (which
   must cover the inputs — [ensure_oracle] first), so it depends only on
   (func, tin, tout), never on the piece split or reduction table. *)
let rounding_intervals ~(cfg : Config.t) ~(family : Reduction.t)
    ~(inputs : int64 array) ~(oracle : (int64, int64) Hashtbl.t) =
  let tin = cfg.tin and tout = Config.tout cfg in
  let acc = ref [] in
  Array.iter
    (fun x ->
      if Softfp.is_finite tin x then
        let xf = Softfp.to_float tin x in
        match family.shortcut xf with
        | Some _ -> ()
        | None ->
            let y =
              match Hashtbl.find_opt oracle x with
              | Some y -> y
              | None ->
                  (* Robustness: a caller resuming from a partial store
                     may hand an incomplete table; the result is the same
                     either way. *)
                  Oracle.correctly_round family.func (Softfp.to_rat tin x)
                    ~fmt:tout ~mode:Softfp.RTO
            in
            let iv = Intervals.of_round_to_odd tout y in
            acc := { ri_x = x; ri_y = y; ri_lo = iv.Intervals.lo;
                     ri_hi = iv.Intervals.hi }
                   :: !acc)
    inputs;
  Array.of_list (List.rev !acc)

(* Per-entry outcome of the parallel pull-back phase of [combine]. *)
type prepared =
  | P_special  (* constraint not expressible *)
  | P_point of { piece : int; r : float; lo : float; hi : float }

(* Stage body 3: CalcRedIntervals + CombineRedIntervals.  The pull-back
   through the inverse output compensation fans out across the domain
   pool; the CalculatePhi merge runs on the driver in entry order (the
   merge order is part of the output: an empty intersection demotes the
   *newest* input), so the result is bit-identical for every job count. *)
let combine ~(cfg : Config.t) ~(family : Reduction.t)
    ~(rivals : rounding_interval array) =
  let tin = cfg.tin and tout = Config.tout cfg in
  let table : (int * int64, point) Hashtbl.t =
    Hashtbl.create (Array.length rivals)
  in
  let prep =
    Parallel.map_array
      (fun ri ->
        let xf = Softfp.to_float tin ri.ri_x in
        let iv = { Intervals.lo = ri.ri_lo; hi = ri.ri_hi } in
        let red = family.reduce xf in
        match reduced_interval red iv with
        | None -> P_special
        | Some (lo, hi) -> P_point { piece = red.piece; r = red.r; lo; hi })
      rivals
  in
  let specials = ref [] in
  Array.iteri
    (fun i ri ->
      let x = ri.ri_x in
      match prep.(i) with
      | P_special -> specials := (x, Softfp.to_float tout ri.ri_y) :: !specials
      | P_point { piece; r; lo; hi } -> (
          let key = (piece, Int64.bits_of_float r) in
          match Hashtbl.find_opt table key with
          | None -> Hashtbl.replace table key { r; piece; lo; hi; xs = [ x ] }
          | Some pt ->
              (* CalculatePhi: intersect intervals sharing a reduced
                 input; an empty intersection demotes the newcomer to
                 a special case. *)
              let nlo = Float.max pt.lo lo and nhi = Float.min pt.hi hi in
              if nlo <= nhi then begin
                pt.lo <- nlo;
                pt.hi <- nhi;
                pt.xs <- x :: pt.xs
              end
              else specials := (x, Softfp.to_float tout ri.ri_y) :: !specials))
    rivals;
  let points = Array.make family.pieces [] in
  Hashtbl.iter
    (fun _ pt -> points.(pt.piece) <- pt :: points.(pt.piece))
    table;
  let points =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort (fun a b -> Float.compare a.r b.r) a;
        a)
      points
  in
  (points, !specials)

let build ~(cfg : Config.t) ~(family : Reduction.t) ~(inputs : int64 array) =
  let tin = cfg.tin and tout = Config.tout cfg in
  let oracle = oracle_table ~func:family.func ~tin ~tout in
  ignore (ensure_oracle ~cfg ~family ~inputs ~oracle : int);
  (* Best-effort on this legacy composed path; the pipeline collects
     publish failures at its own call sites. *)
  ignore
    (persist_oracle_table ~func:family.func ~tin ~tout
      : (unit, Diag.Error.t) result);
  let rivals = rounding_intervals ~cfg ~family ~inputs ~oracle in
  let points, immediate_specials = combine ~cfg ~family ~rivals in
  { points; immediate_specials; oracle }
