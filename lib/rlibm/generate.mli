(** Algorithm 2 of the paper: the generate / adapt / validate / constrain
    loop with fast polynomial evaluation integrated into generation.

    Per piece and degree, {!solve_piece} iterates: solve the LP over the
    current reduced intervals; round the rational coefficients to doubles
    and compile them for the requested scheme (for Knuth this runs the
    coefficient adaptation); evaluate the compiled scheme — the exact
    sequence of double operations that ships — on every reduced input;
    shrink the violated side of failing constraints by one double ulp and
    re-solve.  Constraints that cannot be satisfied become special-case
    inputs; the loop keeps the candidate with the fewest violated inputs
    (the cheap analogue of the artifact's minimal-specials search, helped
    by a random objective tilt that walks near-optimal LP vertices).
    {!run} drives the per-piece degree escalation. *)

type piece_outcome =
  | Done of {
      compiled : Polyeval.compiled;
      specials : int64 list;  (** inputs the polynomial cannot serve *)
      rounds : int;
    }
  | Scheme_na  (** scheme undefined at this degree (Knuth outside 4–6) *)
  | Unsat of { lp_infeasible : bool }
      (** [lp_infeasible]: the LP rejected the original (unshrunk)
          intervals outright, as opposed to the round/special budget
          running out *)

val solve_piece :
  ?log:(string -> unit) ->
  scheme:Polyeval.scheme ->
  degree:int ->
  max_rounds:int ->
  max_specials:int ->
  Constraints.point array ->
  piece_outcome

type generated = {
  cfg : Config.t;
  family : Reduction.t;
  scheme : Polyeval.scheme;
  pieces : Polyeval.compiled array;  (** one compiled evaluator per piece *)
  specials : (int64, float) Hashtbl.t;
      (** input bits -> stored double result (decoded oracle value) *)
  spec_keys : int array;
      (** the same special inputs as native ints (patterns fit 63 bits),
          sorted ascending — the binary-search probe of the hot path *)
  spec_vals : float array;  (** results matching [spec_keys] by index *)
  oracle : (int64, int64) Hashtbl.t;
      (** oracle round-to-odd results collected during generation; shared
          with verification *)
  degrees : int array;  (** per piece *)
  rounds : int array;  (** generation rounds used, per piece *)
  n_constraints : int array;  (** merged constraint points, per piece *)
}

(** Number of special-case inputs (the Table 1 column). *)
val n_specials : generated -> int

(** Closure-free product of the polynomial stage — what the staged
    pipeline persists.  [sv_data] holds each piece's {e compiled}
    constants ({!Polyeval.compiled}[.data]; Knuth's adapted coefficients
    for the Knuth scheme); {!Polyeval.of_data} rebuilds bit-identical
    evaluators from them. *)
type solved = {
  sv_data : float array array;  (** per piece *)
  sv_degrees : int array;
  sv_rounds : int array;
  sv_n_constraints : int array;
  sv_specials : (int64 * float) list;
      (** special-case inputs in discovery order: the constraint stage's
          immediate specials first, then each piece's leftovers *)
}

(** [solve ~cfg ~scheme ~func ~built ()] runs the per-piece degree
    escalation over an already-built constraint set.  A pure stage body:
    all randomness is seeded per (piece, degree), so the result is a
    deterministic function of the arguments at every job count.
    [Error] is typed: [Lp_infeasible] when the terminal degree's LP
    rejected the original intervals outright, [Budget_exhausted] when
    the degree/round/special budgets ran out. *)
val solve :
  ?log:(string -> unit) ->
  cfg:Config.t ->
  scheme:Polyeval.scheme ->
  func:Oracle.func ->
  built:Constraints.build_result ->
  unit ->
  (solved, Diag.Error.t) result

(** [assemble ~cfg ~scheme ~func ~oracle sv] rebuilds the runnable
    implementation from the closure-free artifact: recompiles each
    piece, rebuilds the range reduction, re-attaches the oracle table.
    @raise Invalid_argument when [sv]'s data cannot compile for
    [scheme] (a stale or foreign artifact). *)
val assemble :
  cfg:Config.t ->
  scheme:Polyeval.scheme ->
  func:Oracle.func ->
  oracle:(int64, int64) Hashtbl.t ->
  solved ->
  generated

(** [run ~cfg ~scheme ~func ~inputs ()] generates the full piecewise
    approximation for [func] over the given input patterns:
    {!Constraints.build}, then {!solve}, then {!assemble}.  [Error]
    identifies the piece that could not be satisfied within [cfg]'s
    degree/round/special budgets (see {!solve}). *)
val run :
  ?log:(string -> unit) ->
  cfg:Config.t ->
  scheme:Polyeval.scheme ->
  func:Oracle.func ->
  inputs:int64 array ->
  unit ->
  (generated, Diag.Error.t) result
