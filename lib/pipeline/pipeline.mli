(** Staged artifact pipeline: every generation stage is a first-class,
    cacheable, resumable artifact.

    Generation factors into five stages,

    {v
    oracle table -> rounding intervals -> reduced constraints
                 -> LP polynomial (per scheme) -> verified function
    v}

    each persisted through the hardened {!Cache} store under a
    content-derived key covering exactly the knobs the stage depends on
    (function, both formats, pieces / table bits, scheme, degree and
    budget bounds, chained stage versions).  Re-running after an
    interrupted or partial generation resumes from the last completed
    stage bit-identically; changing any upstream knob invalidates
    exactly the downstream stages:

    {v
    knob                         invalidates from
    tin / extra_bits (formats)   oracle
    pieces, table_bits           constraints
    scheme, degree/round/special polynomial
    narrow                       verdict
    v}

    The stage bodies are the pure functions in {!Rlibm.Constraints}
    ([ensure_oracle] / [rounding_intervals] / [combine]),
    {!Rlibm.Generate} ([solve] / [assemble]) and {!Genlibm} ([verify]);
    this module only sequences, persists and reports them.  Parallel
    fan-out stays on {!Parallel} inside the bodies and every random walk
    is seeded deterministically, so artifacts are bit-identical at every
    [-j] — a cold run, a warm run and a resumed run all produce the same
    coefficients, special tables and verdicts.

    The pipeline covers exhaustive-universe configurations (the input
    set is every finite pattern of [cfg.tin]); the sampled binary32 path
    stays on {!Genlibm.generate_sampled}.  Set [RLIBM_NO_DISK_CACHE] to
    degrade every stage to compute-always (the exact unstaged path). *)

type stage = Oracle | Intervals | Constraints | Poly | Verdict

val all_stages : stage list
(** In pipeline order. *)

val stage_name : stage -> string
(** ["oracle"], ["intervals"], ["constraints"], ["poly"], ["verdict"] —
    also the {!Cache} kind each stage's artifacts are accounted to. *)

val stage_of_name : string -> stage option

(** {1 Stage keys}

    Exposed for tests and tooling (pair with {!Cache.path_of_key}).
    Each key covers the full set of knobs its stage depends on, plus its
    own and all upstream stage-layout versions, so a bump anywhere
    upstream orphans exactly the downstream entries. *)

val oracle_key : cfg:Rlibm.Config.t -> Oracle.func -> string
val intervals_key : cfg:Rlibm.Config.t -> Oracle.func -> string
val constraints_key : cfg:Rlibm.Config.t -> Oracle.func -> string

(** {2 Oracle shards}

    The oracle stage can be split into [shards] fixed sub-artifacts
    (kind ["oracle-shard"]).  Shard [k] covers the input bit range
    [\[k*n/shards, (k+1)*n/shards)] of the deterministic input
    enumeration — the same static-partition rule as {!Parallel}'s chunk
    grid, so the grid depends only on the universe size and the shard
    count, never on [-j].  Each shard's key derives from {!oracle_key}
    plus [(shard_index, shard_count, shard_version)]; bumping the
    version constant orphans every published shard at once. *)

val shard_range : n:int -> shards:int -> int -> int * int
(** [shard_range ~n ~shards k] is shard [k]'s half-open input index
    range.  The ranges partition [\[0, n)] in order. *)

val oracle_shard_key :
  cfg:Rlibm.Config.t -> shards:int -> index:int -> Oracle.func -> string

val poly_key :
  cfg:Rlibm.Config.t -> scheme:Polyeval.scheme -> Oracle.func -> string

val verdict_key :
  ?narrow:bool ->
  cfg:Rlibm.Config.t ->
  scheme:Polyeval.scheme ->
  Oracle.func ->
  string

(** {1 Observability} *)

type status = Hit | Rebuilt

type event = {
  ev_stage : stage;
  ev_key : string;
  ev_status : status;
  ev_seconds : float;  (** load / compute+publish wall time *)
}

val events : unit -> event list
(** Every stage execution of this process so far, in execution order. *)

val reset_events : unit -> unit
val pp_event : Format.formatter -> event -> unit

(** {1 Stages}

    Each function returns its stage's artifact, recursively running (or
    loading) the upstream stages it needs.  A warm store satisfies the
    deepest stage directly — upstream stages are then never touched,
    which is what makes a warm [generate] perform zero oracle
    evaluations and zero LP solves. *)

val oracle_stage :
  ?log:(string -> unit) ->
  ?shards:int ->
  ?only_shard:int ->
  cfg:Rlibm.Config.t ->
  Oracle.func ->
  ((int64, int64) Hashtbl.t, Diag.Error.t) result
(** Stage 1: the shared oracle table, complete for every finite
    non-shortcut input of [cfg.tin].  [Hit] when the (memoized or
    loaded) table already covered them; otherwise the missing Ziv loops
    fan out and the table is republished.

    [shards > 1] (default [1]) splits the stage into the fixed
    {!shard_range} grid: each shard loads from the store when published
    ({e cooperative fill} — a killed or concurrent warmer's completed
    shards are never recomputed), computes and publishes otherwise, and
    the shards merge into the whole table in shard-index order — the
    global input order — so the republished whole-table artifact is
    byte-identical to an unsharded run's.  The assembled table (and
    every downstream stage) is bit-identical for every [shards] and
    every [-j].  [only_shard] restricts the invocation to that single
    shard and skips the merge/republish — the distributed-driver mode;
    the returned table is then possibly partial.  [Error (Shard_range _)]
    when [shards < 1] or [only_shard] is outside [\[0, shards)]. *)

val intervals_stage :
  ?log:(string -> unit) ->
  cfg:Rlibm.Config.t ->
  Oracle.func ->
  Rlibm.Constraints.rounding_interval array
(** Stage 2: CalcRndIntervals over the oracle table. *)

val constraints_stage :
  ?log:(string -> unit) ->
  cfg:Rlibm.Config.t ->
  Oracle.func ->
  Rlibm.Constraints.build_result
(** Stage 3: reduced, merged constraints (pull-back + CalculatePhi).
    The returned record shares the stage-1 oracle table. *)

val generate :
  ?log:(string -> unit) ->
  cfg:Rlibm.Config.t ->
  scheme:Polyeval.scheme ->
  Oracle.func ->
  (Rlibm.Generate.generated, Diag.Error.t) result
(** Stage 4: the LP polynomial for one scheme, assembled into a runnable
    implementation.  Persists {!Rlibm.Generate.solved} (including typed
    [Error] outcomes — generation is deterministic, so a failure is a
    property of the knobs, not of the run). *)

val verified :
  ?log:(string -> unit) ->
  ?narrow:bool ->
  cfg:Rlibm.Config.t ->
  scheme:Polyeval.scheme ->
  Oracle.func ->
  (Rlibm.Generate.generated * Genlibm.verify_report, Diag.Error.t) result
(** Stage 5: exhaustive verification verdict for the generated
    function. *)

(** {1 Drivers} *)

val run_stages :
  ?log:(string -> unit) ->
  ?narrow:bool ->
  cfg:Rlibm.Config.t ->
  scheme:Polyeval.scheme ->
  Oracle.func ->
  event list
  * (Rlibm.Generate.generated * Genlibm.verify_report, Diag.Error.t) result
(** Run every stage explicitly in pipeline order (cheap when warm) and
    return one event per executed stage — the [rlibm_gen stages]
    report.  When the polynomial stage fails, the verdict stage is
    skipped and the event list has four entries. *)

type warm_report = {
  wm_entries : (Oracle.func * int) list;
      (** per function, the oracle-table entry count after warming *)
  wm_failed : (Oracle.func * Polyeval.scheme * Diag.Error.t) list;
      (** every skipped polynomial/verdict generation, in encounter
          order — empty means the store is fully pre-filled *)
  wm_store_failed : (Oracle.func * Diag.Error.t) list;
      (** every failed stage/shard/whole-table publish, in encounter
          order.  Generation tolerates a failed publish (the value flows
          downstream in memory), but warming exists to fill the store —
          an ENOSPC or read-only store must be reported, not shrugged
          off as a successful warm that cached nothing. *)
}

val warm :
  ?log:(string -> unit) ->
  ?schemes:Polyeval.scheme list ->
  ?through:stage ->
  ?shards:int ->
  ?only_shard:int ->
  (Oracle.func * Rlibm.Config.t) list ->
  (warm_report, Diag.Error.t) result
(** Pre-fill the store: for each [(func, cfg)] run the pipeline through
    [through] (default {!Verdict}; the polynomial and verdict stages run
    once per scheme in [schemes], default {!Polyeval.paper_schemes}).
    [shards]/[only_shard] are passed to {!oracle_stage}; with
    [only_shard] set the invocation stops after that oracle shard
    regardless of [through] (a deeper stage would trigger the very
    whole-universe computation the shard split avoids).
    [Error (Shard_range _)] when the shard request is outside the grid.
    Generation failures are logged and skipped — warming stays
    best-effort — but every skip is reported typed in [wm_failed], and
    every failed publish in [wm_store_failed], so drivers (CI warm jobs
    in particular) can fail loudly instead of silently half-filling the
    store. *)
