(** Staged artifact pipeline: every generation stage is a first-class,
    cacheable, resumable artifact.

    Generation factors into five stages,

    {v
    oracle table -> rounding intervals -> reduced constraints
                 -> LP polynomial (per scheme) -> verified function
    v}

    each persisted through the hardened {!Cache} store under a
    content-derived key covering exactly the knobs the stage depends on
    (function, both formats, pieces / table bits, scheme, degree and
    budget bounds, chained stage versions).  Re-running after an
    interrupted or partial generation resumes from the last completed
    stage bit-identically; changing any upstream knob invalidates
    exactly the downstream stages:

    {v
    knob                         invalidates from
    tin / extra_bits (formats)   oracle
    pieces, table_bits           constraints
    scheme, degree/round/special polynomial
    narrow                       verdict
    v}

    The stage bodies are the pure functions in {!Rlibm.Constraints}
    ([ensure_oracle] / [rounding_intervals] / [combine]),
    {!Rlibm.Generate} ([solve] / [assemble]) and {!Genlibm} ([verify]);
    this module only sequences, persists and reports them.  Parallel
    fan-out stays on {!Parallel} inside the bodies and every random walk
    is seeded deterministically, so artifacts are bit-identical at every
    [-j] — a cold run, a warm run and a resumed run all produce the same
    coefficients, special tables and verdicts.

    The pipeline covers exhaustive-universe configurations (the input
    set is every finite pattern of [cfg.tin]); the sampled binary32 path
    stays on {!Genlibm.generate_sampled}.  Set [RLIBM_NO_DISK_CACHE] to
    degrade every stage to compute-always (the exact unstaged path). *)

type stage = Oracle | Intervals | Constraints | Poly | Verdict

val all_stages : stage list
(** In pipeline order. *)

val stage_name : stage -> string
(** ["oracle"], ["intervals"], ["constraints"], ["poly"], ["verdict"] —
    also the {!Cache} kind each stage's artifacts are accounted to. *)

val stage_of_name : string -> stage option

(** {1 Stage keys}

    Exposed for tests and tooling (pair with {!Cache.path_of_key}).
    Each key covers the full set of knobs its stage depends on, plus its
    own and all upstream stage-layout versions, so a bump anywhere
    upstream orphans exactly the downstream entries. *)

val oracle_key : cfg:Rlibm.Config.t -> Oracle.func -> string
val intervals_key : cfg:Rlibm.Config.t -> Oracle.func -> string
val constraints_key : cfg:Rlibm.Config.t -> Oracle.func -> string

val poly_key :
  cfg:Rlibm.Config.t -> scheme:Polyeval.scheme -> Oracle.func -> string

val verdict_key :
  ?narrow:bool ->
  cfg:Rlibm.Config.t ->
  scheme:Polyeval.scheme ->
  Oracle.func ->
  string

(** {1 Observability} *)

type status = Hit | Rebuilt

type event = {
  ev_stage : stage;
  ev_key : string;
  ev_status : status;
  ev_seconds : float;  (** load / compute+publish wall time *)
}

val events : unit -> event list
(** Every stage execution of this process so far, in execution order. *)

val reset_events : unit -> unit
val pp_event : Format.formatter -> event -> unit

(** {1 Stages}

    Each function returns its stage's artifact, recursively running (or
    loading) the upstream stages it needs.  A warm store satisfies the
    deepest stage directly — upstream stages are then never touched,
    which is what makes a warm [generate] perform zero oracle
    evaluations and zero LP solves. *)

val oracle_stage :
  ?log:(string -> unit) ->
  cfg:Rlibm.Config.t ->
  Oracle.func ->
  (int64, int64) Hashtbl.t
(** Stage 1: the shared oracle table, complete for every finite
    non-shortcut input of [cfg.tin].  [Hit] when the (memoized or
    loaded) table already covered them; otherwise the missing Ziv loops
    fan out and the table is republished. *)

val intervals_stage :
  ?log:(string -> unit) ->
  cfg:Rlibm.Config.t ->
  Oracle.func ->
  Rlibm.Constraints.rounding_interval array
(** Stage 2: CalcRndIntervals over the oracle table. *)

val constraints_stage :
  ?log:(string -> unit) ->
  cfg:Rlibm.Config.t ->
  Oracle.func ->
  Rlibm.Constraints.build_result
(** Stage 3: reduced, merged constraints (pull-back + CalculatePhi).
    The returned record shares the stage-1 oracle table. *)

val generate :
  ?log:(string -> unit) ->
  cfg:Rlibm.Config.t ->
  scheme:Polyeval.scheme ->
  Oracle.func ->
  (Rlibm.Generate.generated, string) result
(** Stage 4: the LP polynomial for one scheme, assembled into a runnable
    implementation.  Persists {!Rlibm.Generate.solved} (including
    [Error] outcomes — generation is deterministic, so a failure is a
    property of the knobs, not of the run). *)

val verified :
  ?log:(string -> unit) ->
  ?narrow:bool ->
  cfg:Rlibm.Config.t ->
  scheme:Polyeval.scheme ->
  Oracle.func ->
  (Rlibm.Generate.generated * Genlibm.verify_report, string) result
(** Stage 5: exhaustive verification verdict for the generated
    function. *)

(** {1 Drivers} *)

val run_stages :
  ?log:(string -> unit) ->
  ?narrow:bool ->
  cfg:Rlibm.Config.t ->
  scheme:Polyeval.scheme ->
  Oracle.func ->
  event list * (Rlibm.Generate.generated * Genlibm.verify_report, string) result
(** Run every stage explicitly in pipeline order (cheap when warm) and
    return one event per executed stage — the [rlibm_gen stages]
    report.  When the polynomial stage fails, the verdict stage is
    skipped and the event list has four entries. *)

val warm :
  ?log:(string -> unit) ->
  ?schemes:Polyeval.scheme list ->
  ?through:stage ->
  (Oracle.func * Rlibm.Config.t) list ->
  (Oracle.func * int) list
(** Pre-fill the store: for each [(func, cfg)] run the pipeline through
    [through] (default {!Verdict}; the polynomial and verdict stages run
    once per scheme in [schemes], default {!Polyeval.paper_schemes}).
    Returns each function's oracle-table entry count.  Generation
    failures are logged and skipped — warming is best-effort. *)
