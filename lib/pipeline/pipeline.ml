(* Staged artifact pipeline.  See pipeline.mli for the contract.

   Design notes:

   - Stage payloads are closure-free data (hash tables, float/int64
     arrays, Generate.solved) so Marshal round-trips are sound; the
     runnable closures (Reduction.t, Polyeval.compiled) are rebuilt
     deterministically by Generate.assemble.
   - Each stage function recursively obtains its upstream artifact
     *inside* its compute closure, so a warm deep stage never touches
     the stages above it.
   - Everything here runs on the driver domain (the bodies fan out
     through Parallel internally), so the event log is a plain ref. *)

type stage = Oracle | Intervals | Constraints | Poly | Verdict

let all_stages = [ Oracle; Intervals; Constraints; Poly; Verdict ]

let stage_name = function
  | Oracle -> "oracle"
  | Intervals -> "intervals"
  | Constraints -> "constraints"
  | Poly -> "poly"
  | Verdict -> "verdict"

let stage_of_name = function
  | "oracle" -> Some Oracle
  | "intervals" -> Some Intervals
  | "constraints" -> Some Constraints
  | "poly" -> Some Poly
  | "verdict" -> Some Verdict
  | _ -> None

let rank = function
  | Oracle -> 1
  | Intervals -> 2
  | Constraints -> 3
  | Poly -> 4
  | Verdict -> 5

(* ---------- stage keys ----------

   Layout versions of the marshalled stage payloads.  Each key embeds
   its own version and the versions of every upstream stage it was
   derived from, so bumping one constant orphans exactly that stage and
   everything below it (the invalidation graph of DESIGN.md).  The
   oracle stage reuses Constraints.oracle_cache_key so tables warmed by
   earlier revisions stay valid. *)
let v_intervals = 1
let v_constraints = 1

(* v2: the persisted poly payload is a [(solved, Diag.Error.t) result] —
   failures are typed data now, not strings — so v1 entries (which held
   [(solved, string) result]) must be orphaned, not decoded. *)
let v_poly = 2
let v_verdict = 1

let base ~(cfg : Rlibm.Config.t) func =
  let tin = cfg.Rlibm.Config.tin and tout = Rlibm.Config.tout cfg in
  Printf.sprintf "%s-in%d.%d-out%d.%d" (Oracle.name func) tin.Softfp.ebits
    tin.Softfp.prec tout.Softfp.ebits tout.Softfp.prec

let oracle_key ~(cfg : Rlibm.Config.t) func =
  Rlibm.Constraints.oracle_cache_key ~func ~tin:cfg.Rlibm.Config.tin
    ~tout:(Rlibm.Config.tout cfg)

(* Layout version of the marshalled oracle-shard payload (an
   (input, result) pair array).  Also the grid version: bumping it
   orphans every shard of every grid, so a change to either the payload
   layout or the partition rule can never mix old and new shards. *)
let shard_version = 1

(* Shard k of [shards] over an n-input universe covers the bit range
   [k*n/shards, (k+1)*n/shards) of the deterministic input enumeration —
   the same static-partition rule as Parallel's chunk grid, so the grid
   depends only on (n, shards), never on the job count or scheduling. *)
let shard_range ~n ~shards k = (k * n / shards, (k + 1) * n / shards)

let oracle_shard_key ~cfg ~shards ~index func =
  Printf.sprintf "%s-sh%d.%d-shv%d" (oracle_key ~cfg func) index shards
    shard_version

let intervals_key ~cfg func =
  Printf.sprintf "%s-ivl-v%d" (base ~cfg func) v_intervals

let constraints_key ~(cfg : Rlibm.Config.t) func =
  Printf.sprintf "%s-p%d-tb%d-cns-v%d.%d" (base ~cfg func)
    cfg.Rlibm.Config.pieces cfg.Rlibm.Config.table_bits v_constraints
    v_intervals

let poly_key ~(cfg : Rlibm.Config.t) ~scheme func =
  Printf.sprintf "%s-p%d-tb%d-%s-d%d.%d-r%d-sp%d-ply-v%d.%d.%d"
    (base ~cfg func) cfg.Rlibm.Config.pieces cfg.Rlibm.Config.table_bits
    (Polyeval.scheme_name scheme) cfg.Rlibm.Config.min_degree
    cfg.Rlibm.Config.max_degree cfg.Rlibm.Config.max_rounds
    cfg.Rlibm.Config.max_specials v_poly v_constraints v_intervals

let verdict_key ?(narrow = true) ~cfg ~scheme func =
  Printf.sprintf "%s-nw%d-vrd-v%d" (poly_key ~cfg ~scheme func)
    (if narrow then 1 else 0)
    v_verdict

(* ---------- events ---------- *)

type status = Hit | Rebuilt

type event = {
  ev_stage : stage;
  ev_key : string;
  ev_status : status;
  ev_seconds : float;
}

let events_rev = ref []
let events () = List.rev !events_rev
let reset_events () = events_rev := []

let status_name = function Hit -> "hit" | Rebuilt -> "rebuilt"

(* ---------- publish-failure collection ----------

   Stage publishes are best-effort for generation — the freshly computed
   value still flows downstream, so an ENOSPC store must not abort a
   run that could finish in memory.  But a driver that exists to fill
   the store (warm) must not silently produce nothing: every failed
   publish inside [collect_store_errors] is gathered and handed back.
   Publishes run on the driver domain (the bodies fan out through
   Parallel internally), so a plain dynamically-scoped ref suffices. *)

let store_errors : Diag.Error.t list ref option ref = ref None

let note_store_error = function
  | Ok () -> ()
  | Error e -> (
      match !store_errors with Some acc -> acc := e :: !acc | None -> ())

let collect_store_errors f =
  let saved = !store_errors in
  let acc = ref [] in
  store_errors := Some acc;
  Fun.protect
    ~finally:(fun () -> store_errors := saved)
    (fun () ->
      let v = f () in
      (v, List.rev !acc))

(* The one emission point for per-stage outcomes: the in-process event
   list (what [events] / [pp_event] / the bench harness consume), the
   optional human log line, and the structured diag stream are three
   renderings of the same record. *)
let record ?log stage key status seconds =
  let ev = { ev_stage = stage; ev_key = key; ev_status = status; ev_seconds = seconds } in
  events_rev := ev :: !events_rev;
  (match log with
  | Some f ->
      f
        (Printf.sprintf "stage %-11s %-7s %7.3fs  %s" (stage_name stage)
           (status_name status) seconds key)
  | None -> ())

let pp_event fmt ev =
  Format.fprintf fmt "%-11s  %-7s  %8.3fs  %s" (stage_name ev.ev_stage)
    (match ev.ev_status with Hit -> "hit" | Rebuilt -> "rebuilt")
    ev.ev_seconds ev.ev_key

(* Wrap one stage execution in a diag span: a ["stage.begin"] record
   before, a ["stage.end"] record carrying seconds + hit/rebuilt after.
   Body runs bare when no sink listens. *)
let stage_span stage key body =
  Diag.span "stage"
    (fun () ->
      [
        ("stage", Diag.String (stage_name stage)); ("key", Diag.String key);
      ])
    ~result:(fun (_, status) -> [ ("status", Diag.String (status_name status)) ])
    body
  |> fst

(* Load-or-compute-and-publish, with the event bookkeeping. *)
let staged ?log ~stage ~key compute =
  let kind = stage_name stage in
  stage_span stage key (fun () ->
      let t0 = Unix.gettimeofday () in
      let v, status =
        match Cache.load ~kind ~key with
        | Ok (Some v) -> (v, Hit)
        | Ok None | Error _ ->
            (* Absent, or a corrupt entry the store already counted and
               quarantined: recompute and republish — the self-healing
               path.  A failed publish is not fatal (the store emitted
               its own warning, and the collector reports it to drivers
               that care); the value still flows downstream. *)
            let v = compute () in
            note_store_error (Cache.store ~kind ~key v);
            (v, Rebuilt)
      in
      record ?log stage key status (Unix.gettimeofday () -. t0);
      (v, status))

(* ---------- shared per-config plumbing ---------- *)

let family_of ~(cfg : Rlibm.Config.t) func =
  Rlibm.Reduction.make func ~out_fmt:(Rlibm.Config.tout cfg)
    ~pieces:cfg.Rlibm.Config.pieces ~table_bits:cfg.Rlibm.Config.table_bits

let inputs_of (cfg : Rlibm.Config.t) =
  Genlibm.inputs_exhaustive cfg.Rlibm.Config.tin

(* ---------- stage 1: oracle table ---------- *)

(* Does the table still miss a covered (finite, non-shortcut) input of
   [inputs.(lo .. hi-1)]?  Cheap (hash lookups only) — this is what lets
   a fully warm table short-circuit every shard without touching the
   store. *)
let range_incomplete ~(cfg : Rlibm.Config.t) ~(family : Rlibm.Reduction.t)
    ~(inputs : int64 array) ~(oracle : (int64, int64) Hashtbl.t) ~lo ~hi =
  let tin = cfg.Rlibm.Config.tin in
  let rec scan i =
    i < hi
    && ((Softfp.is_finite tin inputs.(i)
        && family.Rlibm.Reduction.shortcut (Softfp.to_float tin inputs.(i))
           = None
        && not (Hashtbl.mem oracle inputs.(i)))
       || scan (i + 1))
  in
  scan lo

(* The oracle stage is incremental rather than load-or-compute: the
   shared table may be partially filled (by earlier configs of the same
   formats), and completeness — not mere presence — is what "hit"
   means.  The scan is cheap (hash lookups); the Ziv loops are not.

   With [shards > 1] the input universe splits into the fixed
   [shard_range] grid and each shard becomes its own content-keyed
   store artifact (kind ["oracle-shard"]): a shard already published is
   loaded, never recomputed — which is what makes an interrupted warm
   resumable and lets several processes fill one store cooperatively
   (the O_EXCL-temp publish protocol of {!Cache} keeps racing writers
   safe; identical content makes the race benign).  Shards install into
   the shared table in shard-index order — exactly the global input
   order — so the republished whole-table artifact is byte-identical to
   an unsharded run's.  [only_shard] restricts the invocation to one
   shard (for distributed drivers); the whole table is then left
   unassembled. *)
(* The validated body: shard arguments are known to be in range here.
   [run_oracle ~shards:1] is also what the deeper stages call
   internally, so their compute closures never see a shard error. *)
let run_oracle ?log ~shards ?only_shard ~(cfg : Rlibm.Config.t) func =
  let tin = cfg.Rlibm.Config.tin and tout = Rlibm.Config.tout cfg in
  let key = oracle_key ~cfg func in
  let span_key =
    match only_shard with
    | Some k -> oracle_shard_key ~cfg ~shards ~index:k func
    | None -> key
  in
  stage_span Oracle span_key (fun () ->
      let t0 = Unix.gettimeofday () in
      let oracle = Rlibm.Constraints.oracle_table ~func ~tin ~tout in
      let status =
        if shards = 1 && only_shard = None then begin
          let computed =
            Rlibm.Constraints.ensure_oracle ~cfg ~family:(family_of ~cfg func)
              ~inputs:(inputs_of cfg) ~oracle
          in
          if computed > 0 then
            note_store_error
              (Rlibm.Constraints.persist_oracle_table ~func ~tin ~tout);
          let status = if computed = 0 then Hit else Rebuilt in
          record ?log Oracle key status (Unix.gettimeofday () -. t0);
          status
        end
        else begin
          let family = family_of ~cfg func in
          let inputs = inputs_of cfg in
          let n = Array.length inputs in
          let indices =
            match only_shard with
            | Some k -> [ k ]
            | None -> List.init shards Fun.id
          in
          let computed = ref 0 and installed = ref 0 in
          List.iter
            (fun k ->
              let lo, hi = shard_range ~n ~shards k in
              let skey = oracle_shard_key ~cfg ~shards ~index:k func in
              let st0 = Unix.gettimeofday () in
              let shard_line status entries =
                Diag.event "shard.done" (fun () ->
                    [
                      ("index", Diag.Int k);
                      ("count", Diag.Int shards);
                      ("status", Diag.String status);
                      ("entries", Diag.Int entries);
                      ("key", Diag.String skey);
                    ]);
                match log with
                | Some f ->
                    f
                      (Printf.sprintf
                         "oracle shard %d/%d %-7s %7.3fs  %6d entries  %s" k
                         shards status
                         (Unix.gettimeofday () -. st0)
                         entries skey)
                | None -> ()
              in
              if not (range_incomplete ~cfg ~family ~inputs ~oracle ~lo ~hi)
              then
                (* Already covered by the merged table: no store traffic. *)
                shard_line "hit" 0
              else
                match
                  (Cache.load ~kind:"oracle-shard" ~key:skey
                    : ((int64 * int64) array option, Diag.Error.t) result)
                with
                | Ok (Some pairs) ->
                    Array.iter (fun (x, y) -> Hashtbl.replace oracle x y) pairs;
                    installed := !installed + Array.length pairs;
                    Diag.event "shard.load" (fun () ->
                        [
                          ("index", Diag.Int k);
                          ("count", Diag.Int shards);
                          ("entries", Diag.Int (Array.length pairs));
                        ]);
                    shard_line "hit" (Array.length pairs)
                | Ok None | Error _ ->
                    (* Absent or quarantined-corrupt: recompute this
                       slice — identical content makes a racing
                       republish benign. *)
                    let pairs =
                      Rlibm.Constraints.oracle_range ~cfg ~family ~inputs ~lo
                        ~hi
                        ~known:(fun _ -> false)
                    in
                    (* Publish the shard before merging so a kill after
                       this point never loses the completed Ziv work. *)
                    note_store_error
                      (Cache.store ~kind:"oracle-shard" ~key:skey pairs);
                    Diag.event "shard.publish" (fun () ->
                        [
                          ("index", Diag.Int k);
                          ("count", Diag.Int shards);
                          ("entries", Diag.Int (Array.length pairs));
                        ]);
                    Array.iter (fun (x, y) -> Hashtbl.replace oracle x y) pairs;
                    computed := !computed + Array.length pairs;
                    installed := !installed + Array.length pairs;
                    shard_line "rebuilt" (Array.length pairs))
            indices;
          match only_shard with
          | Some k ->
              let status = if !computed = 0 then Hit else Rebuilt in
              record ?log Oracle
                (oracle_shard_key ~cfg ~shards ~index:k func)
                status
                (Unix.gettimeofday () -. t0);
              status
          | None ->
              (* Republish the assembled whole-table artifact whenever
                 any shard contributed, so downstream stages and
                 unsharded runs keep loading the single merged entry
                 they always have. *)
              if !installed > 0 then
                note_store_error
                  (Rlibm.Constraints.persist_oracle_table ~func ~tin ~tout);
              let status = if !computed = 0 then Hit else Rebuilt in
              record ?log Oracle key status (Unix.gettimeofday () -. t0);
              status
        end
      in
      (oracle, status))

let oracle_stage ?log ?(shards = 1) ?only_shard ~(cfg : Rlibm.Config.t) func =
  if shards < 1 then Error (Diag.Error.Shard_range { index = 0; count = shards })
  else
    match only_shard with
    | Some k when k < 0 || k >= shards ->
        Error (Diag.Error.Shard_range { index = k; count = shards })
    | _ -> Ok (run_oracle ?log ~shards ?only_shard ~cfg func)

(* ---------- stage 2: rounding intervals ---------- *)

let intervals_stage ?log ~cfg func =
  staged ?log ~stage:Intervals ~key:(intervals_key ~cfg func) (fun () ->
      let oracle = run_oracle ?log ~shards:1 ~cfg func in
      Rlibm.Constraints.rounding_intervals ~cfg ~family:(family_of ~cfg func)
        ~inputs:(inputs_of cfg) ~oracle)

(* ---------- stage 3: reduced, merged constraints ---------- *)

(* Persisted payload: the per-piece points and the immediate specials.
   The oracle table is stage 1's artifact, re-attached on the way out. *)
let constraints_stage ?log ~(cfg : Rlibm.Config.t) func =
  let points, immediate_specials =
    staged ?log ~stage:Constraints ~key:(constraints_key ~cfg func) (fun () ->
        let rivals = intervals_stage ?log ~cfg func in
        Rlibm.Constraints.combine ~cfg ~family:(family_of ~cfg func) ~rivals)
  in
  let oracle =
    Rlibm.Constraints.oracle_table ~func ~tin:cfg.Rlibm.Config.tin
      ~tout:(Rlibm.Config.tout cfg)
  in
  { Rlibm.Constraints.points; immediate_specials; oracle }

(* ---------- stage 4: LP polynomial per scheme ---------- *)

let solved_stage ?log ~cfg ~scheme func =
  (staged ?log ~stage:Poly ~key:(poly_key ~cfg ~scheme func) (fun () ->
       let built = constraints_stage ?log ~cfg func in
       Rlibm.Generate.solve ?log ~cfg ~scheme ~func ~built ())
    : (Rlibm.Generate.solved, Diag.Error.t) result)

let generate ?log ~cfg ~scheme func =
  match solved_stage ?log ~cfg ~scheme func with
  | Error _ as e -> e
  | Ok sv ->
      let oracle =
        Rlibm.Constraints.oracle_table ~func ~tin:cfg.Rlibm.Config.tin
          ~tout:(Rlibm.Config.tout cfg)
      in
      Ok (Rlibm.Generate.assemble ~cfg ~scheme ~func ~oracle sv)

(* ---------- stage 5: verified function ---------- *)

let verified ?log ?(narrow = true) ~cfg ~scheme func =
  match generate ?log ~cfg ~scheme func with
  | Error _ as e -> e
  | Ok g ->
      let report =
        (staged ?log ~stage:Verdict
           ~key:(verdict_key ~narrow ~cfg ~scheme func) (fun () ->
             Genlibm.verify ~narrow g ~inputs:(inputs_of cfg))
          : Genlibm.verify_report)
      in
      Ok (g, report)

(* ---------- drivers ---------- *)

(* One explicit pass over every stage, keeping the first event each
   stage emitted during its own step (deeper steps may re-emit upstream
   hits; those duplicates are dropped). *)
let run_stages ?log ?(narrow = true) ~cfg ~scheme func =
  let mark = List.length !events_rev in
  ignore (run_oracle ?log ~shards:1 ~cfg func : (int64, int64) Hashtbl.t);
  ignore
    (intervals_stage ?log ~cfg func
      : Rlibm.Constraints.rounding_interval array);
  ignore (constraints_stage ?log ~cfg func : Rlibm.Constraints.build_result);
  let result = verified ?log ~narrow ~cfg ~scheme func in
  let fresh =
    List.filteri (fun i _ -> i >= mark) (List.rev !events_rev)
  in
  let per_stage =
    List.filter_map
      (fun stage -> List.find_opt (fun ev -> ev.ev_stage = stage) fresh)
      all_stages
  in
  (per_stage, result)

type warm_report = {
  wm_entries : (Oracle.func * int) list;
  wm_failed : (Oracle.func * Polyeval.scheme * Diag.Error.t) list;
  wm_store_failed : (Oracle.func * Diag.Error.t) list;
}

let warm ?log ?(schemes = Polyeval.paper_schemes) ?(through = Verdict)
    ?(shards = 1) ?only_shard pairs =
  if shards < 1 then Error (Diag.Error.Shard_range { index = 0; count = shards })
  else
    match only_shard with
    | Some k when k < 0 || k >= shards ->
        Error (Diag.Error.Shard_range { index = k; count = shards })
    | _ ->
        let depth =
          (* A single-shard invocation is a distributed-driver slice of
             the oracle stage: running any deeper stage would silently
             trigger the full oracle computation the caller is trying to
             split up. *)
          match only_shard with Some _ -> rank Oracle | None -> rank through
        in
        let failed = ref [] in
        let store_failed = ref [] in
        let entries =
          List.map
            (fun (func, cfg) ->
              let count, errs =
                collect_store_errors (fun () ->
                    let oracle =
                      run_oracle ?log ~shards ?only_shard ~cfg func
                    in
                    if depth >= rank Intervals then
                      ignore
                        (intervals_stage ?log ~cfg func
                          : Rlibm.Constraints.rounding_interval array);
                    if depth >= rank Constraints then
                      ignore
                        (constraints_stage ?log ~cfg func
                          : Rlibm.Constraints.build_result);
                    if depth >= rank Poly then
                      List.iter
                        (fun scheme ->
                          let outcome =
                            if depth >= rank Verdict then
                              Result.map ignore
                                (verified ?log ~cfg ~scheme func)
                            else
                              Result.map ignore
                                (generate ?log ~cfg ~scheme func)
                          in
                          match outcome with
                          | Ok () -> ()
                          | Error err ->
                              failed := (func, scheme, err) :: !failed;
                              (match log with
                              | Some f ->
                                  f
                                    (Printf.sprintf
                                       "%s/%s: generation failed: %s"
                                       (Oracle.name func)
                                       (Polyeval.scheme_name scheme)
                                       (Diag.Error.to_string err))
                              | None -> ()))
                        schemes;
                    Hashtbl.length oracle)
              in
              List.iter
                (fun e ->
                  store_failed := (func, e) :: !store_failed;
                  match log with
                  | Some f ->
                      f
                        (Printf.sprintf "%s: store publish failed: %s"
                           (Oracle.name func) (Diag.Error.to_string e))
                  | None -> ())
                errs;
              (func, count))
            pairs
        in
        Ok
          {
            wm_entries = entries;
            wm_failed = List.rev !failed;
            wm_store_failed = List.rev !store_failed;
          }
