(* Command-line interface to the generator, oracle, cost model and the
   persistent oracle cache.

     rlibm_gen generate --func exp2 --scheme estrin-fma [--ebits 5 --prec 8]
     rlibm_gen oracle   --func log2 --x 1.5 [--prec 96]
     rlibm_gen cost     [--degree 5]
     rlibm_gen warm     [--ebits 5 --prec 8] [-j N]

   See README.md for a walkthrough. *)

open Cmdliner

let func_arg =
  let parse s =
    match Oracle.of_name s with
    | Some f -> Ok f
    | None -> Error (`Msg (Printf.sprintf "unknown function %S" s))
  in
  let print fmt f = Format.pp_print_string fmt (Oracle.name f) in
  Arg.conv (parse, print)

let scheme_arg =
  let parse s =
    match Polyeval.scheme_of_name s with
    | Some x -> Ok x
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print fmt s = Format.pp_print_string fmt (Polyeval.scheme_name s) in
  Arg.conv (parse, print)

let jobs_arg =
  let doc =
    "Fan the oracle construction, generation loop and verification out \
     over $(docv) domains (deterministic: the output is bit-identical for \
     every value).  Defaults to the machine's core count; 1 takes the \
     exact sequential code path."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let set_jobs jobs =
  Parallel.set_jobs
    (match jobs with Some j -> j | None -> Parallel.default_jobs ())

(* ---------- oracle disk cache knobs (shared by generate and warm) ---------- *)

let cache_dir_arg =
  let doc =
    "Directory of the persistent oracle cache (overrides \
     $(b,RLIBM_CACHE_DIR); default ./.oracle-cache).  Set \
     $(b,RLIBM_NO_DISK_CACHE=1) to disable persistence entirely."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let cache_stats_arg =
  let doc =
    "After the run, print the oracle cache counters (hits, misses, \
     corrupt-rejected, bytes read/written) to stderr.  A nonzero \
     corrupt-rejected count means entries failed header or checksum \
     validation, were quarantined aside as *.corrupt-*, and were \
     regenerated from scratch."
  in
  Arg.(value & flag & info [ "cache-stats" ] ~doc)

let set_cache_dir = function Some d -> Cache.set_dir d | None -> ()

let report_cache_stats enabled =
  if enabled then Format.eprintf "%a@." Cache.pp_stats (Cache.stats ())

(* ---------- generate ---------- *)

let generate_cmd =
  let run func scheme ebits prec pieces table_bits verify verbose jobs
      cache_dir cache_stats =
    set_jobs jobs;
    set_cache_dir cache_dir;
    (* at_exit so the counters are reported even on the exit-1 paths. *)
    if cache_stats then at_exit (fun () -> report_cache_stats true);
    let tin = Softfp.make_fmt ~ebits ~prec in
    let cfg =
      {
        (Rlibm.Config.mini_for func) with
        Rlibm.Config.tin;
        pieces =
          (match pieces with
          | Some p -> p
          | None -> (Rlibm.Config.mini_for func).Rlibm.Config.pieces);
        table_bits;
      }
    in
    let log = if verbose then fun s -> Printf.eprintf "%s\n%!" s else fun _ -> () in
    Printf.printf "generating %s / %s for %d-bit inputs (%d finite values)\n%!"
      (Oracle.name func)
      (Polyeval.scheme_name scheme)
      (Softfp.width tin) (Softfp.count_finite tin);
    match Genlibm.generate ~log ~cfg ~scheme func with
    | Error msg ->
        Printf.eprintf "generation failed: %s\n" msg;
        exit 1
    | Ok g ->
        Printf.printf "%s\n"
          (Format.asprintf "%a" Genlibm.pp_table1_row (Genlibm.table1_row g));
        Array.iteri
          (fun i (piece : Polyeval.compiled) ->
            Printf.printf "piece %d (degree %d): cost %s\n" i
              piece.Polyeval.degree
              (Format.asprintf "%a" Expr.pp_cost (Polyeval.cost piece));
            Array.iteri
              (fun k c -> Printf.printf "  c%d = %h  (%.17g)\n" k c c)
              piece.Polyeval.data)
          g.Rlibm.Generate.pieces;
        if verify then begin
          let inputs = Genlibm.inputs_exhaustive tin in
          let rep = Genlibm.verify g ~inputs in
          Printf.printf "verify: %s\n"
            (Format.asprintf "%a" Genlibm.pp_verify_report rep);
          if rep.Genlibm.wrong34 > 0 || rep.Genlibm.wrong_narrow > 0 then
            exit 1
        end
  in
  let func =
    Arg.(required & opt (some func_arg) None & info [ "func"; "f" ] ~doc:"Function: exp, exp2, exp10, log, log2, log10.")
  in
  let scheme =
    Arg.(value & opt scheme_arg Polyeval.EstrinFma & info [ "scheme"; "s" ] ~doc:"Evaluation scheme: horner, horner-fma, knuth, estrin, estrin-fma.")
  in
  let ebits = Arg.(value & opt int 5 & info [ "ebits" ] ~doc:"Exponent bits of the input format.") in
  let prec = Arg.(value & opt int 8 & info [ "prec" ] ~doc:"Precision (significand bits incl. hidden) of the input format.") in
  let pieces = Arg.(value & opt (some int) None & info [ "pieces" ] ~doc:"Sub-domains of the reduced domain.") in
  let table_bits = Arg.(value & opt int 4 & info [ "table-bits" ] ~doc:"Log-family reduction table bits.") in
  let verify = Arg.(value & flag & info [ "verify" ] ~doc:"Exhaustively verify the generated function.") in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log the generation loop.") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a correctly rounded elementary function")
    Term.(const run $ func $ scheme $ ebits $ prec $ pieces $ table_bits $ verify $ verbose $ jobs_arg $ cache_dir_arg $ cache_stats_arg)

(* ---------- warm ---------- *)

let warm_cmd =
  let run ebits prec jobs cache_dir cache_stats =
    set_jobs jobs;
    set_cache_dir cache_dir;
    let tin = Softfp.make_fmt ~ebits ~prec in
    let pairs =
      List.map
        (fun f -> (f, { (Rlibm.Config.mini_for f) with Rlibm.Config.tin }))
        Oracle.all
    in
    Printf.printf
      "warming oracle tables for %d functions over %d-bit inputs (%d finite \
       values each, -j %d)\n%!"
      (List.length pairs) (Softfp.width tin)
      (Softfp.count_finite tin) (Parallel.jobs ());
    let counts =
      Genlibm.warm_oracle_cache
        ~log:(fun s -> Printf.printf "  %s\n%!" s)
        pairs
    in
    Printf.printf "warmed %d oracle tables under %s\n" (List.length counts)
      (Cache.dir ());
    report_cache_stats cache_stats
  in
  let ebits = Arg.(value & opt int 5 & info [ "ebits" ] ~doc:"Exponent bits of the input format.") in
  let prec = Arg.(value & opt int 8 & info [ "prec" ] ~doc:"Precision (significand bits incl. hidden) of the input format.") in
  Cmd.v
    (Cmd.info "warm"
       ~doc:
         "Precompute and persist the oracle tables of every function for an \
          input format, fanning the Ziv loops out across the domain pool, \
          so later generate/verify/bench runs start disk-warm")
    Term.(const run $ ebits $ prec $ jobs_arg $ cache_dir_arg $ cache_stats_arg)

(* ---------- oracle ---------- *)

let oracle_cmd =
  let run func x prec =
    let q = Rat.of_string x in
    if not (Oracle.domain_ok func q) then begin
      Printf.eprintf "%s is outside the domain of %s\n" x (Oracle.name func);
      exit 1
    end;
    (match Oracle.exact_value func q with
    | Some y ->
        Printf.printf "%s(%s) = %s exactly\n" (Oracle.name func) x
          (Rat.to_string y)
    | None ->
        let iv = Oracle.enclosure func q ~prec in
        let lo, hi = Ival.to_rats iv in
        Printf.printf "%s(%s) in [%s,\n            %s] (width <= 2^%d)\n"
          (Oracle.name func) x
          (Rat.to_decimal_string ~digits:30 lo)
          (Rat.to_decimal_string ~digits:30 hi)
          (try
             let w = Rat.sub hi lo in
             if Rat.is_zero w then min_int
             else
               let _, e, _ = Rat.approx w ~bits:1 in
               e + 1
           with _ -> 0));
    List.iter
      (fun (name, fmt) ->
        Printf.printf "  %-10s" name;
        List.iter
          (fun mode ->
            let b = Oracle.correctly_round func q ~fmt ~mode in
            Printf.printf " %s=%h" (Softfp.mode_to_string mode)
              (Softfp.to_float fmt b))
          (Softfp.RTO :: Softfp.all_standard_modes);
        print_newline ())
      [
        ("binary16", Softfp.binary16);
        ("bfloat16", Softfp.bfloat16);
        ("binary32", Softfp.binary32);
        ("fp34", Softfp.fp34);
      ]
  in
  let func = Arg.(required & opt (some func_arg) None & info [ "func"; "f" ] ~doc:"Function.") in
  let x = Arg.(required & opt (some string) None & info [ "x" ] ~doc:"Input: an integer, decimal, or p/q rational.") in
  let prec = Arg.(value & opt int 96 & info [ "prec" ] ~doc:"Enclosure precision in bits.") in
  Cmd.v
    (Cmd.info "oracle" ~doc:"Query the correctly rounded oracle")
    Term.(const run $ func $ x $ prec)

(* ---------- cost ---------- *)

let cost_cmd =
  let run degree =
    Printf.printf "operation counts and dependence depth at degree %d:\n" degree;
    List.iter
      (fun scheme ->
        match scheme with
        | Polyeval.Knuth when degree < 4 || degree > 6 ->
            Printf.printf "  %-11s n/a (Knuth adaptation needs degree 4-6)\n"
              (Polyeval.scheme_name scheme)
        | _ ->
            let c = Expr.cost (Polyeval.scheme_expr scheme ~degree) in
            Printf.printf "  %-11s %s\n"
              (Polyeval.scheme_name scheme)
              (Format.asprintf "%a" Expr.pp_cost c))
      Polyeval.all_schemes
  in
  let degree = Arg.(value & opt int 5 & info [ "degree"; "d" ] ~doc:"Polynomial degree.") in
  Cmd.v (Cmd.info "cost" ~doc:"Static cost model of the evaluation schemes")
    Term.(const run $ degree)

let () =
  let doc = "RLibm-style correctly rounded function generator with fast polynomial evaluation" in
  exit (Cmd.eval (Cmd.group (Cmd.info "rlibm_gen" ~doc) [ generate_cmd; oracle_cmd; cost_cmd; warm_cmd ]))
