(* Command-line interface to the staged generation pipeline, oracle,
   cost model and the persistent artifact store.

     rlibm_gen generate --func exp2 --scheme estrin-fma [--ebits 5 --prec 8]
     rlibm_gen stages   --func exp2 --scheme estrin-fma   (per-stage status)
     rlibm_gen warm     [--func log2] [--through poly] [-j N]
                        [--shards S | --shard K/S]   (sharded oracle fill)
     rlibm_gen serve    [--func exp2 --func log2] [--check-scalar] [-j N]
                        [--strict-snapshot]
     rlibm_gen fsck     [--repair] [--max-age SECONDS] [--cache-dir DIR]
     rlibm_gen oracle   --func log2 --x 1.5 [--prec 96]
     rlibm_gen cost     [--degree 5]

   Generation runs through lib/pipeline: each stage (oracle table,
   rounding intervals, reduced constraints, LP polynomial, verdict) is a
   persisted artifact, so an interrupted run resumes from the last
   completed stage and a warm re-run performs zero oracle evaluations
   and zero LP solves.  See README.md for a walkthrough. *)

open Cmdliner

let require_func = function
  | Some f -> f
  | None ->
      Printf.eprintf "missing required option --func\n";
      exit 2

let cfg_for func ~ebits ~prec ~pieces ~table_bits =
  let tin = Softfp.make_fmt ~ebits ~prec in
  {
    (Rlibm.Config.mini_for func) with
    Rlibm.Config.tin;
    pieces =
      (match pieces with
      | Some p -> p
      | None -> (Rlibm.Config.mini_for func).Rlibm.Config.pieces);
    table_bits;
  }

let pieces_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "pieces" ] ~doc:"Sub-domains of the reduced domain.")

let table_bits_arg =
  Arg.(
    value & opt int 4
    & info [ "table-bits" ] ~doc:"Log-family reduction table bits.")

(* ---------- generate ---------- *)

let generate_cmd =
  let run func scheme ebits prec pieces table_bits verify verbose jobs
      cache_dir cache_stats log_level trace =
    let func = require_func func in
    Cli.set_jobs jobs;
    Cli.install_diag ~jobs:(Parallel.jobs ()) ~level:log_level ~trace ();
    Cli.set_cache_dir cache_dir;
    (* at_exit so the counters are reported even on the exit-1 paths. *)
    if cache_stats then at_exit (fun () -> Cli.report_cache_stats true);
    let cfg = cfg_for func ~ebits ~prec ~pieces ~table_bits in
    let tin = cfg.Rlibm.Config.tin in
    let log =
      if verbose then fun s -> Printf.eprintf "%s\n%!" s else fun _ -> ()
    in
    Printf.printf "generating %s / %s for %d-bit inputs (%d finite values)\n%!"
      (Oracle.name func)
      (Polyeval.scheme_name scheme)
      (Softfp.width tin) (Softfp.count_finite tin);
    let print_generated (g : Rlibm.Generate.generated) =
      Printf.printf "%s\n"
        (Format.asprintf "%a" Genlibm.pp_table1_row (Genlibm.table1_row g));
      Array.iteri
        (fun i (piece : Polyeval.compiled) ->
          Printf.printf "piece %d (degree %d): cost %s\n" i
            piece.Polyeval.degree
            (Format.asprintf "%a" Expr.pp_cost (Polyeval.cost piece));
          Array.iteri
            (fun k c -> Printf.printf "  c%d = %h  (%.17g)\n" k c c)
            piece.Polyeval.data)
        g.Rlibm.Generate.pieces
    in
    if verify then begin
      match Pipeline.verified ~log ~cfg ~scheme func with
      | Error err -> Cli.exit_error err
      | Ok (g, rep) ->
          print_generated g;
          Printf.printf "verify: %s\n"
            (Format.asprintf "%a" Genlibm.pp_verify_report rep);
          if rep.Genlibm.wrong34 > 0 || rep.Genlibm.wrong_narrow > 0 then
            Cli.exit_error
              (Diag.Error.Verification_failed
                 {
                   func = Oracle.name func;
                   scheme = Polyeval.scheme_name scheme;
                   wrong34 = rep.Genlibm.wrong34;
                   wrong_narrow = rep.Genlibm.wrong_narrow;
                 })
    end
    else begin
      match Pipeline.generate ~log ~cfg ~scheme func with
      | Error err -> Cli.exit_error err
      | Ok g -> print_generated g
    end
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ] ~doc:"Exhaustively verify the generated function.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Log the generation loop and stage status.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Generate a correctly rounded elementary function through the \
          staged pipeline (resumes from the last completed persisted stage)")
    Term.(
      const run $ Cli.func_arg $ Cli.scheme_arg $ Cli.ebits_arg $ Cli.prec_arg
      $ pieces_arg $ table_bits_arg $ verify $ verbose $ Cli.jobs_arg
      $ Cli.cache_dir_arg $ Cli.cache_stats_arg $ Cli.log_level_arg
      $ Cli.trace_arg)

(* ---------- stages ---------- *)

let stages_cmd =
  let run func scheme ebits prec pieces table_bits verbose jobs cache_dir
      cache_stats log_level trace =
    let func = require_func func in
    Cli.set_jobs jobs;
    Cli.install_diag ~jobs:(Parallel.jobs ()) ~level:log_level ~trace ();
    Cli.set_cache_dir cache_dir;
    let cfg = cfg_for func ~ebits ~prec ~pieces ~table_bits in
    let log =
      if verbose then fun s -> Printf.eprintf "%s\n%!" s else fun _ -> ()
    in
    Printf.printf "pipeline stages for %s / %s (%d-bit inputs):\n%!"
      (Oracle.name func)
      (Polyeval.scheme_name scheme)
      (Softfp.width cfg.Rlibm.Config.tin);
    let events, result = Pipeline.run_stages ~log ~cfg ~scheme func in
    List.iter
      (fun ev -> Printf.printf "  %s\n" (Format.asprintf "%a" Pipeline.pp_event ev))
      events;
    Cli.report_cache_stats cache_stats;
    match result with
    | Error err -> Cli.exit_error err
    | Ok (_, rep) ->
        Printf.printf "verdict: %s\n"
          (Format.asprintf "%a" Genlibm.pp_verify_report rep);
        if rep.Genlibm.wrong34 > 0 || rep.Genlibm.wrong_narrow > 0 then
          Cli.exit_error
            (Diag.Error.Verification_failed
               {
                 func = Oracle.name func;
                 scheme = Polyeval.scheme_name scheme;
                 wrong34 = rep.Genlibm.wrong34;
                 wrong_narrow = rep.Genlibm.wrong_narrow;
               })
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log stage execution.")
  in
  Cmd.v
    (Cmd.info "stages"
       ~doc:
         "Run (or load) every pipeline stage for one function and scheme \
          and print each stage's hit/rebuilt status and timing — the \
          resume / invalidation report")
    Term.(
      const run $ Cli.func_arg $ Cli.scheme_arg $ Cli.ebits_arg $ Cli.prec_arg
      $ pieces_arg $ table_bits_arg $ verbose $ Cli.jobs_arg
      $ Cli.cache_dir_arg $ Cli.cache_stats_arg $ Cli.log_level_arg
      $ Cli.trace_arg)

(* ---------- warm ---------- *)

let warm_cmd =
  let run func scheme_opt through ebits prec pieces table_bits shards shard
      jobs cache_dir cache_stats log_level trace =
    Cli.set_jobs jobs;
    Cli.install_diag ~jobs:(Parallel.jobs ()) ~level:log_level ~trace ();
    Cli.set_cache_dir cache_dir;
    let through =
      match Pipeline.stage_of_name through with
      | Some s -> s
      | None ->
          Printf.eprintf
            "unknown stage %S (oracle, intervals, constraints, poly, verdict)\n"
            through;
          exit 2
    in
    let shards, only_shard = Cli.resolve_shards ~shards ~shard in
    (match (only_shard, through) with
    | Some _, Pipeline.Oracle -> ()
    | Some _, _ ->
        Printf.eprintf
          "--shard K/S warms a single oracle shard; combine it with \
           --through oracle\n";
        exit 2
    | None, _ -> ());
    let funcs = Option.fold ~none:Oracle.all ~some:(fun f -> [ f ]) func in
    let schemes =
      match scheme_opt with Some s -> [ s ] | None -> Polyeval.paper_schemes
    in
    let pairs =
      List.map (fun f -> (f, cfg_for f ~ebits ~prec ~pieces ~table_bits)) funcs
    in
    let tin = Softfp.make_fmt ~ebits ~prec in
    (* Everything warm prints is progress narration, not a product:
       it all goes to stderr so stdout stays machine-parseable (and
       empty) in scripted warm jobs. *)
    Printf.eprintf
      "warming pipeline stages through %s for %d functions over %d-bit \
       inputs (%d finite values each, -j %d%s)\n%!"
      (Pipeline.stage_name through)
      (List.length pairs) (Softfp.width tin)
      (Softfp.count_finite tin) (Parallel.jobs ())
      (match (shards, only_shard) with
      | 1, _ -> ""
      | s, None -> Printf.sprintf ", %d oracle shards" s
      | s, Some k -> Printf.sprintf ", oracle shard %d/%d only" k s);
    let report =
      match
        Pipeline.warm
          ~log:(fun s -> Printf.eprintf "  %s\n%!" s)
          ~schemes ~through ~shards ?only_shard pairs
      with
      | Ok report -> report
      | Error err -> Cli.exit_error err
    in
    List.iter
      (fun (f, n) ->
        Printf.eprintf "  %s: %d oracle entries\n%!" (Oracle.name f) n)
      report.Pipeline.wm_entries;
    (* A CI warm job must not exit 0 with a half-filled store: every
       skipped generation is listed and turns the run into a failure. *)
    (match report.Pipeline.wm_failed with
    | [] ->
        Printf.eprintf "warmed %d functions under %s\n"
          (List.length report.Pipeline.wm_entries)
          (Cache.dir ())
    | failed ->
        Printf.eprintf
          "warmed %d functions under %s; %d generations failed (skipped):\n"
          (List.length report.Pipeline.wm_entries)
          (Cache.dir ()) (List.length failed);
        List.iter
          (fun (f, scheme, err) ->
            Printf.eprintf "  %s/%s: %s\n" (Oracle.name f)
              (Polyeval.scheme_name scheme)
              (Diag.Error.to_string err))
          failed);
    (* A warm whose publishes failed cached nothing, however well the
       in-memory generation went: that is a failure of the one job warm
       exists to do. *)
    (match report.Pipeline.wm_store_failed with
    | [] -> ()
    | failed ->
        Printf.eprintf "%d store publishes failed:\n" (List.length failed);
        List.iter
          (fun (f, err) ->
            Printf.eprintf "  %s: %s\n" (Oracle.name f)
              (Diag.Error.to_string err))
          failed);
    Cli.report_cache_stats cache_stats;
    (* Exit through the first failure's typed code so drivers can
       dispatch on it (generation failures first, then publish
       failures). *)
    match (report.Pipeline.wm_failed, report.Pipeline.wm_store_failed) with
    | (_, _, err) :: _, _ -> Cli.exit_error err
    | [], (_, err) :: _ -> Cli.exit_error err
    | [], [] -> ()
  in
  let scheme_opt =
    Arg.(
      value
      & opt (some Cli.scheme_conv) None
      & info [ "scheme"; "s" ]
          ~doc:"Warm only this scheme's polynomial/verdict stages (default: \
                all paper schemes).")
  in
  let through =
    Arg.(
      value & opt string "verdict"
      & info [ "through" ] ~docv:"STAGE"
          ~doc:
            "Deepest stage to pre-fill: oracle, intervals, constraints, \
             poly or verdict.  Warming through a shallow stage and \
             re-running generate later exercises the resume path.")
  in
  Cmd.v
    (Cmd.info "warm"
       ~doc:
         "Pre-fill the persistent artifact store: run the staged pipeline \
          through the requested stage for every function (or --func), so \
          later generate/verify/bench runs start disk-warm.  --shards S \
          splits the oracle stage into resumable content-keyed shard \
          artifacts (kill and re-run, or run several processes against \
          one store); --shard K/S warms a single shard.  Exits non-zero \
          if any generation was skipped.")
    Term.(
      const run $ Cli.func_arg $ scheme_opt $ through $ Cli.ebits_arg
      $ Cli.prec_arg $ pieces_arg $ table_bits_arg $ Cli.shards_arg
      $ Cli.shard_arg $ Cli.jobs_arg $ Cli.cache_dir_arg
      $ Cli.cache_stats_arg $ Cli.log_level_arg $ Cli.trace_arg)

(* ---------- serve ---------- *)

let serve_cmd =
  let run funcs scheme ebits prec pieces table_bits count seed check_scalar
      print_bits bench strict_snapshot verbose jobs cache_dir cache_stats
      log_level trace =
    Cli.set_jobs jobs;
    Cli.install_diag ~jobs:(Parallel.jobs ()) ~level:log_level ~trace ();
    Cli.set_cache_dir cache_dir;
    if cache_stats then at_exit (fun () -> Cli.report_cache_stats true);
    let log =
      if verbose then fun s -> Printf.eprintf "%s\n%!" s else fun _ -> ()
    in
    let funcs = if funcs = [] then Oracle.all else funcs in
    let specs =
      List.map
        (fun f -> (f, scheme, cfg_for f ~ebits ~prec ~pieces ~table_bits))
        funcs
    in
    (* Job-count-dependent chatter goes to stderr: stdout must be
       bit-identical at every -j (tools/check.sh diffs it). *)
    Printf.eprintf "building snapshot of %d functions (-j %d)\n%!"
      (List.length specs) (Parallel.jobs ());
    match Serve.build ~log ~strict:strict_snapshot specs with
    | Error err -> Cli.exit_error err
    | Ok snap ->
        Printf.printf "snapshot %s (%d functions)\n" (Serve.key snap)
          (List.length (Serve.entries snap));
        List.iter
          (fun (e : Serve.entry) ->
            let func = e.Serve.e_func in
            let tin = e.Serve.e_cfg.Rlibm.Config.tin in
            let inputs =
              match count with
              | Some c -> Genlibm.inputs_sampled tin ~count:c ~seed
              | None -> Genlibm.inputs_exhaustive tin
            in
            let out = Serve.eval_batch snap func inputs in
            let buf = Buffer.create (Array.length out * 8) in
            Array.iter
              (fun v -> Buffer.add_int64_le buf (Int64.bits_of_float v))
              out;
            Printf.printf "%-6s %-11s %d inputs  results-md5 %s\n"
              (Oracle.name func)
              (Polyeval.scheme_name e.Serve.e_scheme)
              (Array.length inputs)
              (Digest.to_hex (Digest.bytes (Buffer.to_bytes buf)));
            if print_bits then
              Array.iteri
                (fun i x ->
                  Printf.printf "%s %Lx %Lx\n" (Oracle.name func) x
                    (Int64.bits_of_float out.(i)))
                inputs;
            if check_scalar then begin
              let bad = ref 0 in
              Array.iteri
                (fun i x ->
                  let s = Genlibm.eval_bits e.Serve.e_impl x in
                  if
                    not
                      (Int64.equal (Int64.bits_of_float s)
                         (Int64.bits_of_float out.(i)))
                  then incr bad)
                inputs;
              if !bad > 0 then begin
                Printf.eprintf
                  "%s: %d batched results differ from scalar eval_bits\n"
                  (Oracle.name func) !bad;
                exit 1
              end;
              Printf.printf "%-6s scalar check: %d/%d bit-identical\n"
                (Oracle.name func) (Array.length inputs) (Array.length inputs)
            end;
            if bench then begin
              (* Timings are machine-dependent, so they go to stderr:
                 stdout stays bit-identical across runs and job counts
                 (tools/check.sh diffs it). *)
              let n = Array.length inputs in
              let src = Genlibm.create_src n and dst = Genlibm.create_dst n in
              Array.iteri (fun i x -> Bigarray.Array1.set src i x) inputs;
              let time f =
                f ();
                let t0 = Unix.gettimeofday () in
                f ();
                let once = Unix.gettimeofday () -. t0 in
                let reps =
                  Stdlib.max 3 (int_of_float (0.2 /. Float.max 1e-6 once))
                in
                let t0 = Unix.gettimeofday () in
                for _ = 1 to reps do
                  f ()
                done;
                (Unix.gettimeofday () -. t0)
                /. float_of_int reps /. float_of_int n *. 1e9
              in
              let scalar_ns =
                time (fun () ->
                    ignore
                      (Parallel.map_array
                         (fun x -> Genlibm.eval_bits e.Serve.e_impl x)
                         inputs))
              in
              let kernel_ns =
                time (fun () -> Serve.eval_batch_into snap func ~src ~dst)
              in
              Printf.eprintf
                "%-6s bench: scalar %.1f ns/eval, kernel %.1f ns/eval \
                 (%.2fx, %d inputs, -j %d)\n%!"
                (Oracle.name func) scalar_ns kernel_ns
                (if kernel_ns > 0.0 then scalar_ns /. kernel_ns else 0.0)
                n (Parallel.jobs ())
            end)
          (Serve.entries snap)
  in
  let count =
    Arg.(
      value
      & opt (some int) None
      & info [ "count" ]
          ~doc:
            "Evaluate a sampled batch of this many inputs instead of every \
             finite input of the format.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Sampling seed (with $(b,--count)).")
  in
  let check_scalar =
    Arg.(
      value & flag
      & info [ "check-scalar" ]
          ~doc:
            "Re-evaluate every input through the scalar eval path and fail \
             unless the batched results are bit-identical.")
  in
  let print_bits =
    Arg.(
      value & flag
      & info [ "print-bits" ]
          ~doc:"Print every (input, result) bit pattern pair.")
  in
  let bench =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:
            "Time the batch on the scalar eval path and on the \
             zero-allocation kernel path and report ns/eval and the \
             speedup on stderr (stdout stays job-count-invariant).")
  in
  let strict_snapshot =
    Arg.(
      value & flag
      & info [ "strict-snapshot" ]
          ~doc:
            "Fail with the typed store error when the persisted snapshot \
             is corrupt or unreadable, instead of the default graceful \
             degradation (regenerate through the pipeline under a \
             diagnostic warning).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Log snapshot resolution on stderr.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Build (or load) an immutable servable snapshot of generated \
          functions and evaluate input batches against it.  A warm \
          artifact store satisfies the snapshot with zero oracle \
          evaluations and zero LP solves; a warm snapshot loads from a \
          single store entry.")
    Term.(
      const run $ Cli.func_list_arg $ Cli.scheme_arg $ Cli.ebits_arg
      $ Cli.prec_arg $ pieces_arg $ table_bits_arg $ count $ seed
      $ check_scalar $ print_bits $ bench $ strict_snapshot $ verbose
      $ Cli.jobs_arg $ Cli.cache_dir_arg $ Cli.cache_stats_arg
      $ Cli.log_level_arg $ Cli.trace_arg)

(* ---------- fsck ---------- *)

let fsck_cmd =
  let run repair max_age cache_dir log_level trace =
    Cli.install_diag ~level:log_level ~trace ();
    Cli.set_cache_dir cache_dir;
    match Cache.fsck ~repair ~max_age () with
    | Error err -> Cli.exit_error err
    | Ok r ->
        Printf.printf "%s\n" (Format.asprintf "%a" Cache.pp_fsck_report r);
        (* Clean store (or just repaired): 0.  Findings the operator
           still has to deal with: 1. *)
        if not (Cache.fsck_clean r || repair) then exit 1
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Delete what the scan flags: stale temp files and aged \
             quarantine files.  (Invalid entries are quarantined by the \
             scan itself, with or without this flag — exactly what a \
             reader would do on load.)")
  in
  let max_age =
    Arg.(
      value & opt float 3600.0
      & info [ "max-age" ] ~docv:"SECONDS"
          ~doc:
            "Age threshold for flagging a live writer's temp files and \
             quarantined $(b,.corrupt-*) files.  A dead writer's temps \
             are flagged regardless of age.")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Audit the persistent artifact store: validate every entry's \
          header and checksum against its embedded key (quarantining \
          invalid ones), and report orphaned temp files from crashed \
          writers and aged quarantine files.  Exits 1 when findings \
          remain, 0 when the store is clean or was repaired.")
    Term.(
      const run $ repair $ max_age $ Cli.cache_dir_arg $ Cli.log_level_arg
      $ Cli.trace_arg)

(* ---------- oracle ---------- *)

let oracle_cmd =
  let run func x prec =
    let func = require_func func in
    let q = Rat.of_string x in
    if not (Oracle.domain_ok func q) then begin
      Printf.eprintf "%s is outside the domain of %s\n" x (Oracle.name func);
      exit 1
    end;
    (match Oracle.exact_value func q with
    | Some y ->
        Printf.printf "%s(%s) = %s exactly\n" (Oracle.name func) x
          (Rat.to_string y)
    | None ->
        let iv = Oracle.enclosure func q ~prec in
        let lo, hi = Ival.to_rats iv in
        Printf.printf "%s(%s) in [%s,\n            %s] (width <= 2^%d)\n"
          (Oracle.name func) x
          (Rat.to_decimal_string ~digits:30 lo)
          (Rat.to_decimal_string ~digits:30 hi)
          (try
             let w = Rat.sub hi lo in
             if Rat.is_zero w then min_int
             else
               let _, e, _ = Rat.approx w ~bits:1 in
               e + 1
           with _ -> 0));
    List.iter
      (fun (name, fmt) ->
        Printf.printf "  %-10s" name;
        List.iter
          (fun mode ->
            let b = Oracle.correctly_round func q ~fmt ~mode in
            Printf.printf " %s=%h" (Softfp.mode_to_string mode)
              (Softfp.to_float fmt b))
          (Softfp.RTO :: Softfp.all_standard_modes);
        print_newline ())
      [
        ("binary16", Softfp.binary16);
        ("bfloat16", Softfp.bfloat16);
        ("binary32", Softfp.binary32);
        ("fp34", Softfp.fp34);
      ]
  in
  let x = Arg.(required & opt (some string) None & info [ "x" ] ~doc:"Input: an integer, decimal, or p/q rational.") in
  let prec = Arg.(value & opt int 96 & info [ "prec" ] ~doc:"Enclosure precision in bits.") in
  Cmd.v
    (Cmd.info "oracle" ~doc:"Query the correctly rounded oracle")
    Term.(const run $ Cli.func_arg $ x $ prec)

(* ---------- cost ---------- *)

let cost_cmd =
  let run degree =
    Printf.printf "operation counts and dependence depth at degree %d:\n" degree;
    List.iter
      (fun scheme ->
        match scheme with
        | Polyeval.Knuth when degree < 4 || degree > 6 ->
            Printf.printf "  %-11s n/a (Knuth adaptation needs degree 4-6)\n"
              (Polyeval.scheme_name scheme)
        | _ ->
            let c = Expr.cost (Polyeval.scheme_expr scheme ~degree) in
            Printf.printf "  %-11s %s\n"
              (Polyeval.scheme_name scheme)
              (Format.asprintf "%a" Expr.pp_cost c))
      Polyeval.all_schemes
  in
  let degree = Arg.(value & opt int 5 & info [ "degree"; "d" ] ~doc:"Polynomial degree.") in
  Cmd.v (Cmd.info "cost" ~doc:"Static cost model of the evaluation schemes")
    Term.(const run $ degree)

let () =
  let doc = "RLibm-style correctly rounded function generator with fast polynomial evaluation" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "rlibm_gen" ~doc)
          [
            generate_cmd;
            stages_cmd;
            warm_cmd;
            serve_cmd;
            fsck_cmd;
            oracle_cmd;
            cost_cmd;
          ]))
