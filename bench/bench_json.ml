(* Shared envelope for every BENCH_*.json artifact the harness emits.

   All bench JSON files carry the same header fields — schema_version,
   kind, timestamp, commit, host, jobs, input_bits — so files from
   different PRs and different modes (polynomial ns/call, staged
   generation, serve throughput) form one comparable trajectory; only
   the body under the kind-specific key differs.  Bump [schema_version]
   whenever a header field changes meaning. *)

let schema_version = 1

let first_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then None else Some line
  with Unix.Unix_error _ | Sys_error _ -> None

let or_unknown = function Some s -> s | None -> "unknown"

(* The commit the numbers were measured at; "unknown" outside a git
   checkout (e.g. an exported tarball). *)
let commit () =
  or_unknown (first_line "git rev-parse --short HEAD 2>/dev/null")

(* [write_file path ~kind ~jobs ~input_bits body] writes the envelope
   and calls [body oc] to print the kind-specific fields.  [body] must
   print complete ["key": value] lines, two-space indented, the last
   one without a trailing comma. *)
let write_file path ~kind ~jobs ~input_bits body =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"schema_version\": %d,\n\
        \  \"kind\": %S,\n\
        \  \"timestamp\": %.0f,\n\
        \  \"commit\": %S,\n"
        schema_version kind (Unix.time ()) (commit ());
      Printf.fprintf oc
        "  \"host\": {\"hostname\": %S, \"os\": %S, \"arch\": %S, \
         \"cores\": %d, \"ocaml\": %S},\n"
        (or_unknown (try Some (Unix.gethostname ()) with Unix.Unix_error _ -> None))
        (or_unknown (first_line "uname -s 2>/dev/null"))
        (or_unknown (first_line "uname -m 2>/dev/null"))
        (Domain.recommended_domain_count ())
        Sys.ocaml_version;
      Printf.fprintf oc "  \"jobs\": %d,\n  \"input_bits\": %d,\n" jobs
        input_bits;
      body oc;
      output_string oc "}\n")
