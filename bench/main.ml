(* Benchmark and experiment harness: regenerates every table and data
   figure of the paper's evaluation section on the reduced-width universe.

     E1  Table 1   — properties of the generated polynomial approximations
     E2  Table 2 + Figure 6 — speedup of RLibm-Knuth / RLibm-Estrin /
                    RLibm-Estrin+FMA over RLibm's Horner baseline
     E3  §6.3      — post-process adaptation vs the integrated loop
     E4  §6.3      — correctness for all representations and rounding modes

   Usage:
     dune exec bench/main.exe                      (everything)
     dune exec bench/main.exe -- --table1          (just E1)
     dune exec bench/main.exe -- --table2          (just E2: timings)
     dune exec bench/main.exe -- --post-process    (just E3)
     dune exec bench/main.exe -- --correctness     (just E4)
     dune exec bench/main.exe -- --cost            (static cost model)
     dune exec bench/main.exe -- --quick           (2 functions only)
     dune exec bench/main.exe -- -j N              (N-way generation/verify
                                                    fan-out; default: all
                                                    cores; -j 1 = the exact
                                                    sequential path)
     dune exec bench/main.exe -- --json PATH       (also write the E2
                                                    timings as JSON for
                                                    perf trajectory
                                                    tracking)
     dune exec bench/main.exe -- --gen-json PATH   (cold vs warm staged
                                                    generation timings per
                                                    function, in a fresh
                                                    store directory)
     dune exec bench/main.exe -- --serve-bench     (serving hot path:
                                                    scalar batch vs the
                                                    zero-allocation kernel,
                                                    ns/eval + evals/sec +
                                                    minor words/eval)
     dune exec bench/main.exe -- --serve-json PATH (write the serve-bench
                                                    rows as JSON)
     dune exec bench/main.exe -- --serve-batch-pow N  (batch size 2^N;
                                                    default 16)
     dune exec bench/main.exe -- --shard-bench     (oracle stage: cold
                                                    unsharded vs cold
                                                    sharded vs resumed
                                                    from a half-filled
                                                    shard store)
     dune exec bench/main.exe -- --shard-json PATH (write the shard-bench
                                                    rows as JSON)
     dune exec bench/main.exe -- --shards S        (shard count for
                                                    --shard-bench;
                                                    default 4)
     dune exec bench/main.exe -- --cache-dir DIR   (relocate the store)
     dune exec bench/main.exe -- --cache-stats     (report artifact store
                                                    hit/miss/corrupt
                                                    counters, per kind,
                                                    on stderr)

   Generation runs through the staged pipeline (lib/pipeline): the first
   run persists every stage — oracle table, rounding intervals, merged
   constraints, per-scheme polynomial, verdict — through the hardened
   Cache store (default ./.oracle-cache; RLIBM_CACHE_DIR relocates it,
   RLIBM_NO_DISK_CACHE=1 disables it); subsequent runs load the deepest
   stage directly and perform zero oracle evaluations and zero LP
   solves.  Corrupt or stale entries are quarantined and regenerated,
   never trusted — --cache-stats makes that visible. *)

open Bechamel
open Toolkit

(* ---------- shared generation ---------- *)

type entry = {
  func : Oracle.func;
  scheme : Polyeval.scheme;
  gen : (Rlibm.Generate.generated, Diag.Error.t) result;
}

let generate_grid funcs =
  List.concat_map
    (fun func ->
      let cfg = Rlibm.Config.mini_for func in
      List.map
        (fun scheme ->
          { func; scheme; gen = Pipeline.generate ~cfg ~scheme func })
        Polyeval.paper_schemes)
    funcs

(* ---------- E1: Table 1 ---------- *)

let print_table1 grid =
  print_endline "== E1: Table 1 — generated polynomial approximations ==";
  print_endline
    "(paper: Table 1; reduced-width universe, so absolute numbers differ —\n\
     the shape (low degrees, few pieces, handfuls of special inputs) is\n\
     the reproduction target)";
  Printf.printf "%-7s %-11s %7s %-10s %9s\n" "f" "scheme" "pieces" "degrees"
    "specials";
  List.iter
    (fun e ->
      match e.gen with
      | Error err ->
          Printf.printf "%-7s %-11s  FAILED: %s\n" (Oracle.name e.func)
            (Polyeval.scheme_name e.scheme)
            (Diag.Error.to_string err)
      | Ok g ->
          let row = Genlibm.table1_row g in
          Printf.printf "%-7s %-11s %7d %-10s %9d\n" (Oracle.name e.func)
            (Polyeval.scheme_name e.scheme) row.Genlibm.n_pieces
            (String.concat "," (List.map string_of_int row.Genlibm.degrees))
            row.Genlibm.n_specials)
    grid;
  print_newline ()

(* ---------- E2: Table 2 and Figure 6 ---------- *)

(* Timing methodology: every generated function is evaluated over the same
   sweep of valid polynomial-path inputs (the shared range reduction and
   output compensation are part of the measured path, as in the paper's
   rdtscp harness; the per-input special-table branch is excluded because
   our table is a hash lookup, not the artifact's two-instruction compare
   chain).  One Bechamel sample evaluates the whole sweep; the analyzer's
   OLS estimate divided by the sweep size gives ns/call. *)

let sweep_inputs (g : Rlibm.Generate.generated) =
  let tin = g.Rlibm.Generate.cfg.Rlibm.Config.tin in
  let acc = ref [] in
  Softfp.iter_finite tin (fun b ->
      let xf = Softfp.to_float tin b in
      if
        g.Rlibm.Generate.family.Rlibm.Reduction.shortcut xf = None
        && not (Hashtbl.mem g.Rlibm.Generate.specials b)
      then acc := xf :: !acc);
  Array.of_list !acc

let bench_tests grid =
  List.filter_map
    (fun e ->
      match e.gen with
      | Error _ -> None
      | Ok g ->
          let xs = sweep_inputs g in
          let name =
            Printf.sprintf "%s/%s" (Oracle.name e.func)
              (Polyeval.scheme_name e.scheme)
          in
          let run () =
            let acc = ref 0.0 in
            for i = 0 to Array.length xs - 1 do
              acc := !acc +. Genlibm.eval_float g (Array.unsafe_get xs i)
            done;
            !acc
          in
          Some ((e.func, e.scheme, Array.length xs), Test.make ~name (Staged.stage run)))
    grid

let run_bechamel tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~stabilize:true ()
  in
  let grouped =
    Test.make_grouped ~name:"polyeval" ~fmt:"%s %s" (List.map snd tests)
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

(* One timing measurement: median-estimate ns per call for a (func,
   scheme) cell, from Bechamel's OLS fit over the sweep. *)
type timing = { t_func : Oracle.func; t_scheme : Polyeval.scheme; t_ns : float }

let measure_grid grid =
  let tests = bench_tests grid in
  let results = run_bechamel tests in
  List.filter_map
    (fun ((func, scheme, sweep), _) ->
      let name =
        Printf.sprintf "polyeval %s/%s" (Oracle.name func)
          (Polyeval.scheme_name scheme)
      in
      match Hashtbl.find_opt results name with
      | Some ols -> (
          match Analyze.OLS.estimates ols with
          | Some (t :: _) ->
              Some { t_func = func; t_scheme = scheme; t_ns = t /. float_of_int sweep }
          | _ -> None)
      | None -> None)
    tests

let time_of timings func scheme =
  List.find_map
    (fun t -> if t.t_func = func && t.t_scheme = scheme then Some t.t_ns else None)
    timings

let speedup_pct th t = 100.0 *. ((th /. t) -. 1.0)

let print_table2 timings =
  print_endline
    "== E2: Table 2 / Figure 6 — speedup over RLibm (Horner baseline) ==";
  let funcs =
    List.sort_uniq compare (List.map (fun t -> t.t_func) timings)
  in
  let fast_schemes = [ Polyeval.Knuth; Polyeval.Estrin; Polyeval.EstrinFma ] in
  Printf.printf "%-8s %10s | %9s %9s %9s   (speedup vs horner)\n" "f"
    "horner ns" "knuth" "estrin" "estr+fma";
  let sums = Hashtbl.create 4 in
  List.iter
    (fun func ->
      match time_of timings func Polyeval.Horner with
      | None -> ()
      | Some th ->
          Printf.printf "%-8s %10.2f |" (Oracle.name func) th;
          List.iter
            (fun scheme ->
              match time_of timings func scheme with
              | None -> Printf.printf "%9s" "n/a"
              | Some t ->
                  let speedup = speedup_pct th t in
                  let s, n =
                    Option.value ~default:(0.0, 0) (Hashtbl.find_opt sums scheme)
                  in
                  Hashtbl.replace sums scheme (s +. speedup, n + 1);
                  Printf.printf "%8.1f%%" speedup)
            fast_schemes;
          print_newline ())
    funcs;
  Printf.printf "%-8s %10s |" "average" "";
  List.iter
    (fun scheme ->
      match Hashtbl.find_opt sums scheme with
      | Some (s, n) when n > 0 -> Printf.printf "%8.1f%%" (s /. float_of_int n)
      | _ -> Printf.printf "%9s" "n/a")
    fast_schemes;
  print_newline ();
  print_endline
    "(paper, x86 vfmadd testbed: knuth ~4%, estrin ~15%, estrin+fma ~24%;\n\
     our Float.fma is a libm call — see EXPERIMENTS.md for the discussion)";
  (* Figure 6 as a data series. *)
  print_endline "\n-- Figure 6 series (speedup % per function) --";
  List.iter
    (fun scheme ->
      Printf.printf "%-11s" (Polyeval.scheme_name scheme);
      List.iter
        (fun func ->
          match (time_of timings func Polyeval.Horner, time_of timings func scheme) with
          | Some th, Some t ->
              Printf.printf " %s=%.1f" (Oracle.name func) (speedup_pct th t)
          | _ -> Printf.printf " %s=n/a" (Oracle.name func))
        funcs;
      print_newline ())
    fast_schemes;
  print_newline ()

(* Machine-readable E2 results, for BENCH_*.json perf trajectory
   tracking across PRs (standard envelope: see bench_json.ml). *)
let write_json path ~jobs timings =
  let n = List.length timings in
  Bench_json.write_file path ~kind:"polyeval-ns" ~jobs
    ~input_bits:(Softfp.width Rlibm.Config.mini_tin)
    (fun oc ->
      Printf.fprintf oc "  \"results\": [\n";
      List.iteri
        (fun i t ->
          let speedup =
            match time_of timings t.t_func Polyeval.Horner with
            | Some th when t.t_ns > 0.0 -> speedup_pct th t.t_ns
            | _ -> 0.0
          in
          Printf.fprintf oc
            "    {\"func\": %S, \"scheme\": %S, \"median_ns\": %.4f, \
             \"speedup_vs_horner_pct\": %.2f}%s\n"
            (Oracle.name t.t_func)
            (Polyeval.scheme_name t.t_scheme)
            t.t_ns speedup
            (if i = n - 1 then "" else ","))
        timings;
      Printf.fprintf oc "  ]\n");
  Printf.eprintf "wrote %s (%d timing rows)\n%!" path n

(* ---------- static cost model (the mechanism behind Figure 6) ---------- *)

let print_cost_model () =
  print_endline
    "== Cost model — operation counts and dependence depth (§3-§4) ==";
  Printf.printf "%-11s %s\n" "scheme" "degree:  4             5             6";
  List.iter
    (fun scheme ->
      Printf.printf "%-11s         " (Polyeval.scheme_name scheme);
      List.iter
        (fun d ->
          let c = Expr.cost (Polyeval.scheme_expr scheme ~degree:d) in
          Printf.printf "%dm+%da+%df/d%-2d  "
            c.Expr.mults c.Expr.adds c.Expr.fmas c.Expr.depth)
        [ 4; 5; 6 ];
      print_newline ())
    Polyeval.all_schemes;
  print_endline
    "(m=mul, a=add, f=fma, d=critical-path depth under perfect ILP;\n\
     Horner's serial 2d chain vs Estrin's ~2·log2(d) is the Figure-6\n\
     mechanism, and Knuth trades multiplies for adds per §3)\n"

(* ---------- E3: post-process pitfall ---------- *)

let count_post_process_wrong (horner_g : Rlibm.Generate.generated) scheme
    inputs =
  let tin = horner_g.Rlibm.Generate.cfg.Rlibm.Config.tin in
  let tout = Rlibm.Config.tout horner_g.Rlibm.Generate.cfg in
  let adapted =
    Array.map
      (fun (p : Polyeval.compiled) -> Polyeval.compile scheme p.Polyeval.data)
      horner_g.Rlibm.Generate.pieces
  in
  if Array.exists (fun c -> c = None) adapted then None
  else begin
    let adapted = Array.map Option.get adapted in
    let wrong = ref 0 in
    Array.iter
      (fun x ->
        if
          Softfp.is_finite tin x
          && not (Hashtbl.mem horner_g.Rlibm.Generate.specials x)
        then begin
          let xf = Softfp.to_float tin x in
          match horner_g.Rlibm.Generate.family.Rlibm.Reduction.shortcut xf with
          | Some _ -> ()
          | None -> (
              let red =
                horner_g.Rlibm.Generate.family.Rlibm.Reduction.reduce xf
              in
              let v =
                red.Rlibm.Reduction.oc
                  (adapted.(red.Rlibm.Reduction.piece).Polyeval.eval
                     red.Rlibm.Reduction.r)
              in
              let y_impl = Genlibm.round_result tout Softfp.RTO v in
              match Hashtbl.find_opt horner_g.Rlibm.Generate.oracle x with
              | Some y_true when not (Int64.equal y_impl y_true) -> incr wrong
              | _ -> ())
        end)
      inputs;
    Some !wrong
  end

let print_post_process grid =
  print_endline "== E3: §6.3 — post-process adaptation vs integrated loop ==";
  Printf.printf "%-7s %-11s %20s %20s\n" "f" "scheme" "post-proc #wrong"
    "integrated #specials";
  List.iter
    (fun e ->
      if e.scheme = Polyeval.Horner then
        match e.gen with
        | Error _ -> ()
        | Ok horner_g ->
            let inputs =
              Genlibm.inputs_exhaustive
                horner_g.Rlibm.Generate.cfg.Rlibm.Config.tin
            in
            List.iter
              (fun scheme ->
                let post = count_post_process_wrong horner_g scheme inputs in
                let integrated =
                  match
                    List.find_opt
                      (fun e2 -> e2.func = e.func && e2.scheme = scheme)
                      grid
                  with
                  | Some { gen = Ok g; _ } ->
                      string_of_int (Rlibm.Generate.n_specials g)
                  | _ -> "failed"
                in
                Printf.printf "%-7s %-11s %20s %20s\n" (Oracle.name e.func)
                  (Polyeval.scheme_name scheme)
                  (match post with None -> "n/a" | Some w -> string_of_int w)
                  integrated)
              [ Polyeval.Knuth; Polyeval.Estrin; Polyeval.EstrinFma ])
    grid;
  print_newline ()

(* ---------- E4: multi-representation correctness ---------- *)

let print_correctness grid =
  print_endline
    "== E4: correctness for all representations and rounding modes ==";
  List.iter
    (fun e ->
      match e.gen with
      | Error err ->
          Printf.printf "%-7s %-11s FAILED: %s\n" (Oracle.name e.func)
            (Polyeval.scheme_name e.scheme)
            (Diag.Error.to_string err)
      | Ok g ->
          (* The verdict stage: persisted like every other artifact, so a
             re-run of the harness loads it instead of re-verifying. *)
          let rep =
            match
              Pipeline.verified ~cfg:g.Rlibm.Generate.cfg ~scheme:e.scheme
                e.func
            with
            | Ok (_, rep) -> rep
            | Error _ ->
                Genlibm.verify g
                  ~inputs:
                    (Genlibm.inputs_exhaustive
                       g.Rlibm.Generate.cfg.Rlibm.Config.tin)
          in
          Printf.printf "%-7s %-11s %s\n%!" (Oracle.name e.func)
            (Polyeval.scheme_name e.scheme)
            (Format.asprintf "%a" Genlibm.pp_verify_report rep))
    grid;
  print_newline ()

(* ---------- staged-generation timings (cold vs warm store) ---------- *)

(* End-to-end pipeline wall time per function — generate + verify through
   lib/pipeline — measured twice against a fresh store directory: cold
   (every stage rebuilt) and warm (every stage loaded; zero oracle
   evaluations, zero LP solves).  The in-process oracle memo is dropped
   between the runs so the warm figure measures the disk path. *)

let rebuilt_stages () =
  List.length
    (List.filter
       (fun e -> e.Pipeline.ev_status = Pipeline.Rebuilt)
       (Pipeline.events ()))

type gen_timing = {
  g_func : Oracle.func;
  g_cold_s : float;
  g_warm_s : float;
  g_cold_rebuilt : int;
  g_warm_rebuilt : int;
  g_ok : bool;
}

let measure_generation funcs =
  let scheme = Polyeval.EstrinFma in
  let saved = Cache.dir () in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rlibm-bench-gen-%d" (Unix.getpid ()))
  in
  (try Sys.mkdir tmp 0o755 with Sys_error _ -> ());
  Cache.set_dir tmp;
  Fun.protect
    ~finally:(fun () -> Cache.set_dir saved)
    (fun () ->
      List.map
        (fun func ->
          let cfg = Rlibm.Config.mini_for func in
          let timed () =
            Rlibm.Constraints.clear_memory_cache ();
            Pipeline.reset_events ();
            let t0 = Unix.gettimeofday () in
            let r = Pipeline.verified ~cfg ~scheme func in
            (Unix.gettimeofday () -. t0, rebuilt_stages (), r)
          in
          let cold_s, cold_rebuilt, cold = timed () in
          let warm_s, warm_rebuilt, warm = timed () in
          Printf.eprintf
            "%-7s cold %6.2fs (%d stages rebuilt)  warm %6.3fs (%d rebuilt)\n%!"
            (Oracle.name func) cold_s cold_rebuilt warm_s warm_rebuilt;
          {
            g_func = func;
            g_cold_s = cold_s;
            g_warm_s = warm_s;
            g_cold_rebuilt = cold_rebuilt;
            g_warm_rebuilt = warm_rebuilt;
            g_ok = (match (cold, warm) with Ok _, Ok _ -> true | _ -> false);
          })
        funcs)

let write_gen_json path ~jobs rows =
  let n = List.length rows in
  Bench_json.write_file path ~kind:"staged-generation" ~jobs
    ~input_bits:(Softfp.width Rlibm.Config.mini_tin)
    (fun oc ->
      Printf.fprintf oc "  \"scheme\": %S,\n  \"generation\": [\n"
        (Polyeval.scheme_name Polyeval.EstrinFma);
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"func\": %S, \"cold_s\": %.4f, \"warm_s\": %.4f, \
             \"cold_rebuilt_stages\": %d, \"warm_rebuilt_stages\": %d, \
             \"warm_speedup\": %.1f, \"ok\": %b}%s\n"
            (Oracle.name r.g_func) r.g_cold_s r.g_warm_s r.g_cold_rebuilt
            r.g_warm_rebuilt
            (if r.g_warm_s > 0.0 then r.g_cold_s /. r.g_warm_s else 0.0)
            r.g_ok
            (if i = n - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n");
  Printf.eprintf "wrote %s (%d generation timing rows)\n%!" path n

(* ---------- oracle sharding: cold vs sharded vs resumed ---------- *)

(* Wall time of the oracle stage alone, per function, each against a
   fresh store directory: unsharded cold (the baseline single-artifact
   run), sharded cold (same Ziv work plus S shard publishes and the
   whole-table republish — the sharding overhead), and resumed (the
   first half of the shards pre-published, as a killed warmer would
   leave them; the resume must load those and compute only the rest).
   The merged table is checked entry-identical against the unsharded
   one — the sharding determinism contract, measured end to end. *)

type shard_timing = {
  s_func : Oracle.func;
  s_cold_unsharded_s : float;
  s_cold_sharded_s : float;
  s_resume_s : float;
  s_resume_hits : int;  (* shards loaded on resume *)
  s_resume_misses : int;  (* shards computed on resume *)
  s_identical : bool;  (* merged table = unsharded table *)
}

let measure_sharding funcs ~shards =
  let saved = Cache.dir () in
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rlibm-bench-shard-%d" (Unix.getpid ()))
  in
  (try Sys.mkdir root 0o755 with Sys_error _ -> ());
  let counter = ref 0 in
  let fresh_dir () =
    incr counter;
    let d = Filename.concat root (string_of_int !counter) in
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    Cache.set_dir d
  in
  let timed f =
    Rlibm.Constraints.clear_memory_cache ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let sorted_entries tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  Fun.protect
    ~finally:(fun () -> Cache.set_dir saved)
    (fun () ->
      List.map
        (fun func ->
          let cfg = Rlibm.Config.mini_for func in
          fresh_dir ();
          let ok = function Ok v -> v | Error e -> Cli.exit_error e in
          let cold_un_s, unsharded =
            timed (fun () -> ok (Pipeline.oracle_stage ~cfg func))
          in
          let reference = sorted_entries unsharded in
          fresh_dir ();
          let cold_sh_s, sharded =
            timed (fun () -> ok (Pipeline.oracle_stage ~shards ~cfg func))
          in
          let identical = sorted_entries sharded = reference in
          (* A killed warmer's store: the first half of the shards
             published, nothing merged. *)
          fresh_dir ();
          List.iter
            (fun k ->
              Rlibm.Constraints.clear_memory_cache ();
              ignore
                (ok (Pipeline.oracle_stage ~shards ~only_shard:k ~cfg func)
                  : (int64, int64) Hashtbl.t))
            (List.init (shards / 2) Fun.id);
          Cache.reset_stats ();
          let resume_s, _ =
            timed (fun () -> ok (Pipeline.oracle_stage ~shards ~cfg func))
          in
          let hits, misses =
            match List.assoc_opt "oracle-shard" (Cache.stats_by_kind ()) with
            | Some s -> (s.Cache.hits, s.Cache.misses)
            | None -> (0, 0)
          in
          let row =
            {
              s_func = func;
              s_cold_unsharded_s = cold_un_s;
              s_cold_sharded_s = cold_sh_s;
              s_resume_s = resume_s;
              s_resume_hits = hits;
              s_resume_misses = misses;
              s_identical = identical;
            }
          in
          Printf.eprintf
            "%-7s unsharded %6.2fs  sharded %6.2fs  resume %6.2fs (%d \
             loaded, %d computed)  identical %s\n%!"
            (Oracle.name func) cold_un_s cold_sh_s resume_s hits misses
            (if identical then "yes" else "NO");
          row)
        funcs)

let print_sharding ~shards rows =
  Printf.printf
    "== oracle sharding: cold vs %d-shard cold vs resumed (half \
     pre-published) ==\n"
    shards;
  Printf.printf "%-7s %12s %12s %12s %10s %s\n" "f" "unsharded s" "sharded s"
    "resume s" "overhead" "identical";
  List.iter
    (fun r ->
      Printf.printf "%-7s %12.3f %12.3f %12.3f %9.1f%% %s\n"
        (Oracle.name r.s_func) r.s_cold_unsharded_s r.s_cold_sharded_s
        r.s_resume_s
        (if r.s_cold_unsharded_s > 0.0 then
           100.0 *. ((r.s_cold_sharded_s /. r.s_cold_unsharded_s) -. 1.0)
         else 0.0)
        (if r.s_identical then "yes" else "NO"))
    rows;
  print_newline ();
  if List.exists (fun r -> not r.s_identical) rows then begin
    print_endline "shard bench: merged table differs from the unsharded one";
    exit 1
  end

let write_shard_json path ~jobs ~shards rows =
  let n = List.length rows in
  Bench_json.write_file path ~kind:"oracle-sharding" ~jobs
    ~input_bits:(Softfp.width Rlibm.Config.mini_tin)
    (fun oc ->
      Printf.fprintf oc "  \"shards\": %d,\n  \"results\": [\n" shards;
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"func\": %S, \"cold_unsharded_s\": %.4f, \
             \"cold_sharded_s\": %.4f, \"resume_s\": %.4f, \
             \"resume_shard_hits\": %d, \"resume_shard_misses\": %d, \
             \"sharding_overhead_pct\": %.2f, \"bit_identical\": %b}%s\n"
            (Oracle.name r.s_func) r.s_cold_unsharded_s r.s_cold_sharded_s
            r.s_resume_s r.s_resume_hits r.s_resume_misses
            (if r.s_cold_unsharded_s > 0.0 then
               100.0 *. ((r.s_cold_sharded_s /. r.s_cold_unsharded_s) -. 1.0)
             else 0.0)
            r.s_identical
            (if i = n - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n");
  Printf.eprintf "wrote %s (%d sharding timing rows)\n%!" path n

(* ---------- serve-path throughput: scalar vs batch kernel ---------- *)

(* Measures the serving hot path end to end: scalar = the pre-kernel
   batch loop (Parallel.map_array of Genlibm.eval_bits, one closure
   dispatch + boxed decode + allocating reduction per element), kernel =
   Serve.eval_batch_into (chunked zero-allocation batch kernels into a
   caller-owned Bigarray).  Both run at the harness's -j; the kernel
   path's minor-heap allocation is additionally measured per eval at
   -j 1, where the whole batch runs on this domain and Gc.minor_words
   counts exactly the kernel's own allocations. *)

type serve_row = {
  sv_func : Oracle.func;
  sv_scheme : Polyeval.scheme;
  sv_batch : int;
  sv_scalar_ns : float;
  sv_kernel_ns : float;
  sv_minor_words : float;  (* kernel minor words per eval, -j 1 *)
  sv_identical : bool;  (* kernel output bit-identical to scalar *)
}

(* Uniform random bit patterns over the whole format (NaN/Inf/specials
   included: the serving path must take every branch), fixed seed so
   every run and every PR measures the same batch. *)
let random_batch tin ~pow ~seed =
  let st = Random.State.make [| seed |] in
  let w = Softfp.width tin in
  Array.init (1 lsl pow) (fun _ ->
      Random.State.int64 st (Int64.shift_left 1L w))

(* ns/eval over enough repetitions to cover ~0.3 s of wall time. *)
let time_ns_per_eval f n =
  f ();
  let t0 = Unix.gettimeofday () in
  f ();
  let once = Unix.gettimeofday () -. t0 in
  let reps = Stdlib.max 3 (int_of_float (0.3 /. Float.max 1e-6 once)) in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    f ()
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps /. float_of_int n *. 1e9

let measure_serve funcs schemes ~batch_pow ~jobs =
  List.concat_map
    (fun scheme ->
      let specs =
        List.map (fun f -> (f, scheme, Rlibm.Config.mini_for f)) funcs
      in
      match Serve.build specs with
      | Error err ->
          Printf.eprintf "serve bench: snapshot build failed (%s): %s\n%!"
            (Polyeval.scheme_name scheme)
            (Diag.Error.to_string err);
          []
      | Ok snap ->
          List.map
            (fun func ->
              let e = Option.get (Serve.find snap func) in
              let impl = e.Serve.e_impl in
              let tin = e.Serve.e_cfg.Rlibm.Config.tin in
              let inputs = random_batch tin ~pow:batch_pow ~seed:7 in
              let n = Array.length inputs in
              let src = Genlibm.create_src n and dst = Genlibm.create_dst n in
              Array.iteri (fun i x -> Bigarray.Array1.set src i x) inputs;
              let scalar_run () =
                Parallel.map_array (fun x -> Genlibm.eval_bits impl x) inputs
              in
              let kernel_run () = Serve.eval_batch_into snap func ~src ~dst in
              let scalar = scalar_run () in
              kernel_run ();
              let identical = ref true in
              for i = 0 to n - 1 do
                if
                  not
                    (Int64.equal
                       (Int64.bits_of_float scalar.(i))
                       (Int64.bits_of_float (Bigarray.Array1.get dst i)))
                then identical := false
              done;
              let scalar_ns = time_ns_per_eval (fun () -> ignore (scalar_run ())) n in
              let kernel_ns = time_ns_per_eval kernel_run n in
              Parallel.set_jobs 1;
              kernel_run ();
              (* warm run above sizes the per-domain scratch *)
              let w0 = Gc.minor_words () in
              kernel_run ();
              let minor = (Gc.minor_words () -. w0) /. float_of_int n in
              Parallel.set_jobs jobs;
              {
                sv_func = func;
                sv_scheme = scheme;
                sv_batch = n;
                sv_scalar_ns = scalar_ns;
                sv_kernel_ns = kernel_ns;
                sv_minor_words = minor;
                sv_identical = !identical;
              })
            funcs)
    schemes

let print_serve ~batch_pow ~jobs rows =
  Printf.printf
    "== serve throughput: scalar batch vs zero-allocation kernel (batch \
     2^%d, -j %d) ==\n"
    batch_pow jobs;
  Printf.printf "%-7s %-11s %10s %10s %8s %14s %12s %s\n" "f" "scheme"
    "scalar ns" "kernel ns" "speedup" "kernel evals/s" "minor w/eval"
    "identical";
  List.iter
    (fun r ->
      Printf.printf "%-7s %-11s %10.1f %10.1f %7.2fx %14.3e %12.4f %s\n"
        (Oracle.name r.sv_func)
        (Polyeval.scheme_name r.sv_scheme)
        r.sv_scalar_ns r.sv_kernel_ns
        (if r.sv_kernel_ns > 0.0 then r.sv_scalar_ns /. r.sv_kernel_ns else 0.0)
        (if r.sv_kernel_ns > 0.0 then 1e9 /. r.sv_kernel_ns else 0.0)
        r.sv_minor_words
        (if r.sv_identical then "yes" else "NO"))
    rows;
  print_newline ();
  if List.exists (fun r -> not r.sv_identical) rows then begin
    print_endline "serve bench: kernel output differs from the scalar path";
    exit 1
  end

let write_serve_json path ~jobs ~batch_pow rows =
  let n = List.length rows in
  Bench_json.write_file path ~kind:"serve-throughput" ~jobs
    ~input_bits:(Softfp.width Rlibm.Config.mini_tin)
    (fun oc ->
      Printf.fprintf oc "  \"batch_pow\": %d,\n  \"results\": [\n" batch_pow;
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"func\": %S, \"scheme\": %S, \"batch\": %d, \
             \"scalar_ns_per_eval\": %.3f, \"kernel_ns_per_eval\": %.3f, \
             \"scalar_evals_per_s\": %.0f, \"kernel_evals_per_s\": %.0f, \
             \"speedup\": %.3f, \"kernel_minor_words_per_eval\": %.5f, \
             \"bit_identical\": %b}%s\n"
            (Oracle.name r.sv_func)
            (Polyeval.scheme_name r.sv_scheme)
            r.sv_batch r.sv_scalar_ns r.sv_kernel_ns
            (if r.sv_scalar_ns > 0.0 then 1e9 /. r.sv_scalar_ns else 0.0)
            (if r.sv_kernel_ns > 0.0 then 1e9 /. r.sv_kernel_ns else 0.0)
            (if r.sv_kernel_ns > 0.0 then r.sv_scalar_ns /. r.sv_kernel_ns
             else 0.0)
            r.sv_minor_words r.sv_identical
            (if i = n - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n");
  Printf.eprintf "wrote %s (%d serve timing rows)\n%!" path n

(* ---------- driver ---------- *)

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let jobs = Cli.parse_jobs args in
  Parallel.set_jobs jobs;
  Cli.install_diag_argv ~jobs args;
  Cli.set_cache_dir (Cli.opt_value [ "--cache-dir" ] args);
  let json_path = Cli.opt_value [ "--json" ] args in
  let gen_json_path = Cli.opt_value [ "--gen-json" ] args in
  let quick = has "--quick" in
  let serve_bench = has "--serve-bench" in
  let serve_json_path = Cli.opt_value [ "--serve-json" ] args in
  let shard_bench = has "--shard-bench" in
  let shard_json_path = Cli.opt_value [ "--shard-json" ] args in
  let bench_shards =
    match Cli.opt_value [ "--shards" ] args with
    | Some v -> (
        match int_of_string_opt v with
        | Some s when s >= 2 -> s
        | _ ->
            Printf.eprintf "bad --shards value %S (must be >= 2)\n" v;
            exit 2)
    | None -> 4
  in
  let serve_batch_pow =
    match Cli.opt_value [ "--serve-batch-pow" ] args with
    | Some v -> (
        match int_of_string_opt v with
        | Some p when p >= 4 && p <= 26 -> p
        | _ ->
            Printf.eprintf "bad --serve-batch-pow value %S\n" v;
            exit 2)
    | None -> 16
  in
  let funcs = if quick then [ Oracle.Exp2; Oracle.Log2 ] else Oracle.all in
  let all =
    not
      (has "--table1" || has "--table2" || has "--post-process"
     || has "--correctness" || has "--cost" || serve_bench || shard_bench
     || shard_json_path <> None || gen_json_path <> None)
  in
  Printf.eprintf
    "rlibm-fastpoly benchmark harness (%d functions x %d schemes, %d-bit \
     inputs, -j %d)\n\n%!"
    (List.length funcs)
    (List.length Polyeval.paper_schemes)
    (Softfp.width Rlibm.Config.mini_tin)
    jobs;
  if all || has "--cost" then print_cost_model ();
  let need_timings = all || has "--table2" || json_path <> None in
  let need_grid =
    need_timings || has "--table1" || has "--post-process"
    || has "--correctness"
  in
  let grid = if need_grid then generate_grid funcs else [] in
  if all || has "--table1" then print_table1 grid;
  let timings = if need_timings then measure_grid grid else [] in
  if all || has "--table2" then print_table2 timings;
  (match json_path with
  | Some path -> write_json path ~jobs timings
  | None -> ());
  if all || has "--post-process" then print_post_process grid;
  if all || has "--correctness" then print_correctness grid;
  if serve_bench then begin
    let schemes =
      if quick then [ Polyeval.Horner; Polyeval.EstrinFma ]
      else Polyeval.paper_schemes
    in
    let rows = measure_serve funcs schemes ~batch_pow:serve_batch_pow ~jobs in
    print_serve ~batch_pow:serve_batch_pow ~jobs rows;
    match serve_json_path with
    | Some path -> write_serve_json path ~jobs ~batch_pow:serve_batch_pow rows
    | None -> ()
  end;
  if shard_bench || shard_json_path <> None then begin
    let rows = measure_sharding funcs ~shards:bench_shards in
    print_sharding ~shards:bench_shards rows;
    match shard_json_path with
    | Some path -> write_shard_json path ~jobs ~shards:bench_shards rows
    | None -> ()
  end;
  (match gen_json_path with
  | Some path ->
      prerr_endline
        "== staged generation: cold vs warm store (fresh directory) ==";
      write_gen_json path ~jobs (measure_generation funcs)
  | None -> ());
  Cli.report_cache_stats (has "--cache-stats")
